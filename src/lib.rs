//! Umbrella crate for the TTA design/test space exploration toolchain —
//! a from-scratch reproduction of Zivkovic, Tangelder & Kerkhoff,
//! *Design and Test Space Exploration of Transport-Triggered
//! Architectures* (DATE 2000).
//!
//! Re-exports every subsystem crate under one roof so examples and
//! integration tests can `use ttadse::…`:
//!
//! * [`netlist`] — gate-level netlists + component generators,
//! * [`atpg`] — stuck-at ATPG and fault simulation,
//! * [`dft`] — scan insertion and march tests,
//! * [`arch`] — the TTA machine template and transport-timing model,
//! * [`movec`] — the MOVE-style IR and transport scheduler,
//! * [`workloads`] — crypt(3) and friends,
//! * [`sim`] — the cycle-accurate move-program simulator and the
//!   schedule → program lowering,
//! * [`asm`] — the move-program text assembler / disassembler,
//! * [`explore`] — the paper's contribution: pluggable cost models
//!   (`models`), the composable `Exploration` pipeline with serial or
//!   parallel sweeps, Pareto reduction and weighted-norm selection.
//!
//! # Quickstart
//!
//! ```no_run
//! use ttadse::arch::template::TemplateSpace;
//! use ttadse::explore::explore::Exploration;
//! use ttadse::workloads::suite;
//!
//! let result = Exploration::over(TemplateSpace::fast_default())
//!     .workload(&suite::crypt(1))
//!     .parallel(true)
//!     .run();
//! let best = result.select_equal_weights();
//! println!("{} (area {:.0} GE)", best.architecture, best.area());
//! ```

pub use tta_arch as arch;
pub use tta_asm as asm;
pub use tta_atpg as atpg;
pub use tta_core as explore;
pub use tta_dft as dft;
pub use tta_movec as movec;
pub use tta_netlist as netlist;
pub use tta_sim as sim;
pub use tta_workloads as workloads;
