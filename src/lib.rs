//! Umbrella crate for the TTA design/test space exploration toolchain —
//! a from-scratch reproduction of Zivkovic, Tangelder & Kerkhoff,
//! *Design and Test Space Exploration of Transport-Triggered
//! Architectures* (DATE 2000).
//!
//! Re-exports every subsystem crate under one roof so examples and
//! integration tests can `use ttadse::…`:
//!
//! * [`netlist`] — gate-level netlists + component generators,
//! * [`atpg`] — stuck-at ATPG and fault simulation,
//! * [`dft`] — scan insertion and march tests,
//! * [`arch`] — the TTA machine template and transport-timing model,
//! * [`movec`] — the MOVE-style IR and transport scheduler,
//! * [`workloads`] — crypt(3) and friends,
//! * [`explore`] — the paper's contribution: test-cost model, Pareto
//!   exploration and architecture selection.

pub use tta_arch as arch;
pub use tta_atpg as atpg;
pub use tta_core as explore;
pub use tta_dft as dft;
pub use tta_movec as movec;
pub use tta_netlist as netlist;
pub use tta_workloads as workloads;
