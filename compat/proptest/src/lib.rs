//! Offline stand-in for `proptest`.
//!
//! The build container has no registry access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//! the [`proptest!`] macro, [`ProptestConfig::with_cases`], the
//! [`Strategy`] trait with range / tuple / vec / `any::<T>()` /
//! [`bool::ANY`] strategies, and the `prop_assert*` / `prop_assume!`
//! macros. Generation is deterministic (seeded per test name), so runs
//! are reproducible; there is no shrinking — a failing case reports the
//! generated inputs via the assertion message instead.

use std::fmt;

/// Per-test configuration (only the `cases` knob is modelled).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!` family macros, or a case rejection
/// raised by `prop_assume!`.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
    rejection: bool,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError {
            msg: msg.into(),
            rejection: false,
        }
    }

    /// Creates a rejection (`prop_assume!` miss): the runner redraws the
    /// case instead of counting it as passed.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError {
            msg: msg.into(),
            rejection: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

pub mod test_runner {
    //! Deterministic RNG used by the strategies.

    /// splitmix64-based generator, seeded from the test name so every
    //  test sees an independent, reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test name).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform usize in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(hi > lo, "empty size range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

use test_runner::TestRng;

/// A value generator. `Value` is the generated type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// ---- numeric ranges -------------------------------------------------

// Span and offset arithmetic happen in i128 so wide and signed ranges
// (e.g. `-100i8..100`, `0u64..=u64::MAX`) neither overflow nor wrap.
macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + offset) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(hi >= lo, "empty range strategy");
                let offset = (rng.next_u64() as i128).rem_euclid(hi - lo + 1);
                (lo + offset) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

// ---- tuples ---------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- any::<T>() -----------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod bool {
    //! Boolean strategies.

    /// Strategy for an arbitrary bool.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl super::Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `proptest::bool::ANY`.
    pub const ANY: AnyBool = AnyBool;
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length bounds for [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---- macros ---------------------------------------------------------

/// Asserts inside a proptest body; fails the current case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), left, right
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)*), left, right
                    )));
                }
            }
        }
    };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left
                    )));
                }
            }
        }
    };
}

/// Rejects the current case when the assumption does not hold; the
/// runner redraws a fresh case instead of counting this one as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// The `proptest! { ... }` block: declares `#[test]` functions whose
/// arguments are drawn from strategies for a configurable number of
/// cases. No shrinking; generation is deterministic per test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __done: u32 = 0;
            let mut __rejected: u32 = 0;
            while __done < __cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __dbg = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                    $(&$arg),+
                );
                let __run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                match __run() {
                    Ok(()) => __done += 1,
                    // prop_assume! miss: redraw, bounded like real
                    // proptest so a near-impossible assumption fails
                    // loudly instead of spinning.
                    Err(e) if e.is_rejection() => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __cfg.cases.saturating_mul(10).max(256),
                            "proptest: too many case rejections ({}): {}",
                            __rejected, e
                        );
                    }
                    Err(e) => panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __done + 1, __cfg.cases, e, __dbg
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.5..2.0).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((any::<u8>(), 0u64..100), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (_, n) in &v {
                prop_assert!(*n < 100);
            }
        }

        #[test]
        fn assume_skips(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn signed_and_wide_ranges_stay_in_bounds(
            s in -100i8..100,
            w in 0u64..=u64::MAX,
            n in -1_000_000i64..1_000_000,
        ) {
            prop_assert!((-100..100).contains(&s), "s = {s}");
            let _ = w; // full-width draw must not panic or wrap
            prop_assert!((-1_000_000..1_000_000).contains(&n));
        }
    }

    #[test]
    fn rejected_cases_are_redrawn_not_counted() {
        // A strategy rejecting half its draws must still run the
        // configured number of *accepted* cases.
        use std::sync::atomic::{AtomicU32, Ordering};
        static ACCEPTED: AtomicU32 = AtomicU32::new(0);
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(20))]
            fn inner(x in 0u32..100) {
                prop_assume!(x % 2 == 0);
                ACCEPTED.fetch_add(1, Ordering::Relaxed);
                prop_assert!(x % 2 == 0);
            }
        }
        inner();
        assert_eq!(ACCEPTED.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(0u64..1000, 5..6);
        let mut r1 = crate::test_runner::TestRng::for_test("t");
        let mut r2 = crate::test_runner::TestRng::for_test("t");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
