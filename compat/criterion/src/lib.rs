//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock timer. Each
//! benchmark runs a short warm-up followed by `sample_size` timed
//! batches and prints the mean per-iteration time. No statistics,
//! baselines or HTML reports; swap the workspace `compat/criterion` path
//! for the real crate to get those.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to the bench closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running a warm-up iteration then `samples` timed ones.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, outside the timed window
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples as u64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&self, label: &str, run: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        run(&mut b);
        let mean = if b.iters > 0 {
            b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{label:<28} time: {mean:>12.2?}  ({} iters)",
            self.name, b.iters
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), |b| f(b));
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (formatting separator only).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a bench entry point running the listed functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `fn main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("alg", 8).to_string(), "alg/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
