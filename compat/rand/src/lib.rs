//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this crate provides the
//! exact API subset the workspace uses — `rngs::StdRng`, the [`Rng`] and
//! [`SeedableRng`] traits, and `random::<bool / f64 / uN>()` — backed by a
//! deterministic splitmix64/xoshiro256** generator. Replace the
//! `compat/rand` path entry in the workspace manifest with the real crate
//! once a registry is reachable; call sites need no changes.

/// Types that can be sampled from the "standard" distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl StandardSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The part of the `rand` RNG interface the workspace uses.
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution
    /// (uniform over the domain; `f64` in `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `[low, high)` (u64 ranges only — the subset used).
    fn random_range(&mut self, range: core::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic xoshiro256** generator seeded via splitmix64 — the
    /// stand-in for `rand::rngs::StdRng`. Not cryptographic; statistically
    /// fine for test-pattern bootstrap and benchmark point clouds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 to fill the state, as rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bools_mix() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!((300..700).contains(&trues), "{trues}");
    }
}
