//! The executable move-program model.
//!
//! A [`Program`] is self-contained: it names the units and register
//! files it transports between, carries its own register-file and
//! memory images, and lists where its live-out values end up. Binding
//! to a concrete [`tta_arch::Architecture`] happens at simulation time
//! (`Simulator::run`), so the same program text can be tried against
//! several machines and a mismatch (a unit the machine does not have,
//! a register beyond the file) is a hard error, not a silent wrap.

use tta_arch::FuKind;

/// The operation a trigger move starts. In a transport-triggered
/// architecture the opcode rides the trigger destination: `alu0.add`
/// means "move into alu0's trigger register *and* start an add".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// Wrapping addition `O + T`.
    Add,
    /// Wrapping subtraction `O - T`.
    Sub,
    /// Logical shift left `O << (T mod width)`.
    Shl,
    /// Logical shift right `O >> (T mod width)`.
    Shr,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT of the trigger operand (1-input).
    Not,
    /// Wrapping multiplication `O * T`.
    Mul,
    /// `O == T` → 1/0.
    Eq,
    /// `O != T` → 1/0.
    Ne,
    /// Unsigned `O < T` → 1/0.
    Ltu,
    /// Unsigned `O >= T` → 1/0.
    Geu,
    /// Load from data memory at address `T` (1-input).
    Ld,
    /// Store value `T` to data memory at address `O`.
    St,
    /// Unconditional jump to instruction index `T` (1-input).
    Jmp,
    /// Conditional jump: to instruction index `T` when `O != 0`.
    Cjmp,
}

/// Every opcode, in mnemonic order (the order the assembler documents).
pub const OPCODES: [OpCode; 17] = [
    OpCode::Add,
    OpCode::Sub,
    OpCode::Shl,
    OpCode::Shr,
    OpCode::And,
    OpCode::Or,
    OpCode::Xor,
    OpCode::Not,
    OpCode::Mul,
    OpCode::Eq,
    OpCode::Ne,
    OpCode::Ltu,
    OpCode::Geu,
    OpCode::Ld,
    OpCode::St,
    OpCode::Jmp,
    OpCode::Cjmp,
];

impl OpCode {
    /// The assembler mnemonic (lower-case, stable).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpCode::Add => "add",
            OpCode::Sub => "sub",
            OpCode::Shl => "shl",
            OpCode::Shr => "shr",
            OpCode::And => "and",
            OpCode::Or => "or",
            OpCode::Xor => "xor",
            OpCode::Not => "not",
            OpCode::Mul => "mul",
            OpCode::Eq => "eq",
            OpCode::Ne => "ne",
            OpCode::Ltu => "ltu",
            OpCode::Geu => "geu",
            OpCode::Ld => "ld",
            OpCode::St => "st",
            OpCode::Jmp => "jmp",
            OpCode::Cjmp => "cjmp",
        }
    }

    /// Parses a mnemonic back into an opcode.
    pub fn parse(s: &str) -> Option<OpCode> {
        OPCODES.iter().copied().find(|o| o.mnemonic() == s)
    }

    /// The functional-unit kind that executes this opcode.
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpCode::Add
            | OpCode::Sub
            | OpCode::Shl
            | OpCode::Shr
            | OpCode::And
            | OpCode::Or
            | OpCode::Xor
            | OpCode::Not => FuKind::Alu,
            OpCode::Mul => FuKind::Mul,
            OpCode::Eq | OpCode::Ne | OpCode::Ltu | OpCode::Geu => FuKind::Cmp,
            OpCode::Ld | OpCode::St => FuKind::LdSt,
            OpCode::Jmp | OpCode::Cjmp => FuKind::Pc,
        }
    }

    /// Number of datapath inputs: 1 = trigger only, 2 = operand + trigger.
    pub fn arity(self) -> usize {
        match self {
            OpCode::Not | OpCode::Ld | OpCode::Jmp => 1,
            _ => 2,
        }
    }
}

/// A move source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveSrc {
    /// The result register of the named FU.
    FuResult(String),
    /// Register `reg` of the named register file.
    RfRead {
        /// Register-file name.
        rf: String,
        /// Register index.
        reg: usize,
    },
    /// A constant delivered by the named immediate unit.
    Imm {
        /// Immediate-unit name.
        unit: String,
        /// The constant (masked to the program width on transport).
        value: u64,
    },
}

impl std::fmt::Display for MoveSrc {
    /// The canonical assembly spelling (`alu0.r`, `rf1[3]`, `imm0:7`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveSrc::FuResult(fu) => write!(f, "{fu}.r"),
            MoveSrc::RfRead { rf, reg } => write!(f, "{rf}[{reg}]"),
            MoveSrc::Imm { unit, value } => write!(f, "{unit}:{value}"),
        }
    }
}

/// A move destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveDst {
    /// The operand register of the named FU.
    FuOperand(String),
    /// The trigger register of the named FU; starts `op`.
    FuTrigger {
        /// Functional-unit name.
        fu: String,
        /// Operation started by the trigger.
        op: OpCode,
    },
    /// Register `reg` of the named register file.
    RfWrite {
        /// Register-file name.
        rf: String,
        /// Register index.
        reg: usize,
    },
}

impl std::fmt::Display for MoveDst {
    /// The canonical assembly spelling (`alu0.o`, `alu0.add`, `rf1[3]`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveDst::FuOperand(fu) => write!(f, "{fu}.o"),
            MoveDst::FuTrigger { fu, op } => write!(f, "{fu}.{}", op.mnemonic()),
            MoveDst::RfWrite { rf, reg } => write!(f, "{rf}[{reg}]"),
        }
    }
}

/// One data transport: `src -> dst` over some bus this cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveOp {
    /// Where the value comes from.
    pub src: MoveSrc,
    /// Where it goes.
    pub dst: MoveDst,
}

impl std::fmt::Display for MoveOp {
    /// The canonical assembly spelling, `src -> dst`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

/// Initial contents of one register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RfImage {
    /// Register-file name (must match an architecture RF at bind time).
    pub name: String,
    /// Number of registers the program uses (`init.len() == regs`).
    pub regs: usize,
    /// Initial register values, one per register.
    pub init: Vec<u64>,
}

/// Where a live-out value sits after the program halts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputLoc {
    /// Register-file name.
    pub rf: String,
    /// Register index.
    pub reg: usize,
}

/// A complete executable move program.
///
/// `instructions[i]` is the (possibly empty) set of parallel moves
/// issued in cycle `i`; execution starts at instruction 0 and halts
/// when the program counter runs off the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Word width in bits (2–64); transported values are masked to it.
    pub width: u32,
    /// Register-file images, in declaration order.
    pub rfs: Vec<RfImage>,
    /// Initial data-memory image (addresses wrap modulo its length).
    pub mem: Vec<u64>,
    /// Live-out locations, in output order.
    pub outputs: Vec<OutputLoc>,
    /// One entry per cycle: the parallel moves of that instruction.
    pub instructions: Vec<Vec<MoveOp>>,
}

impl Program {
    /// The word mask for `width`.
    pub fn mask(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Total number of moves across all instructions.
    pub fn move_count(&self) -> usize {
        self.instructions.iter().map(Vec::len).sum()
    }
}
