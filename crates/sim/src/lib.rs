//! Cycle-accurate simulation of move programs on a TTA machine.
//!
//! Everything the exploration engine reports rests on the movec
//! scheduler's *analytic* cycle model. This crate makes that model
//! falsifiable: it can actually **execute** a move program on a
//! [`tta_arch::Architecture`] — per-cycle bus transports, FU pipelines
//! with the back-annotated latencies, register-file ports, hard errors
//! on contention — and produce a deterministic trace. The headline
//! property (asserted in this crate's tests and in CI) is that for
//! every registered workload the executed cycle count equals the
//! scheduled one and the executed outputs equal the golden model's.
//!
//! Three layers:
//!
//! * [`program`] — the executable move-program model ([`Program`]):
//!   named units, register-file/memory images, per-cycle move lists;
//! * [`mod@lower`] — turns a movec [`Schedule`](tta_movec::schedule::Schedule)
//!   into a [`Program`] (the register allocation the scheduler leaves
//!   symbolic happens here);
//! * [`exec`] — the interpreter ([`Simulator`]) with its legality
//!   rules and [`Trace`] format.
//!
//! The textual syntax for these programs lives in the `tta_asm` crate;
//! `docs/SIMULATOR.md` is the guide (every snippet in it runs as a
//! doc-test of this crate).
//!
//! # Quickstart
//!
//! ```
//! use tta_arch::Architecture;
//! use tta_movec::ir::{Dfg, Op};
//! use tta_movec::schedule::Scheduler;
//! use tta_sim::{lower, Simulator};
//!
//! // (a + b) ^ 5 on the paper's Figure 9 machine.
//! let mut dfg = Dfg::new(16);
//! let a = dfg.input();
//! let b = dfg.input();
//! let c5 = dfg.constant(5);
//! let s = dfg.op(Op::Add, &[a, b]);
//! let x = dfg.op(Op::Xor, &[s, c5]);
//! dfg.mark_output(x);
//!
//! let arch = Architecture::figure9();
//! let schedule = Scheduler::new(&arch).run(&dfg).unwrap();
//! let program = lower(&arch, &dfg, &schedule, &[10, 20], &[]).unwrap();
//! let trace = Simulator::new(&arch).run(&program).unwrap();
//!
//! // Executed cycles match the analytic model, outputs match eval.
//! assert_eq!(trace.cycles, u64::from(schedule.cycles));
//! assert_eq!(trace.outputs, dfg.eval(&[10, 20], &mut []));
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod lower;
pub mod program;

pub use exec::{SimError, SimOptions, Simulator, Trace, TraceCycle, TraceMove};
pub use lower::{lower, LowerError};
pub use program::{MoveDst, MoveOp, MoveSrc, OpCode, OutputLoc, Program, RfImage};

// `docs/SIMULATOR.md` snippets compile and run against this crate.
#[cfg(doctest)]
mod simulator_guide {
    #![doc = include_str!("../../../docs/SIMULATOR.md")]
}
