//! Lowering a movec [`Schedule`] into an executable [`Program`].
//!
//! The scheduler works with symbolic value homes ("value 7 lives in
//! rf1 from cycle 9") and never assigns concrete register indices.
//! Lowering replays the schedule in cycle order and performs the
//! missing register allocation: each value gets a register in its
//! scheduled file when written, and the register is recycled after the
//! value's last read (reads observe pre-cycle state, so a same-cycle
//! reuse is safe). Live-outs are never recycled.
//!
//! Two deliberate mirrors of the scheduler's simplifications:
//!
//! * **Spills**: the scheduler charges register-file overflow as a
//!   fixed cycle penalty instead of scheduling spill code. Lowering
//!   mirrors this by letting the allocation overflow past the hardware
//!   register count (the overflow registers stand in for spill slots)
//!   and padding the program with the same number of empty cycles, so
//!   `trace.cycles == schedule.cycles` holds exactly. Run such
//!   programs with [`SimOptions::allow_register_overflow`] set.
//! * **Constants** ride immediate units at read time and never occupy
//!   a register.
//!
//! [`SimOptions::allow_register_overflow`]: crate::exec::SimOptions

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use tta_arch::Architecture;
use tta_movec::ir::{Dfg, Op, ValueId};
use tta_movec::schedule::{Endpoint, Schedule, SPILL_PENALTY_CYCLES};

use crate::program::{MoveDst, MoveOp, MoveSrc, OpCode, OutputLoc, Program, RfImage};

/// Lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// `inputs` length does not match the DFG's live-in count.
    InputCount {
        /// Live-ins the DFG declares.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A DFG output is a constant — constants ride immediate units and
    /// never land in a register file, so there is nowhere to read the
    /// output from. Route it through an op (e.g. `Or` with 0) instead.
    ConstOutput {
        /// Node index of the offending output.
        node: usize,
    },
    /// The schedule does not line up with the DFG (missing trigger
    /// record, value without a register-file home, …). Indicates the
    /// schedule was produced from a different DFG.
    Malformed(String),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::InputCount { expected, got } => {
                write!(f, "workload declares {expected} inputs, {got} supplied")
            }
            LowerError::ConstOutput { node } => {
                write!(
                    f,
                    "output node {node} is a constant; constants never reach a register file"
                )
            }
            LowerError::Malformed(msg) => write!(f, "schedule/DFG mismatch: {msg}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Maps an IR operation to the opcode its trigger carries.
fn opcode_of(op: Op) -> Option<OpCode> {
    Some(match op {
        Op::Add => OpCode::Add,
        Op::Sub => OpCode::Sub,
        Op::Shl => OpCode::Shl,
        Op::Shr => OpCode::Shr,
        Op::And => OpCode::And,
        Op::Or => OpCode::Or,
        Op::Xor => OpCode::Xor,
        Op::Not => OpCode::Not,
        Op::Mul => OpCode::Mul,
        Op::Eq => OpCode::Eq,
        Op::Ne => OpCode::Ne,
        Op::Ltu => OpCode::Ltu,
        Op::Geu => OpCode::Geu,
        Op::Load => OpCode::Ld,
        Op::Store => OpCode::St,
        Op::Input | Op::Const(_) => return None,
    })
}

/// Per-register-file allocator: lowest free index first, recycling a
/// register once its value's last read has passed.
struct RfAlloc {
    free: BTreeSet<usize>,
    releases: BinaryHeap<Reverse<(u32, usize)>>,
    next_fresh: usize,
}

impl RfAlloc {
    fn new() -> Self {
        RfAlloc {
            free: BTreeSet::new(),
            releases: BinaryHeap::new(),
            next_fresh: 0,
        }
    }

    fn alloc(&mut self, cycle: u32) -> usize {
        while let Some(&Reverse((at, reg))) = self.releases.peek() {
            if at > cycle {
                break;
            }
            self.releases.pop();
            self.free.insert(reg);
        }
        match self.free.pop_first() {
            Some(reg) => reg,
            None => {
                self.next_fresh += 1;
                self.next_fresh - 1
            }
        }
    }

    fn release(&mut self, cycle: u32, reg: usize) {
        self.releases.push(Reverse((cycle, reg)));
    }
}

/// Lowers `schedule` (produced from `dfg` on `arch`) into an
/// executable [`Program`] with register/memory images built from
/// `inputs` and `mem`.
///
/// The program's word width is the **DFG's** width (workload kernels
/// are 16-bit even when the explored machine template is narrower —
/// the schedule is a transport plan, not a datapath widening).
///
/// # Errors
///
/// See [`LowerError`]; a schedule produced by
/// [`tta_movec::schedule::Scheduler::run`] on the same `dfg` and
/// `arch` only fails for [`LowerError::InputCount`] or
/// [`LowerError::ConstOutput`].
pub fn lower(
    arch: &Architecture,
    dfg: &Dfg,
    schedule: &Schedule,
    inputs: &[u64],
    mem: &[u64],
) -> Result<Program, LowerError> {
    if inputs.len() != dfg.input_count() {
        return Err(LowerError::InputCount {
            expected: dfg.input_count(),
            got: inputs.len(),
        });
    }
    let mask = dfg.mask();
    let n = dfg.nodes().len();

    // Which RF each materialised value lives in, recovered from the
    // schedule's moves (writes for computed values, reads for live-ins).
    let mut value_rf: Vec<Option<usize>> = vec![None; n];
    let mut write_cycle: Vec<u32> = vec![0; n];
    let mut last_read: Vec<Option<u32>> = vec![None; n];
    for mv in &schedule.moves {
        let v = mv.value.index();
        if let Endpoint::RfWrite(rf) = mv.dst {
            value_rf[v] = Some(rf);
            write_cycle[v] = mv.cycle;
        }
        if let Endpoint::RfRead(rf) = mv.src {
            value_rf[v].get_or_insert(rf);
            let lr = last_read[v].get_or_insert(0);
            *lr = (*lr).max(mv.cycle);
        }
    }

    let mut is_output = vec![false; n];
    for o in dfg.outputs() {
        is_output[o.index()] = true;
    }
    // A live-in that is marked output but never read leaves no trace in
    // the move list; park it in RF 0 so the output stays observable.
    for (i, node) in dfg.nodes().iter().enumerate() {
        if node.op == Op::Input && is_output[i] && value_rf[i].is_none() {
            value_rf[i] = Some(0);
        }
    }

    // Register allocation, replaying writes in cycle order. Live-ins
    // are written "at cycle 0" in declaration order (the scheduler
    // preloads them before the program starts).
    let mut events: Vec<(u32, usize)> = Vec::new();
    let mut input_ordinal: Vec<Option<usize>> = vec![None; n];
    let mut next_input = 0usize;
    for (i, node) in dfg.nodes().iter().enumerate() {
        match node.op {
            Op::Input => {
                input_ordinal[i] = Some(next_input);
                next_input += 1;
                if value_rf[i].is_some() {
                    events.push((0, i));
                }
            }
            _ => {
                if matches!(node.op, Op::Const(_)) {
                    continue;
                }
                if value_rf[i].is_some() {
                    events.push((write_cycle[i], i));
                }
            }
        }
    }
    events.sort_by_key(|&(c, i)| (c, i));

    let mut allocs: Vec<RfAlloc> = (0..arch.rfs().len()).map(|_| RfAlloc::new()).collect();
    let mut reg_of: Vec<Option<usize>> = vec![None; n];
    for (w, i) in events {
        let rf = value_rf[i].expect("only homed values enqueued");
        let reg = allocs[rf].alloc(w);
        reg_of[i] = Some(reg);
        if !is_output[i] {
            // Recycle after the last read; a value never read (and not
            // an output) frees one cycle after its write so two writes
            // never collide on the register in the same cycle.
            allocs[rf].release(last_read[i].unwrap_or(w + 1), reg);
        }
    }

    // Trigger cycle → DFG node, to put opcodes on trigger moves.
    let trigger_node: HashMap<(usize, u32), usize> = schedule
        .ops
        .iter()
        .map(|op| ((op.fu, op.trigger), op.node))
        .collect();

    let fu_name = |i: usize| arch.fus()[i].name.clone();
    let rf_name = |i: usize| arch.rfs()[i].name.clone();
    let reg_for = |v: ValueId| -> Result<usize, LowerError> {
        reg_of[v.index()]
            .ok_or_else(|| LowerError::Malformed(format!("value {} has no register", v.index())))
    };

    let mut instructions: Vec<Vec<MoveOp>> = vec![Vec::new(); schedule.makespan as usize];
    for mv in &schedule.moves {
        let src = match mv.src {
            Endpoint::FuResult(fu) => MoveSrc::FuResult(fu_name(fu)),
            Endpoint::RfRead(rf) => MoveSrc::RfRead {
                rf: rf_name(rf),
                reg: reg_for(mv.value)?,
            },
            Endpoint::Imm(unit) => {
                let node = &dfg.nodes()[mv.value.index()];
                let Op::Const(c) = node.op else {
                    return Err(LowerError::Malformed(format!(
                        "imm move of non-constant value {}",
                        mv.value.index()
                    )));
                };
                MoveSrc::Imm {
                    unit: fu_name(unit),
                    value: c & mask,
                }
            }
            Endpoint::FuOperand(_) | Endpoint::FuTrigger(_) | Endpoint::RfWrite(_) => {
                return Err(LowerError::Malformed(
                    "write endpoint used as source".into(),
                ));
            }
        };
        let dst = match mv.dst {
            Endpoint::FuOperand(fu) => MoveDst::FuOperand(fu_name(fu)),
            Endpoint::FuTrigger(fu) => {
                let &node = trigger_node.get(&(fu, mv.cycle)).ok_or_else(|| {
                    LowerError::Malformed(format!(
                        "no scheduled op for trigger of fu {fu} at cycle {}",
                        mv.cycle
                    ))
                })?;
                let op = opcode_of(dfg.nodes()[node].op).ok_or_else(|| {
                    LowerError::Malformed(format!("node {node} is not an operation"))
                })?;
                MoveDst::FuTrigger {
                    fu: fu_name(fu),
                    op,
                }
            }
            Endpoint::RfWrite(rf) => MoveDst::RfWrite {
                rf: rf_name(rf),
                reg: reg_for(mv.value)?,
            },
            Endpoint::FuResult(_) | Endpoint::RfRead(_) | Endpoint::Imm(_) => {
                return Err(LowerError::Malformed(
                    "read endpoint used as destination".into(),
                ));
            }
        };
        let slot = instructions.get_mut(mv.cycle as usize).ok_or_else(|| {
            LowerError::Malformed(format!("move beyond makespan at {}", mv.cycle))
        })?;
        slot.push(MoveOp { src, dst });
    }
    // Spill penalty: the same fixed per-event cost the analytic model
    // charges, as empty (stall) instructions.
    for _ in 0..schedule.spills * SPILL_PENALTY_CYCLES {
        instructions.push(Vec::new());
    }

    // Register-file images: hardware capacity or the allocation's
    // overflow, live-ins preloaded.
    let mut rfs = Vec::with_capacity(arch.rfs().len());
    for (ri, rf) in arch.rfs().iter().enumerate() {
        let used = reg_of
            .iter()
            .zip(&value_rf)
            .filter(|&(_, &home)| home == Some(ri))
            .filter_map(|(&reg, _)| reg)
            .max()
            .map_or(0, |m| m + 1);
        let regs = rf.regs.max(used);
        let mut init = vec![0u64; regs];
        for (i, node) in dfg.nodes().iter().enumerate() {
            if node.op == Op::Input && value_rf[i] == Some(ri) {
                if let Some(reg) = reg_of[i] {
                    init[reg] = inputs[input_ordinal[i].expect("inputs numbered")] & mask;
                }
            }
        }
        rfs.push(RfImage {
            name: rf.name.clone(),
            regs,
            init,
        });
    }

    let mut outputs = Vec::with_capacity(dfg.outputs().len());
    for &v in dfg.outputs() {
        let i = v.index();
        if matches!(dfg.nodes()[i].op, Op::Const(_)) {
            return Err(LowerError::ConstOutput { node: i });
        }
        let rf = value_rf[i]
            .ok_or_else(|| LowerError::Malformed(format!("output {i} has no register file")))?;
        outputs.push(OutputLoc {
            rf: rf_name(rf),
            reg: reg_for(v)?,
        });
    }

    Ok(Program {
        width: dfg.width(),
        rfs,
        mem: mem.to_vec(),
        outputs,
        instructions,
    })
}
