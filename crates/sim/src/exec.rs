//! The cycle-accurate interpreter.
//!
//! One instruction is one cycle. Within a cycle the machine behaves
//! like the scheduler's timing model:
//!
//! 1. results whose latency expired land in their FU result registers;
//! 2. every move's source is read against *pre-cycle* state (an RF
//!    write at cycle `w` is readable from `w + 1`);
//! 3. resource legality is checked — moves ≤ buses, RF reads ≤ read
//!    ports, RF writes ≤ write ports, one constant per immediate unit,
//!    no two writes to the same register — and any violation is a hard
//!    [`SimError`], never a silent stall or drop;
//! 4. operand registers latch, then triggers fire (so an operand and
//!    trigger move in the same cycle cooperate), then RF writes land.
//!
//! The simulator never inserts wait states: a program that reads a
//! result before its latency expired gets [`SimError::ResultNotReady`].
//! That is what makes "executed cycles == scheduled cycles" a real
//! validation of the analytic model rather than a tautology.

use std::collections::VecDeque;

use tta_arch::{Architecture, FuKind};

use crate::program::{MoveDst, MoveSrc, OpCode, Program};

/// Knobs for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Abort with [`SimError::CycleLimit`] after this many cycles
    /// (guards against jump loops in hand-written programs).
    pub max_cycles: u64,
    /// Accept programs whose RF images declare more registers than the
    /// architecture provides. Lowered programs use this to mirror the
    /// scheduler's fixed-penalty spill model (overflow registers stand
    /// in for spill slots); hand-written programs should leave it off.
    pub allow_register_overflow: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_cycles: 1 << 22,
            allow_register_overflow: false,
        }
    }
}

/// A simulation failure: the program is illegal on this architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A move names a unit or register file the architecture does not
    /// have (or uses it in a role it cannot play).
    UnconnectedSocket {
        /// The offending unit/RF name as written in the program.
        name: String,
    },
    /// A register index beyond the register file.
    RegisterOutOfRange {
        /// Register-file name.
        rf: String,
        /// Offending register index.
        reg: usize,
        /// Registers actually available.
        regs: usize,
    },
    /// More parallel moves than buses.
    BusContention {
        /// Cycle of the violation.
        cycle: u64,
        /// Moves issued.
        moves: usize,
        /// Buses available.
        buses: usize,
    },
    /// A per-cycle port limit exceeded (RF read/write ports, immediate
    /// unit output).
    PortContention {
        /// Cycle of the violation.
        cycle: u64,
        /// Human-readable description of the oversubscribed resource.
        resource: String,
    },
    /// Two moves target the same register in one cycle.
    DoubleWrite {
        /// Cycle of the violation.
        cycle: u64,
        /// The doubly-written destination.
        dst: String,
    },
    /// A result register was read before any result landed in it.
    ResultNotReady {
        /// Cycle of the read.
        cycle: u64,
        /// FU whose result register was read.
        fu: String,
    },
    /// A two-input operation triggered before its operand register was
    /// ever written.
    OperandUnset {
        /// Cycle of the trigger.
        cycle: u64,
        /// FU that was triggered.
        fu: String,
    },
    /// The opcode does not belong to the triggered unit's kind.
    WrongUnitClass {
        /// FU that was triggered.
        fu: String,
        /// Opcode that rode the trigger.
        op: OpCode,
    },
    /// A load or store with an empty memory image.
    EmptyMemory {
        /// Cycle of the access.
        cycle: u64,
    },
    /// A jump beyond one-past-the-end of the program.
    InvalidJumpTarget {
        /// Cycle of the jump.
        cycle: u64,
        /// Requested instruction index.
        target: u64,
        /// Program length.
        len: usize,
    },
    /// `SimOptions::max_cycles` exceeded.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnconnectedSocket { name } => {
                write!(f, "unconnected socket: no unit `{name}` in this role")
            }
            SimError::RegisterOutOfRange { rf, reg, regs } => {
                write!(f, "register {rf}[{reg}] out of range ({regs} registers)")
            }
            SimError::BusContention {
                cycle,
                moves,
                buses,
            } => write!(f, "cycle {cycle}: {moves} moves on {buses} buses"),
            SimError::PortContention { cycle, resource } => {
                write!(f, "cycle {cycle}: port contention on {resource}")
            }
            SimError::DoubleWrite { cycle, dst } => {
                write!(f, "cycle {cycle}: double write to {dst}")
            }
            SimError::ResultNotReady { cycle, fu } => {
                write!(
                    f,
                    "cycle {cycle}: result of {fu} read before it was produced"
                )
            }
            SimError::OperandUnset { cycle, fu } => {
                write!(
                    f,
                    "cycle {cycle}: {fu} triggered with operand never written"
                )
            }
            SimError::WrongUnitClass { fu, op } => {
                write!(f, "opcode `{}` cannot execute on {fu}", op.mnemonic())
            }
            SimError::EmptyMemory { cycle } => {
                write!(f, "cycle {cycle}: memory access with empty memory image")
            }
            SimError::InvalidJumpTarget { cycle, target, len } => {
                write!(
                    f,
                    "cycle {cycle}: jump to {target} beyond program end {len}"
                )
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// One executed move, with the value that travelled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMove {
    /// Source as written in the program.
    pub src: MoveSrc,
    /// Destination as written in the program.
    pub dst: MoveDst,
    /// The transported (masked) value.
    pub value: u64,
}

/// Everything that happened in one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCycle {
    /// Cycle number (0-based, counts executed instructions).
    pub cycle: u64,
    /// Instruction index executed this cycle.
    pub instr: usize,
    /// The moves, in program order.
    pub moves: Vec<TraceMove>,
}

/// The deterministic record of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Total executed cycles (one per instruction issued).
    pub cycles: u64,
    /// Per-cycle move log.
    pub steps: Vec<TraceCycle>,
    /// Final register-file state, `(name, registers)` per bound RF.
    pub rfs: Vec<(String, Vec<u64>)>,
    /// Final data-memory state.
    pub mem: Vec<u64>,
    /// The program's declared outputs, read from the final RF state.
    pub outputs: Vec<u64>,
}

/// Per-FU datapath state.
struct FuSim {
    kind: FuKind,
    operand: u64,
    operand_set: bool,
    result: Option<u64>,
    /// Results in flight: `(ready_cycle, value)`, in trigger order.
    pending: VecDeque<(u64, u64)>,
}

/// The cycle-accurate simulator: binds a [`Program`] to an
/// [`Architecture`] and executes it.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    arch: &'a Architecture,
    options: SimOptions,
}

impl<'a> Simulator<'a> {
    /// A simulator for `arch` with default options.
    pub fn new(arch: &'a Architecture) -> Self {
        Simulator {
            arch,
            options: SimOptions::default(),
        }
    }

    /// Replaces the run options.
    pub fn options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs `program` to completion and returns its trace.
    ///
    /// # Errors
    ///
    /// Any structural or resource violation aborts with the matching
    /// [`SimError`]; see the module docs for the legality rules.
    pub fn run(&self, program: &Program) -> Result<Trace, SimError> {
        let mask = program.mask();
        let width = u64::from(program.width);
        let fu_index = |name: &str| self.arch.fus().iter().position(|f| f.name == name);
        let rf_index = |name: &str| self.arch.rfs().iter().position(|r| r.name == name);

        // Bind register files: architecture capacity, overridden by the
        // program's (possibly larger, if allowed) image.
        let mut rf_state: Vec<Vec<u64>> =
            self.arch.rfs().iter().map(|r| vec![0u64; r.regs]).collect();
        for image in &program.rfs {
            let ri = rf_index(&image.name).ok_or_else(|| SimError::UnconnectedSocket {
                name: image.name.clone(),
            })?;
            let hw_regs = self.arch.rfs()[ri].regs;
            if image.regs > hw_regs && !self.options.allow_register_overflow {
                return Err(SimError::RegisterOutOfRange {
                    rf: image.name.clone(),
                    reg: image.regs - 1,
                    regs: hw_regs,
                });
            }
            let mut state = vec![0u64; image.regs.max(hw_regs)];
            for (reg, &v) in image.init.iter().enumerate() {
                if reg < state.len() {
                    state[reg] = v & mask;
                }
            }
            rf_state[ri] = state;
        }

        let mut fu_state: Vec<FuSim> = self
            .arch
            .fus()
            .iter()
            .map(|f| FuSim {
                kind: f.kind,
                operand: 0,
                operand_set: false,
                result: None,
                pending: VecDeque::new(),
            })
            .collect();
        let mut mem = program.mem.clone();

        let mut steps = Vec::new();
        let mut cycle: u64 = 0;
        let mut pc: usize = 0;
        while pc < program.instructions.len() {
            if cycle >= self.options.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.options.max_cycles,
                });
            }
            // 1. Land results whose latency expired.
            for fu in &mut fu_state {
                while fu.pending.front().is_some_and(|&(ready, _)| ready <= cycle) {
                    let (_, v) = fu.pending.pop_front().expect("front checked");
                    fu.result = Some(v);
                }
            }

            let instr = &program.instructions[pc];
            if instr.len() > self.arch.bus_count() {
                return Err(SimError::BusContention {
                    cycle,
                    moves: instr.len(),
                    buses: self.arch.bus_count(),
                });
            }

            // 2. Read every source against pre-cycle state, counting
            //    port usage as we go.
            let mut rf_reads = vec![0usize; self.arch.rfs().len()];
            let mut imm_out = vec![0usize; self.arch.fus().len()];
            let mut values = Vec::with_capacity(instr.len());
            for mv in instr {
                let v = match &mv.src {
                    MoveSrc::FuResult(name) => {
                        let fi = fu_index(name)
                            .filter(|&fi| self.arch.fus()[fi].kind != FuKind::Immediate)
                            .ok_or_else(|| SimError::UnconnectedSocket { name: name.clone() })?;
                        fu_state[fi]
                            .result
                            .ok_or_else(|| SimError::ResultNotReady {
                                cycle,
                                fu: name.clone(),
                            })?
                    }
                    MoveSrc::RfRead { rf, reg } => {
                        let ri = rf_index(rf)
                            .ok_or_else(|| SimError::UnconnectedSocket { name: rf.clone() })?;
                        let state = &rf_state[ri];
                        if *reg >= state.len() {
                            return Err(SimError::RegisterOutOfRange {
                                rf: rf.clone(),
                                reg: *reg,
                                regs: state.len(),
                            });
                        }
                        rf_reads[ri] += 1;
                        if rf_reads[ri] > self.arch.rfs()[ri].nout() {
                            return Err(SimError::PortContention {
                                cycle,
                                resource: format!("{rf} read ports"),
                            });
                        }
                        state[*reg]
                    }
                    MoveSrc::Imm { unit, value } => {
                        let fi = fu_index(unit)
                            .filter(|&fi| self.arch.fus()[fi].kind == FuKind::Immediate)
                            .ok_or_else(|| SimError::UnconnectedSocket { name: unit.clone() })?;
                        imm_out[fi] += 1;
                        if imm_out[fi] > 1 {
                            return Err(SimError::PortContention {
                                cycle,
                                resource: format!("{unit} output"),
                            });
                        }
                        value & mask
                    }
                };
                values.push(v & mask);
            }

            // 3. Check destinations: no double writes, ports respected.
            let mut operand_hit = vec![false; self.arch.fus().len()];
            let mut trigger_hit = vec![false; self.arch.fus().len()];
            let mut rf_writes = vec![0usize; self.arch.rfs().len()];
            let mut written: Vec<(usize, usize)> = Vec::new();
            for mv in instr {
                match &mv.dst {
                    MoveDst::FuOperand(name) => {
                        let fi = fu_index(name)
                            .filter(|&fi| self.arch.fus()[fi].kind != FuKind::Immediate)
                            .ok_or_else(|| SimError::UnconnectedSocket { name: name.clone() })?;
                        if operand_hit[fi] {
                            return Err(SimError::DoubleWrite {
                                cycle,
                                dst: format!("{name}.o"),
                            });
                        }
                        operand_hit[fi] = true;
                    }
                    MoveDst::FuTrigger { fu, op } => {
                        let fi = fu_index(fu)
                            .ok_or_else(|| SimError::UnconnectedSocket { name: fu.clone() })?;
                        if self.arch.fus()[fi].kind != op.fu_kind() {
                            return Err(SimError::WrongUnitClass {
                                fu: fu.clone(),
                                op: *op,
                            });
                        }
                        if trigger_hit[fi] {
                            return Err(SimError::DoubleWrite {
                                cycle,
                                dst: format!("{fu}.t"),
                            });
                        }
                        trigger_hit[fi] = true;
                    }
                    MoveDst::RfWrite { rf, reg } => {
                        let ri = rf_index(rf)
                            .ok_or_else(|| SimError::UnconnectedSocket { name: rf.clone() })?;
                        if *reg >= rf_state[ri].len() {
                            return Err(SimError::RegisterOutOfRange {
                                rf: rf.clone(),
                                reg: *reg,
                                regs: rf_state[ri].len(),
                            });
                        }
                        rf_writes[ri] += 1;
                        if rf_writes[ri] > self.arch.rfs()[ri].nin() {
                            return Err(SimError::PortContention {
                                cycle,
                                resource: format!("{rf} write ports"),
                            });
                        }
                        if written.contains(&(ri, *reg)) {
                            return Err(SimError::DoubleWrite {
                                cycle,
                                dst: format!("{rf}[{reg}]"),
                            });
                        }
                        written.push((ri, *reg));
                    }
                }
            }

            // 4a. Operand registers latch first …
            for (mv, &v) in instr.iter().zip(&values) {
                if let MoveDst::FuOperand(name) = &mv.dst {
                    let fi = fu_index(name).expect("checked above");
                    fu_state[fi].operand = v;
                    fu_state[fi].operand_set = true;
                }
            }
            // 4b. … then triggers fire …
            let mut next_pc: Option<usize> = None;
            for (mv, &t) in instr.iter().zip(&values) {
                let MoveDst::FuTrigger { fu, op } = &mv.dst else {
                    continue;
                };
                let fi = fu_index(fu).expect("checked above");
                let o = fu_state[fi].operand;
                if op.arity() == 2 && !fu_state[fi].operand_set {
                    return Err(SimError::OperandUnset {
                        cycle,
                        fu: fu.clone(),
                    });
                }
                match op {
                    OpCode::Jmp | OpCode::Cjmp => {
                        let taken = *op == OpCode::Jmp || o != 0;
                        if taken {
                            if t > program.instructions.len() as u64 {
                                return Err(SimError::InvalidJumpTarget {
                                    cycle,
                                    target: t,
                                    len: program.instructions.len(),
                                });
                            }
                            next_pc = Some(t as usize);
                        }
                    }
                    OpCode::St => {
                        if mem.is_empty() {
                            return Err(SimError::EmptyMemory { cycle });
                        }
                        let idx = (o as usize) % mem.len();
                        mem[idx] = t & mask;
                    }
                    _ => {
                        let raw = match op {
                            OpCode::Add => o.wrapping_add(t),
                            OpCode::Sub => o.wrapping_sub(t),
                            OpCode::Shl => o << (t % width),
                            OpCode::Shr => (o & mask) >> (t % width),
                            OpCode::And => o & t,
                            OpCode::Or => o | t,
                            OpCode::Xor => o ^ t,
                            OpCode::Not => !t,
                            OpCode::Mul => o.wrapping_mul(t),
                            OpCode::Eq => u64::from(o == t),
                            OpCode::Ne => u64::from(o != t),
                            OpCode::Ltu => u64::from(o < t),
                            OpCode::Geu => u64::from(o >= t),
                            OpCode::Ld => {
                                if mem.is_empty() {
                                    return Err(SimError::EmptyMemory { cycle });
                                }
                                mem[(t as usize) % mem.len()]
                            }
                            OpCode::St | OpCode::Jmp | OpCode::Cjmp => unreachable!(),
                        };
                        let ready = cycle + u64::from(fu_state[fi].kind.latency());
                        fu_state[fi].pending.push_back((ready, raw & mask));
                    }
                }
            }
            // 4c. … and RF writes land last.
            for (mv, &v) in instr.iter().zip(&values) {
                if let MoveDst::RfWrite { rf, reg } = &mv.dst {
                    let ri = rf_index(rf).expect("checked above");
                    rf_state[ri][*reg] = v;
                }
            }

            steps.push(TraceCycle {
                cycle,
                instr: pc,
                moves: instr
                    .iter()
                    .zip(&values)
                    .map(|(mv, &value)| TraceMove {
                        src: mv.src.clone(),
                        dst: mv.dst.clone(),
                        value,
                    })
                    .collect(),
            });
            cycle += 1;
            pc = next_pc.unwrap_or(pc + 1);
        }

        // Read the declared outputs from final state.
        let mut outputs = Vec::with_capacity(program.outputs.len());
        for out in &program.outputs {
            let ri = rf_index(&out.rf).ok_or_else(|| SimError::UnconnectedSocket {
                name: out.rf.clone(),
            })?;
            let state = &rf_state[ri];
            if out.reg >= state.len() {
                return Err(SimError::RegisterOutOfRange {
                    rf: out.rf.clone(),
                    reg: out.reg,
                    regs: state.len(),
                });
            }
            outputs.push(state[out.reg]);
        }

        Ok(Trace {
            cycles: cycle,
            steps,
            rfs: self
                .arch
                .rfs()
                .iter()
                .zip(rf_state)
                .map(|(r, s)| (r.name.clone(), s))
                .collect(),
            mem,
            outputs,
        })
    }
}
