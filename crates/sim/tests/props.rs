//! The headline validation: the analytic cycle model is executable.
//!
//! For every workload in the standard registry, on every point of the
//! fast template space, the lowered program's executed cycle count
//! equals the scheduler's analytic count and the executed outputs
//! equal the golden model. Plus: simulator determinism and hard-error
//! paths (contention, unconnected sockets).

use proptest::prelude::*;
use tta_arch::template::TemplateSpace;
use tta_arch::Architecture;
use tta_movec::schedule::Scheduler;
use tta_sim::{lower, SimError, SimOptions, Simulator};
use tta_workloads::suite::{SuiteParams, SuiteRegistry};

fn lowered_options() -> SimOptions {
    SimOptions {
        allow_register_overflow: true,
        ..Default::default()
    }
}

/// The acceptance property: executed == modeled, for every registered
/// workload on every fast-space point where the workload schedules.
#[test]
fn every_workload_executes_to_the_model_on_the_fast_space() {
    let reg = SuiteRegistry::standard();
    let params = SuiteParams::fast();
    let space = TemplateSpace::fast_default();
    let archs: Vec<Architecture> = space.enumerate();
    for name in reg.workload_names() {
        let w = reg.build(name, &params).expect("registered workload");
        let golden = {
            let mut mem = w.mem.clone();
            w.dfg.eval(&w.inputs, &mut mem)
        };
        let mut executed_somewhere = false;
        for arch in &archs {
            let Ok(schedule) = Scheduler::new(arch).run(&w.dfg) else {
                continue; // workload infeasible on this point
            };
            let program = lower(arch, &w.dfg, &schedule, &w.inputs, &w.mem)
                .unwrap_or_else(|e| panic!("{name} on {}: lowering failed: {e}", arch.name));
            let trace = Simulator::new(arch)
                .options(lowered_options())
                .run(&program)
                .unwrap_or_else(|e| panic!("{name} on {}: simulation failed: {e}", arch.name));
            assert_eq!(
                trace.cycles,
                u64::from(schedule.cycles),
                "{name} on {}: executed cycles != scheduled cycles",
                arch.name
            );
            assert_eq!(
                trace.outputs, golden,
                "{name} on {}: executed outputs != golden model",
                arch.name
            );
            executed_somewhere = true;
        }
        assert!(executed_somewhere, "{name} never executed — vacuous test");
    }
}

/// Final memory must also agree with the golden model's view (stores
/// land where `Dfg::eval` says they land).
#[test]
fn final_memory_matches_golden_model() {
    let reg = SuiteRegistry::standard();
    let params = SuiteParams::fast();
    let arch = TemplateSpace::fast_default().point(TemplateSpace::fast_default().len() - 1);
    for name in reg.workload_names() {
        let w = reg.build(name, &params).expect("registered workload");
        let mut golden_mem = w.mem.clone();
        w.dfg.eval(&w.inputs, &mut golden_mem);
        let schedule = Scheduler::new(&arch)
            .run(&w.dfg)
            .expect("maximal point schedules all");
        let program = lower(&arch, &w.dfg, &schedule, &w.inputs, &w.mem).unwrap();
        let trace = Simulator::new(&arch)
            .options(lowered_options())
            .run(&program)
            .unwrap();
        assert_eq!(trace.mem, golden_mem, "{name}: final memory diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same program + same architecture ⇒ bit-identical trace, twice.
    #[test]
    fn simulation_is_deterministic(point in 0usize..24, wl in 0usize..8) {
        let reg = SuiteRegistry::standard();
        let names = reg.workload_names();
        let name = names[wl % names.len()];
        let w = reg.build(name, &SuiteParams::fast()).expect("registered");
        let space = TemplateSpace::fast_default();
        let arch = space.point(point % space.len());
        if let Ok(schedule) = Scheduler::new(&arch).run(&w.dfg) {
            let program = lower(&arch, &w.dfg, &schedule, &w.inputs, &w.mem).unwrap();
            let a = Simulator::new(&arch).options(lowered_options()).run(&program).unwrap();
            let b = Simulator::new(&arch).options(lowered_options()).run(&program).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}

// ---- error paths: illegal programs are hard errors, not silences ----

#[test]
fn bus_contention_is_a_hard_error() {
    // Figure 9 has two buses; a three-move instruction cannot issue.
    let program = tta_asm::assemble(
        "\
.width 16
.rf rf1 4 = 1 2 3 0
rf1[0] -> alu0.o, rf1[1] -> alu0.add, rf1[2] -> cmp0.o
",
    )
    .unwrap();
    let arch = Architecture::figure9();
    assert!(matches!(
        Simulator::new(&arch).run(&program),
        Err(SimError::BusContention {
            cycle: 0,
            moves: 3,
            buses: 2
        })
    ));
}

#[test]
#[should_panic(expected = "unconnected socket")]
fn unconnected_socket_is_a_hard_error() {
    // Figure 9 has no MUL unit: `mul0` resolves nowhere.
    let program = tta_asm::assemble(
        "\
.width 16
.rf rf1 2 = 3 4
rf1[0] -> mul0.o, rf1[1] -> mul0.mul
",
    )
    .unwrap();
    let arch = Architecture::figure9();
    Simulator::new(&arch)
        .run(&program)
        .map_err(|e| e.to_string())
        .unwrap();
}

#[test]
fn double_write_same_register_is_a_hard_error() {
    // Two moves into the same operand register in one cycle.
    let program = tta_asm::assemble(
        "\
.width 16
.rf rf1 4 = 1 2 0 0
rf1[0] -> alu0.o, rf1[1] -> alu0.o
",
    )
    .unwrap();
    let arch = Architecture::figure9();
    assert!(matches!(
        Simulator::new(&arch).run(&program),
        Err(SimError::DoubleWrite { cycle: 0, .. })
    ));
}

#[test]
fn result_read_before_latency_expires_is_a_hard_error() {
    // The ALU takes one cycle: reading alu0.r in the trigger cycle is
    // premature (the scheduler never emits this; relation 6 forbids it).
    let program = tta_asm::assemble(
        "\
.width 16
.rf rf1 2 = 1 0
rf1[0] -> alu0.o, alu0.r -> rf1[1]
",
    )
    .unwrap();
    let arch = Architecture::figure9();
    assert!(matches!(
        Simulator::new(&arch).run(&program),
        Err(SimError::ResultNotReady { cycle: 0, .. })
    ));
}

#[test]
fn rf_port_contention_is_a_hard_error() {
    // rf2 of Figure 9 has one write port; two same-cycle writes break it.
    let program = tta_asm::assemble(
        "\
.width 16
.rf rf1 2 = 1 2
rf1[0] -> rf2[0], rf1[1] -> rf2[1]
",
    )
    .unwrap();
    let arch = Architecture::figure9();
    match Simulator::new(&arch).run(&program) {
        Err(SimError::PortContention { cycle: 0, resource }) => {
            assert!(resource.contains("rf2"), "{resource}");
        }
        other => panic!("expected write-port contention, got {other:?}"),
    }
}

#[test]
fn register_overflow_needs_opt_in() {
    // A program declaring more registers than the machine has is only
    // legal under the lowered-spill convention.
    let program = tta_asm::assemble(
        "\
.width 16
.rf rf1 100 =
-
",
    )
    .unwrap();
    let arch = Architecture::figure9();
    assert!(matches!(
        Simulator::new(&arch).run(&program),
        Err(SimError::RegisterOutOfRange { .. })
    ));
    assert!(Simulator::new(&arch)
        .options(lowered_options())
        .run(&program)
        .is_ok());
}

#[test]
fn wrong_unit_class_is_a_hard_error() {
    let program = tta_asm::assemble(
        "\
.width 16
.rf rf1 2 = 1 2
rf1[0] -> alu0.o, rf1[1] -> alu0.ltu
",
    )
    .unwrap();
    let arch = Architecture::figure9();
    assert!(matches!(
        Simulator::new(&arch).run(&program),
        Err(SimError::WrongUnitClass { .. })
    ));
}

#[test]
fn cycle_limit_stops_runaway_loops() {
    let program = tta_asm::assemble(
        "\
.width 16
top:
imm0:@top -> pc0.jmp
",
    )
    .unwrap();
    let arch = Architecture::figure9();
    let opts = SimOptions {
        max_cycles: 100,
        ..Default::default()
    };
    assert!(matches!(
        Simulator::new(&arch).options(opts).run(&program),
        Err(SimError::CycleLimit { limit: 100 })
    ));
}
