//! Property-based tests of the architecture model: template generation
//! always validates, CD floors hold for any port assignment, and the
//! canonical transports satisfy relations (2)–(8).

use proptest::prelude::*;
use tta_arch::template::{TemplateBuilder, TemplateSpace};
use tta_arch::timing::{canonical_transport, rf_transport_cycles};
use tta_arch::{transport_cycles, validate_relations, BusId, FuInstance, FuKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cd_in_paper_bounds_for_any_assignment(o in 0u8..4, t in 0u8..4, r in 0u8..4) {
        let fu = FuInstance {
            kind: FuKind::Alu,
            name: "x".into(),
            operand_bus: BusId(o),
            trigger_bus: BusId(t),
            result_bus: BusId(r),
        };
        let cd = transport_cycles(&fu);
        // eq. (9): never below 3; full sharing adds at most 2.
        prop_assert!((3..=5).contains(&cd), "cd = {cd}");
        // eq. (10): sharing operand+trigger costs at least 4.
        if o == t {
            prop_assert!(cd >= 4);
        }
    }

    #[test]
    fn canonical_transports_always_validate(
        o in 0u8..4, t in 0u8..4, r in 0u8..4, start in 0u32..100, gap in 5u32..20,
    ) {
        for kind in [FuKind::Alu, FuKind::Cmp, FuKind::Mul, FuKind::Immediate] {
            let fu = FuInstance {
                kind,
                name: "x".into(),
                operand_bus: BusId(o),
                trigger_bus: if kind == FuKind::Immediate { BusId(o) } else { BusId(t) },
                result_bus: BusId(r),
            };
            let a = canonical_transport(&fu, start);
            let b = canonical_transport(&fu, start + gap);
            prop_assert_eq!(validate_relations(&[a, b]), Ok(()), "{:?}", kind);
        }
    }

    #[test]
    fn templates_always_validate(
        buses in 1usize..5,
        alus in 1usize..4,
        cmps in 0usize..3,
        muls in 0usize..2,
        regs in 1usize..33,
        nin in 1usize..3,
        nout in 1usize..4,
    ) {
        let mut b = TemplateBuilder::new("p", 16, buses);
        for _ in 0..alus {
            b = b.fu(FuKind::Alu);
        }
        for _ in 0..cmps {
            b = b.fu(FuKind::Cmp);
        }
        for _ in 0..muls {
            b = b.fu(FuKind::Mul);
        }
        let arch = b
            .fu(FuKind::Immediate)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .rf(regs, nin, nout)
            .build();
        prop_assert_eq!(arch.validate(), Ok(()));
        // Socket count is exactly the port sum.
        let expect: usize = arch.fus().iter().map(|f| f.nconn()).sum::<usize>()
            + arch.rfs().iter().map(|r| r.nconn()).sum::<usize>();
        prop_assert_eq!(arch.socket_count(), expect);
    }

    #[test]
    fn rf_cd_matches_sharing(wb in 0u8..4, rb in 0u8..4) {
        let cd = rf_transport_cycles(BusId(wb), BusId(rb));
        if wb == rb {
            prop_assert_eq!(cd, 4);
        } else {
            prop_assert_eq!(cd, 3);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lazy_points_agree_with_eager_enumeration(
        nbuses in 1usize..4,
        nalus in 1usize..3,
        ncmps in 1usize..3,
        muls0 in proptest::bool::ANY,
        nrfsets in 1usize..3,
        regs in 2usize..17,
        npipes in 1usize..3,
        nbanks in 1usize..3,
    ) {
        // A randomised bounded space; knob vectors of varying lengths
        // exercise every mixed-radix digit, including the hierarchical
        // ones (clusters/pipes/banks).
        let space = TemplateSpace {
            width: 8,
            buses: (1..=nbuses).collect(),
            clusters: (1..=2).collect(),
            alus: (1..=nalus).collect(),
            cmps: (1..=ncmps).collect(),
            muls: if muls0 { vec![0] } else { vec![0, 1] },
            imms: vec![1],
            pipes: (1..=npipes).collect(),
            rf_banks: (1..=nbanks).collect(),
            rf_sets: (0..nrfsets).map(|k| vec![(regs + k, 1, 2)]).collect(),
        };
        // points() yields exactly len() architectures…
        let lazy: Vec<_> = space.points().collect();
        prop_assert_eq!(lazy.len(), space.len());
        prop_assert_eq!(space.points().len(), space.len());
        // …element-for-element equal to enumerate()…
        prop_assert_eq!(&lazy, &space.enumerate());
        // …and index-based random access matches iteration order.
        for (i, arch) in lazy.iter().enumerate() {
            prop_assert_eq!(&space.point(i), arch);
            prop_assert_eq!(space.index_of(space.coords(i)), i);
        }
    }
}
