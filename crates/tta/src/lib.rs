//! The transport-triggered architecture (TTA) machine model.
//!
//! A TTA template (Figure 1 of the paper) is a set of functional units
//! (FU) and register files (RF) whose ports attach through *sockets* to a
//! small number of *move buses*; the only instruction is the data
//! transport (move). This crate models:
//!
//! * the architecture description ([`Architecture`], [`FuInstance`],
//!   [`RfInstance`]) with per-port bus assignment, validation and
//!   socket/connector enumeration;
//! * the hybrid-pipelining transport-timing relations (2)–(8) of the
//!   paper as an executable checker ([`timing`]);
//! * the per-operation cycle floors `CD ≥ 3` / `CD ≥ 4` of eqs. (9)–(10)
//!   ([`timing::transport_cycles`]);
//! * template generators for the design-space sweep ([`template`]);
//! * the bus-oriented VLIW ASIP generalisation of Figure 7 ([`vliw`]).
//!
//! # Quickstart
//!
//! ```
//! use tta_arch::{Architecture, FuKind};
//!
//! // The paper's Figure 9 machine: 2 buses, 16 bit.
//! let arch = Architecture::figure9();
//! assert_eq!(arch.bus_count(), 2);
//! assert!(arch.validate().is_ok());
//! assert!(arch.fus().iter().any(|f| f.kind == FuKind::Alu));
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod isa;
pub mod template;
pub mod timing;
pub mod vliw;

pub use arch::{Architecture, ArchitectureError, BusId, FuInstance, FuKind, PortRole, RfInstance};
pub use isa::InstructionFormat;
pub use timing::{transport_cycles, validate_relations, OpTransport, RelationViolation};
