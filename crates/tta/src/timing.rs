//! The transport-timing relations (2)–(8) of the paper, executable.
//!
//! `Ci(r)` denotes the cycle in which the data transport of operation `i`
//! to register `r ∈ {O, T, R, Fin, Fout}` happens. The relations:
//!
//! ```text
//! (2) Ci(T) − Ci(O)   ≥ 0        operand no later than trigger
//! (3) Ci(R) − Ci(T)   ≥ 1        processing takes ≥ 1 cycle
//! (4) Ci(T) > Cj(T) ⇔ Ci(R) > Cj(R)   in-order completion per FU
//! (5) Ci(T) > Cj(T) ⇔ Ci(O) > Cj(T)   operands not overwritten early
//! (6) Ci(O) − Ci(Fin) ≥ 1        decode before operand
//! (7) Ci(T) − Ci(Fin) ≥ 1        decode before trigger
//! (8) Ci(Fout) − Ci(R) ≥ 1       result leaves after capture
//! ```
//!
//! and their corollaries, eqs. (9)–(10): the minimum data-in → data-out
//! distance `CD` is 3 cycles, or 4 when operand and trigger share a bus
//! (and one more when the result shares too).

use crate::arch::{BusId, FuInstance, FuKind};

/// Transport cycles of one operation through one FU (Figure 3 registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTransport {
    /// Cycle of the operand move (`None` for single-input triggers).
    pub o: Option<u32>,
    /// Cycle of the trigger move.
    pub t: u32,
    /// Cycle the result register captures.
    pub r: u32,
    /// Cycle the socket decode registered the incoming move.
    pub fin: u32,
    /// Cycle the output socket pushes the result onto a bus.
    pub fout: u32,
}

/// A violated relation, by paper equation number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationViolation {
    /// Paper equation number (2–8).
    pub relation: u8,
    /// Index of the (first) offending operation.
    pub op: usize,
    /// Index of the second operation for the pairwise relations (4)–(5).
    pub other: Option<usize>,
}

impl std::fmt::Display for RelationViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.other {
            Some(j) => write!(
                f,
                "relation ({}) violated by operations {} and {j}",
                self.relation, self.op
            ),
            None => write!(
                f,
                "relation ({}) violated by operation {}",
                self.relation, self.op
            ),
        }
    }
}

impl std::error::Error for RelationViolation {}

/// Checks the per-operation relations (2)–(3), (6)–(8) and the pairwise
/// same-FU relations (4)–(5) over `ops` (all transports of one FU).
///
/// # Errors
///
/// Returns the first violation found, tagged with the paper's equation
/// number.
pub fn validate_relations(ops: &[OpTransport]) -> Result<(), RelationViolation> {
    for (i, op) in ops.iter().enumerate() {
        if let Some(o) = op.o {
            if op.t < o {
                return Err(RelationViolation {
                    relation: 2,
                    op: i,
                    other: None,
                });
            }
            if o < op.fin + 1 {
                return Err(RelationViolation {
                    relation: 6,
                    op: i,
                    other: None,
                });
            }
        }
        if op.r < op.t + 1 {
            return Err(RelationViolation {
                relation: 3,
                op: i,
                other: None,
            });
        }
        if op.t < op.fin + 1 {
            return Err(RelationViolation {
                relation: 7,
                op: i,
                other: None,
            });
        }
        if op.fout < op.r + 1 {
            return Err(RelationViolation {
                relation: 8,
                op: i,
                other: None,
            });
        }
    }
    for (i, a) in ops.iter().enumerate() {
        for (j, b) in ops.iter().enumerate() {
            if i == j {
                continue;
            }
            // (4): trigger order must match result order.
            if (a.t > b.t) != (a.r > b.r) {
                return Err(RelationViolation {
                    relation: 4,
                    op: i,
                    other: Some(j),
                });
            }
            // (5): a later operation's operand must arrive after the
            // earlier operation's trigger (no early overwrite).
            if a.t > b.t {
                if let Some(oa) = a.o {
                    if oa <= b.t {
                        return Err(RelationViolation {
                            relation: 5,
                            op: i,
                            other: Some(j),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Minimum data-in → data-out cycle distance `CDc(tDin, tDout)` for a
/// functional unit, given its socket→bus assignment — eqs. (9) and (10).
///
/// With all three ports on distinct buses the floor is 3 cycles; every
/// port pair forced onto the same bus serialises one more transport.
pub fn transport_cycles(fu: &FuInstance) -> u32 {
    // Shared-bus conflicts (ports − distinct buses) computed directly
    // on the at-most-three port buses: this sits on the per-point
    // test-cost fold of every sweep engine, where materialising the
    // bus list ([`FuInstance::port_buses`]) is measurable.
    let (t, r) = (fu.trigger_bus, fu.result_bus);
    let conflicts = if fu.kind == FuKind::Immediate {
        u32::from(t == r)
    } else {
        let o = fu.operand_bus;
        u32::from(t == o) + u32::from(r == o || r == t)
    };
    let base = 3 + fu.kind.latency().saturating_sub(1);
    base + conflicts
}

/// Minimum write→read cycle distance for a register-file access pair,
/// used by the eq. (12) cost: 3 with a dedicated write and read bus, one
/// more when they share.
pub fn rf_transport_cycles(write_bus: BusId, read_bus: BusId) -> u32 {
    if write_bus == read_bus {
        4
    } else {
        3
    }
}

/// Builds the canonical minimum-latency transport for one operation of
/// `fu` starting at `start` (the Fin decode cycle), honouring eqs. (9–10).
pub fn canonical_transport(fu: &FuInstance, start: u32) -> OpTransport {
    let shared_ot = fu.kind != FuKind::Immediate && fu.operand_bus == fu.trigger_bus;
    let fin = start;
    let (o, t) = if fu.kind == FuKind::Immediate {
        (None, fin + 1)
    } else if shared_ot {
        // Same bus: operand first, trigger one cycle later (eq. 10).
        (Some(fin + 1), fin + 2)
    } else {
        (Some(fin + 1), fin + 1)
    };
    let r = t + fu.kind.latency();
    let fout = r + 1;
    OpTransport { o, t, r, fin, fout }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{BusId, FuInstance, FuKind};

    fn fu_on(o: u8, t: u8, r: u8) -> FuInstance {
        FuInstance {
            kind: FuKind::Alu,
            name: "alu0".into(),
            operand_bus: BusId(o),
            trigger_bus: BusId(t),
            result_bus: BusId(r),
        }
    }

    #[test]
    fn eq9_floor_is_three_cycles() {
        // Distinct buses for O, T, R: CD = 3 (eq. 9).
        assert_eq!(transport_cycles(&fu_on(0, 1, 2)), 3);
    }

    #[test]
    fn eq10_shared_operand_trigger_costs_four() {
        assert_eq!(transport_cycles(&fu_on(0, 0, 1)), 4);
    }

    #[test]
    fn all_shared_costs_five() {
        assert_eq!(transport_cycles(&fu_on(0, 0, 0)), 5);
    }

    #[test]
    fn canonical_transport_satisfies_relations() {
        for fu in [fu_on(0, 1, 2), fu_on(0, 0, 1), fu_on(0, 0, 0)] {
            let t0 = canonical_transport(&fu, 0);
            let t1 = canonical_transport(&fu, 10);
            assert_eq!(validate_relations(&[t0, t1]), Ok(()), "{fu:?}");
            // CD matches the data-in (first input move) to data-out span.
            let din = t0.o.unwrap_or(t0.t);
            // Shared-bus serialisation shows up as a larger span.
            assert!(t0.fout - din + 1 >= 3);
        }
    }

    #[test]
    fn relation2_catches_trigger_before_operand() {
        let bad = OpTransport {
            o: Some(5),
            t: 4,
            r: 6,
            fin: 3,
            fout: 7,
        };
        let err = validate_relations(&[bad]).unwrap_err();
        assert_eq!(err.relation, 2);
    }

    #[test]
    fn relation3_catches_zero_latency() {
        let bad = OpTransport {
            o: Some(4),
            t: 4,
            r: 4,
            fin: 3,
            fout: 7,
        };
        assert_eq!(validate_relations(&[bad]).unwrap_err().relation, 3);
    }

    #[test]
    fn relation4_catches_out_of_order_completion() {
        let a = OpTransport {
            o: Some(1),
            t: 1,
            r: 5,
            fin: 0,
            fout: 6,
        };
        let b = OpTransport {
            o: Some(3),
            t: 3,
            r: 4,
            fin: 2,
            fout: 7,
        };
        let err = validate_relations(&[a, b]).unwrap_err();
        assert_eq!(err.relation, 4);
    }

    #[test]
    fn relation5_catches_operand_overwrite() {
        // Op b triggers at 3; op a (later trigger at 4) loads its operand
        // at cycle 2 ≤ 3 — it would be overwritten by b's execution.
        let a = OpTransport {
            o: Some(2),
            t: 4,
            r: 5,
            fin: 1,
            fout: 6,
        };
        let b = OpTransport {
            o: Some(3),
            t: 3,
            r: 4,
            fin: 1,
            fout: 5,
        };
        let err = validate_relations(&[a, b]).unwrap_err();
        assert_eq!(err.relation, 5);
    }

    #[test]
    fn relations_6_7_8_catch_decode_violations() {
        let bad6 = OpTransport {
            o: Some(0),
            t: 1,
            r: 2,
            fin: 0,
            fout: 3,
        };
        assert_eq!(validate_relations(&[bad6]).unwrap_err().relation, 6);
        let bad7 = OpTransport {
            o: None,
            t: 0,
            r: 1,
            fin: 0,
            fout: 2,
        };
        assert_eq!(validate_relations(&[bad7]).unwrap_err().relation, 7);
        let bad8 = OpTransport {
            o: None,
            t: 1,
            r: 2,
            fin: 0,
            fout: 2,
        };
        assert_eq!(validate_relations(&[bad8]).unwrap_err().relation, 8);
    }

    #[test]
    fn mul_latency_raises_floor() {
        let mul = FuInstance {
            kind: FuKind::Mul,
            name: "mul0".into(),
            operand_bus: BusId(0),
            trigger_bus: BusId(1),
            result_bus: BusId(2),
        };
        assert_eq!(transport_cycles(&mul), 4);
    }
}
