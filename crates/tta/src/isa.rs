//! Instruction-format accounting.
//!
//! A TTA instruction is one move slot per bus, each encoding a source and
//! a destination socket address (plus an immediate field on buses fed by
//! an immediate unit). The paper notes the "control signals and bits are
//! not shown, they are adjoined to the data-bus" — this module makes the
//! control-path width explicit, so the area model can charge instruction
//! memory and decode fan-out for bus-rich templates.

use crate::arch::{Architecture, FuKind};

/// Bit-level layout of one move slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotFormat {
    /// Source socket address bits.
    pub src_bits: u32,
    /// Destination socket address bits.
    pub dst_bits: u32,
    /// Guard (conditional-execution) bit.
    pub guard_bits: u32,
}

impl SlotFormat {
    /// Total slot width.
    pub fn width(&self) -> u32 {
        self.src_bits + self.dst_bits + self.guard_bits
    }
}

/// Bit-level layout of a whole instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionFormat {
    /// One slot per bus.
    pub slots: Vec<SlotFormat>,
    /// Immediate field bits (one short-immediate field per immediate
    /// unit, as in MOVE's long-instruction encoding).
    pub immediate_bits: u32,
}

impl InstructionFormat {
    /// Derives the format of `arch`.
    pub fn of(arch: &Architecture) -> Self {
        // Sources: every output-side socket + immediate units; one extra
        // code for "idle".
        let n_src = arch
            .fus()
            .iter()
            .map(|f| f.kind.output_ports())
            .sum::<usize>()
            + arch.rfs().iter().map(|r| r.nout()).sum::<usize>()
            + 1;
        // Destinations: every input-side socket (+ idle).
        let n_dst = arch
            .fus()
            .iter()
            .map(|f| f.kind.input_ports())
            .sum::<usize>()
            + arch.rfs().iter().map(|r| r.nin()).sum::<usize>()
            + 1;
        let src_bits = bits_for(n_src);
        let dst_bits = bits_for(n_dst);
        let slots = vec![
            SlotFormat {
                src_bits,
                dst_bits,
                guard_bits: 1,
            };
            arch.bus_count()
        ];
        let n_imm = arch.fus_of(FuKind::Immediate).count() as u32;
        InstructionFormat {
            slots,
            immediate_bits: n_imm * arch.width as u32 / 2,
        }
    }

    /// Instruction width in bits.
    pub fn width(&self) -> u32 {
        self.slots.iter().map(SlotFormat::width).sum::<u32>() + self.immediate_bits
    }
}

/// Bits needed to encode `n` distinct codes (at least 1).
pub fn bits_for(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::template::TemplateBuilder;

    #[test]
    fn bits_for_counts() {
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(17), 5);
    }

    #[test]
    fn figure9_format_is_plausible() {
        let fmt = InstructionFormat::of(&Architecture::figure9());
        assert_eq!(fmt.slots.len(), 2);
        // Sources: 5 FU outputs + 4 RF reads + idle = 10 -> 4 bits.
        assert_eq!(fmt.slots[0].src_bits, 4);
        // Destinations: 2+2+2+2+1 FU inputs + 2 RF writes + idle = 12 -> 4.
        assert_eq!(fmt.slots[0].dst_bits, 4);
        // 2 slots * 9 + 8 immediate bits.
        assert_eq!(fmt.width(), 2 * 9 + 8);
    }

    #[test]
    fn more_buses_widen_the_instruction() {
        let narrow = TemplateBuilder::new("n", 16, 1)
            .fu(FuKind::Alu)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .rf(8, 1, 1)
            .build();
        let wide = TemplateBuilder::new("w", 16, 4)
            .fu(FuKind::Alu)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .rf(8, 1, 1)
            .build();
        let a = InstructionFormat::of(&narrow).width();
        let b = InstructionFormat::of(&wide).width();
        assert!(b > a);
    }
}
