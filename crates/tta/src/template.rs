//! Template construction and design-space enumeration.
//!
//! The MOVE framework explores architectures by varying "the exact match
//! of the number and type of functional units, register files, sockets
//! and busses". [`TemplateBuilder`] builds one concrete instance with
//! round-robin socket→bus assignment; [`TemplateSpace`] enumerates a
//! bounded space of them for the exploration driver.

use crate::arch::{Architecture, BusId, FuInstance, FuKind, RfInstance};

/// Builder for a single [`Architecture`].
///
/// Ports are attached to buses round-robin in declaration order, which is
/// how port/bus sharing (and with it the eq. (10) penalty) arises
/// naturally when a template has more connectors than buses — exactly the
/// effect Figure 6 of the paper illustrates.
#[derive(Debug)]
pub struct TemplateBuilder {
    name: String,
    width: usize,
    buses: usize,
    next_bus: u8,
    fus: Vec<FuInstance>,
    rfs: Vec<RfInstance>,
    counters: std::collections::HashMap<&'static str, usize>,
}

impl TemplateBuilder {
    /// Starts a template called `name` with the given datapath width and
    /// bus count.
    pub fn new(name: impl Into<String>, width: usize, buses: usize) -> Self {
        TemplateBuilder {
            name: name.into(),
            width,
            buses,
            next_bus: 0,
            fus: Vec::new(),
            rfs: Vec::new(),
            counters: std::collections::HashMap::new(),
        }
    }

    fn take_bus(&mut self) -> BusId {
        let b = BusId(self.next_bus);
        self.next_bus = (self.next_bus + 1) % self.buses.max(1) as u8;
        b
    }

    /// Adds a functional unit of `kind`, assigning its sockets to buses
    /// round-robin. Instance names are `alu0`, `alu1`, `cmp0`, ….
    pub fn fu(mut self, kind: FuKind) -> Self {
        let base = match kind {
            FuKind::Alu => "alu",
            FuKind::Cmp => "cmp",
            FuKind::Mul => "mul",
            FuKind::LdSt => "ldst",
            FuKind::Pc => "pc",
            FuKind::Immediate => "imm",
        };
        let n = self.counters.entry(base).or_insert(0);
        let name = format!("{base}{n}");
        *n += 1;
        let operand_bus = self.take_bus();
        let trigger_bus = if kind == FuKind::Immediate {
            operand_bus
        } else {
            self.take_bus()
        };
        let result_bus = self.take_bus();
        self.fus.push(FuInstance {
            kind,
            name,
            operand_bus,
            trigger_bus,
            result_bus,
        });
        self
    }

    /// Adds a register file with `regs` registers, `nin` write and `nout`
    /// read ports.
    pub fn rf(mut self, regs: usize, nin: usize, nout: usize) -> Self {
        let n = self.counters.entry("rf").or_insert(0);
        let name = format!("rf{}", *n + 1); // RF1, RF2 naming like the paper
        *n += 1;
        let write_ports = (0..nin).map(|_| self.take_bus()).collect();
        let read_ports = (0..nout).map(|_| self.take_bus()).collect();
        self.rfs.push(RfInstance {
            name,
            regs,
            write_ports,
            read_ports,
        });
        self
    }

    /// Finalises the architecture (not yet validated — the exploration
    /// filters invalid points).
    pub fn build(self) -> Architecture {
        Architecture {
            name: self.name,
            width: self.width,
            buses: self.buses,
            fus: self.fus,
            rfs: self.rfs,
        }
    }
}

/// Number of template knobs — the length of [`TemplateSpace::knob_radices`],
/// [`TemplateSpace::coords`] and [`TemplateSpace::index_of`] arrays.
pub const KNOBS: usize = 9;

/// Bounds of the enumerated design space.
///
/// Three knobs are *hierarchical* (introduced for the million-point
/// `huge` preset) and default to the single value `1`, which reproduces
/// the historical flat space exactly — same enumeration order, same
/// point labels:
///
/// - `clusters` multiplies the interconnect: a point with `b` buses and
///   `c` clusters builds a machine with `b·c` buses (modelled as `c`
///   clusters of `b` buses each; the round-robin socket assignment
///   spreads ports across all of them).
/// - `pipes` is a per-FU pipelining depth, modelled as independently
///   socketed replicas of every *compute* FU (ALU/CMP/MUL) — the
///   annotation tables have no pipeline-depth axis, so depth `p` costs
///   `p` units of area/test and buys `p` issue slots.
/// - `rf_banks` splits every register file of the chosen RF set into
///   `k` banks of `⌈regs/k⌉` registers (min 2) with the same port
///   geometry per bank.
#[derive(Debug, Clone)]
pub struct TemplateSpace {
    /// Datapath width (the paper uses 16).
    pub width: usize,
    /// Per-cluster bus counts to try.
    pub buses: Vec<usize>,
    /// Interconnect cluster counts to try (≥ 1; total buses = buses ×
    /// clusters).
    pub clusters: Vec<usize>,
    /// ALU counts to try (≥ 1).
    pub alus: Vec<usize>,
    /// CMP counts to try.
    pub cmps: Vec<usize>,
    /// MUL counts to try.
    pub muls: Vec<usize>,
    /// Immediate-unit counts to try (≥ 1).
    pub imms: Vec<usize>,
    /// Per-FU pipelining depths to try (≥ 1; modelled as compute-FU
    /// replication).
    pub pipes: Vec<usize>,
    /// Register-file bank counts to try (≥ 1).
    pub rf_banks: Vec<usize>,
    /// Register-file geometries `(regs, nin, nout)` per RF; each entry is
    /// a complete RF set for the machine.
    pub rf_sets: Vec<Vec<(usize, usize, usize)>>,
}

impl TemplateSpace {
    /// The space used to regenerate Figure 2/8: 16-bit machines with 1–4
    /// buses, 1–3 ALUs, 0–1 extra CMP/MUL, and three RF configurations.
    pub fn paper_default() -> Self {
        TemplateSpace {
            width: 16,
            buses: vec![1, 2, 3, 4],
            clusters: vec![1],
            alus: vec![1, 2, 3],
            cmps: vec![1, 2],
            muls: vec![0, 1],
            imms: vec![1],
            pipes: vec![1],
            rf_banks: vec![1],
            rf_sets: vec![
                vec![(8, 1, 2)],
                vec![(8, 1, 2), (12, 1, 2)],
                vec![(16, 2, 2)],
            ],
        }
    }

    /// A reduced 8-bit space that keeps every effect visible but
    /// back-annotates in seconds — used by tests, examples and CI smoke
    /// runs. The MUL knob is part of the space so multiplier-hungry
    /// workloads (FFT, FIR, DCT) have feasible points here too.
    pub fn fast_default() -> Self {
        TemplateSpace {
            width: 8,
            buses: vec![1, 2, 3],
            clusters: vec![1],
            alus: vec![1, 2],
            cmps: vec![1],
            muls: vec![0, 1],
            imms: vec![1],
            pipes: vec![1],
            rf_banks: vec![1],
            rf_sets: vec![vec![(8, 1, 2)], vec![(4, 1, 1)]],
        }
    }

    /// A tiny space for unit tests (a handful of points).
    pub fn tiny() -> Self {
        TemplateSpace {
            width: 8,
            buses: vec![1, 2],
            clusters: vec![1],
            alus: vec![1],
            cmps: vec![1],
            muls: vec![0],
            imms: vec![1],
            pipes: vec![1],
            rf_banks: vec![1],
            rf_sets: vec![vec![(8, 1, 2)]],
        }
    }

    /// The hierarchical million-point space: every flat knob of
    /// [`TemplateSpace::fast_default`] widened, plus the three
    /// hierarchical knobs (interconnect clustering, per-FU pipelining
    /// depth, RF banking). Exactly `2^20 = 1_048_576` points — far too
    /// large to sweep exhaustively, which is the point: this is the
    /// space where budgeted strategies and the incremental (carried
    /// fold) evaluator earn their keep.
    pub fn huge() -> Self {
        let mut rf_sets = Vec::new();
        for regs in [4usize, 8, 16, 32] {
            for (nin, nout) in [(1usize, 1usize), (1, 2), (2, 2), (2, 3)] {
                rf_sets.push(vec![(regs, nin, nout)]);
            }
        }
        TemplateSpace {
            width: 8,
            buses: vec![1, 2, 3, 4],
            clusters: vec![1, 2, 3, 4],
            alus: vec![1, 2, 3, 4, 5, 6, 7, 8],
            cmps: vec![1, 2, 3, 4],
            muls: vec![0, 1, 2, 3],
            imms: vec![1, 2],
            pipes: vec![1, 2, 3, 4],
            rf_banks: vec![1, 2, 3, 4],
            rf_sets,
        }
    }

    /// Enumerates every architecture in the space (PC and LD/ST are always
    /// included once, as the paper does).
    ///
    /// This materialises the whole space as a `Vec`; prefer
    /// [`TemplateSpace::points`] when the space is large — the sweep
    /// engine and search strategies never need the full vector.
    pub fn enumerate(&self) -> Vec<Architecture> {
        self.points().collect()
    }

    /// A lazy, indexed iterator over every architecture of the space, in
    /// the same order as [`TemplateSpace::enumerate`]. The iterator is
    /// [`ExactSizeIterator`] and double-ended, and
    /// [`TemplateSpace::point`] gives random access by index, so no
    /// consumer ever needs the materialised `Vec`.
    pub fn points(&self) -> Points<'_> {
        Points {
            space: self,
            next: 0,
            end: self.len(),
        }
    }

    /// The number of choices per template knob, in index order (most
    /// significant first): buses, clusters, ALUs, CMPs, MULs,
    /// immediates, pipes, RF banks, RF sets. A point index is the
    /// mixed-radix number over these radices — search strategies mutate
    /// the digits to move through the space. The hierarchical knobs sit
    /// where a radix of 1 leaves the historical flat enumeration order
    /// (and every point index) unchanged.
    pub fn knob_radices(&self) -> [usize; KNOBS] {
        [
            self.buses.len(),
            self.clusters.len(),
            self.alus.len(),
            self.cmps.len(),
            self.muls.len(),
            self.imms.len(),
            self.pipes.len(),
            self.rf_banks.len(),
            self.rf_sets.len(),
        ]
    }

    /// Decomposes a point index into its per-knob digits (positions into
    /// the knob vectors), in [`TemplateSpace::knob_radices`] order.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn coords(&self, index: usize) -> [usize; KNOBS] {
        assert!(
            index < self.len(),
            "point index {index} out of bounds for a {}-point space",
            self.len()
        );
        let radices = self.knob_radices();
        let mut rest = index;
        let mut digits = [0usize; KNOBS];
        for (d, &radix) in digits.iter_mut().zip(&radices).rev() {
            *d = rest % radix;
            rest /= radix;
        }
        digits
    }

    /// Recomposes per-knob digits into a point index — the inverse of
    /// [`TemplateSpace::coords`].
    ///
    /// # Panics
    ///
    /// Panics when any digit is outside its knob's radix.
    pub fn index_of(&self, coords: [usize; KNOBS]) -> usize {
        let radices = self.knob_radices();
        let mut index = 0usize;
        for (i, (&d, &radix)) in coords.iter().zip(&radices).enumerate() {
            assert!(d < radix, "knob {i} digit {d} exceeds radix {radix}");
            index = index * radix + d;
        }
        index
    }

    /// Builds the architecture at `index` without enumerating any other
    /// point — random access into [`TemplateSpace::enumerate`] order.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn point(&self, index: usize) -> Architecture {
        let [bi, cli, ai, ci, mi, ii, pi, ki, ri] = self.coords(index);
        let (nb, ncl, na, nc, nm, ni, np, nk) = (
            self.buses[bi],
            self.clusters[cli],
            self.alus[ai],
            self.cmps[ci],
            self.muls[mi],
            self.imms[ii],
            self.pipes[pi],
            self.rf_banks[ki],
        );
        let rfset = &self.rf_sets[ri];
        // Historical flat label; the hierarchical knobs append suffixes
        // only when non-default, so every pre-existing preset keeps its
        // exact point names (and with them its cache keys and goldens).
        let mut label = format!(
            "b{nb}a{na}c{nc}m{nm}i{ni}r{}",
            rfset
                .iter()
                .map(|(r, i, o)| format!("{r}.{i}.{o}"))
                .collect::<Vec<_>>()
                .join("_")
        );
        if ncl > 1 {
            label.push_str(&format!("x{ncl}"));
        }
        if np > 1 {
            label.push_str(&format!("p{np}"));
        }
        if nk > 1 {
            label.push_str(&format!("k{nk}"));
        }
        let mut b = TemplateBuilder::new(label, self.width, nb * ncl);
        for _ in 0..na * np {
            b = b.fu(FuKind::Alu);
        }
        for _ in 0..nc * np {
            b = b.fu(FuKind::Cmp);
        }
        for _ in 0..nm * np {
            b = b.fu(FuKind::Mul);
        }
        for _ in 0..ni {
            b = b.fu(FuKind::Immediate);
        }
        b = b.fu(FuKind::LdSt).fu(FuKind::Pc);
        for &(regs, nin, nout) in rfset {
            for _ in 0..nk {
                b = b.rf(regs.div_ceil(nk).max(2), nin, nout);
            }
        }
        b.build()
    }

    /// Size of the enumerated space.
    pub fn len(&self) -> usize {
        self.knob_radices().iter().product()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The point index visited at position `rank` of the *neighbour
    /// order*: a reflected mixed-radix Gray walk over
    /// [`TemplateSpace::knob_radices`]. Consecutive ranks differ in
    /// exactly one knob digit, and that digit moves by exactly ±1 — so a
    /// sweep in this order changes one architectural parameter per step,
    /// which is what makes incremental (delta) evaluation profitable.
    ///
    /// The walk is a permutation of `0..len()`: every point is visited
    /// exactly once ([`TemplateSpace::neighbour_rank`] is the inverse).
    ///
    /// # Panics
    ///
    /// Panics when `rank >= self.len()`.
    pub fn neighbour_index(&self, rank: usize) -> usize {
        assert!(
            rank < self.len(),
            "walk rank {rank} out of bounds for a {}-point space",
            self.len()
        );
        let radices = self.knob_radices();
        // Plain mixed-radix digits of the rank, most significant first.
        let mut plain = [0usize; KNOBS];
        let mut rest = rank;
        for (d, &radix) in plain.iter_mut().zip(&radices).rev() {
            *d = rest % radix;
            rest /= radix;
        }
        // Reflected mixed-radix Gray construction: digit `i` scans
        // upwards on even passes and downwards on odd ones, where the
        // pass count is the mixed-radix *value* of the more-significant
        // plain digits (not their sum — those differ once an even radix
        // sits between two digits). Each carry then flips the scan
        // direction of exactly the digits it resets, so consecutive
        // ranks differ in one digit, by ±1.
        let mut gray = [0usize; KNOBS];
        let mut passes = 0usize;
        for i in 0..KNOBS {
            gray[i] = if passes.is_multiple_of(2) {
                plain[i]
            } else {
                radices[i] - 1 - plain[i]
            };
            passes = passes * radices[i] + plain[i];
        }
        self.index_of(gray)
    }

    /// The walk position at which [`TemplateSpace::neighbour_index`]
    /// visits `index` — the inverse permutation. Search strategies use it
    /// to re-order an arbitrary batch of points into neighbour order.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn neighbour_rank(&self, index: usize) -> usize {
        let radices = self.knob_radices();
        let gray = self.coords(index);
        // Undo the reflection: the pass count deciding digit `i` is the
        // value of the already-recovered plain digits `0..i`, which is
        // exactly the running rank.
        let mut rank = 0usize;
        for i in 0..KNOBS {
            let plain = if rank.is_multiple_of(2) {
                gray[i]
            } else {
                radices[i] - 1 - gray[i]
            };
            rank = rank * radices[i] + plain;
        }
        rank
    }

    /// Iterates the point indices of the space in neighbour (Gray-walk)
    /// order — see [`TemplateSpace::neighbour_index`]. The iterator is
    /// [`ExactSizeIterator`] and yields each index exactly once.
    pub fn neighbour_order(&self) -> NeighbourOrder<'_> {
        NeighbourOrder {
            space: self,
            next: 0,
            end: self.len(),
        }
    }
}

/// Iterator over point indices in neighbour (Gray-walk) order, returned
/// by [`TemplateSpace::neighbour_order`].
#[derive(Debug, Clone)]
pub struct NeighbourOrder<'a> {
    space: &'a TemplateSpace,
    next: usize,
    end: usize,
}

impl Iterator for NeighbourOrder<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.next >= self.end {
            return None;
        }
        let index = self.space.neighbour_index(self.next);
        self.next += 1;
        Some(index)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.end - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for NeighbourOrder<'_> {}

/// Lazy iterator over a [`TemplateSpace`], returned by
/// [`TemplateSpace::points`]. Yields architectures in enumeration order
/// without materialising the space.
#[derive(Debug, Clone)]
pub struct Points<'a> {
    space: &'a TemplateSpace,
    next: usize,
    end: usize,
}

impl Iterator for Points<'_> {
    type Item = Architecture;

    fn next(&mut self) -> Option<Architecture> {
        if self.next >= self.end {
            return None;
        }
        let arch = self.space.point(self.next);
        self.next += 1;
        Some(arch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.end - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Points<'_> {}

impl DoubleEndedIterator for Points<'_> {
    fn next_back(&mut self) -> Option<Architecture> {
        if self.next >= self.end {
            return None;
        }
        self.end -= 1;
        Some(self.space.point(self.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_matches_len() {
        let space = TemplateSpace::paper_default();
        let archs = space.enumerate();
        assert_eq!(archs.len(), space.len());
        assert_eq!(archs.len(), 4 * 3 * 2 * 2 * 3);
    }

    #[test]
    fn points_matches_enumerate_and_random_access() {
        let space = TemplateSpace::paper_default();
        let eager = space.enumerate();
        let lazy: Vec<_> = space.points().collect();
        assert_eq!(eager, lazy);
        assert_eq!(space.points().len(), space.len());
        for (i, arch) in eager.iter().enumerate() {
            assert_eq!(&space.point(i), arch, "random access at {i}");
            assert_eq!(space.index_of(space.coords(i)), i);
        }
    }

    #[test]
    fn points_iterates_from_both_ends() {
        let space = TemplateSpace::fast_default();
        let forward: Vec<_> = space.points().collect();
        let mut backward: Vec<_> = space.points().rev().collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn point_rejects_out_of_range_index() {
        let space = TemplateSpace::tiny();
        let _ = space.point(space.len());
    }

    #[test]
    fn every_enumerated_architecture_validates() {
        for arch in TemplateSpace::paper_default().enumerate() {
            assert_eq!(arch.validate(), Ok(()), "{}", arch.name);
        }
    }

    #[test]
    fn round_robin_shares_buses_when_scarce() {
        // 1-bus machine: every port lands on bus0 -> maximum sharing.
        let a = TemplateBuilder::new("one", 8, 1)
            .fu(FuKind::Alu)
            .rf(4, 1, 1)
            .build();
        let alu = &a.fus[0];
        assert_eq!(alu.operand_bus, alu.trigger_bus);
        assert_eq!(crate::timing::transport_cycles(alu), 5);
        // 3-bus machine: ALU ports spread out.
        let b = TemplateBuilder::new("three", 8, 3)
            .fu(FuKind::Alu)
            .rf(4, 1, 1)
            .build();
        assert_eq!(crate::timing::transport_cycles(&b.fus[0]), 3);
    }

    #[test]
    fn neighbour_order_is_a_permutation() {
        for space in [
            TemplateSpace::paper_default(),
            TemplateSpace::fast_default(),
            TemplateSpace::tiny(),
        ] {
            let walk: Vec<usize> = space.neighbour_order().collect();
            assert_eq!(space.neighbour_order().len(), space.len());
            let mut sorted = walk.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..space.len()).collect::<Vec<_>>());
            for (rank, &index) in walk.iter().enumerate() {
                assert_eq!(space.neighbour_rank(index), rank, "inverse at {rank}");
            }
        }
    }

    #[test]
    fn neighbour_order_steps_one_knob_by_one() {
        let space = TemplateSpace::paper_default();
        let walk: Vec<usize> = space.neighbour_order().collect();
        for pair in walk.windows(2) {
            let a = space.coords(pair[0]);
            let b = space.coords(pair[1]);
            let diffs: Vec<usize> = (0..KNOBS).filter(|&k| a[k] != b[k]).collect();
            assert_eq!(diffs.len(), 1, "{a:?} -> {b:?}");
            let k = diffs[0];
            assert_eq!(a[k].abs_diff(b[k]), 1, "knob {k}: {a:?} -> {b:?}");
        }
    }

    #[test]
    fn huge_space_reaches_a_million_points() {
        let space = TemplateSpace::huge();
        assert_eq!(space.len(), 1 << 20);
        assert!(space.len() >= 1_000_000);
    }

    #[test]
    fn hierarchical_knobs_shape_the_architecture() {
        let mut space = TemplateSpace::tiny();
        space.clusters = vec![3];
        space.pipes = vec![2];
        space.rf_banks = vec![2];
        // tiny: buses [1,2], 1 ALU, 1 CMP, 0 MUL, 1 IMM, rf (8,1,2).
        let arch = space.point(0);
        assert_eq!(arch.buses, 3, "clusters multiply the 1-bus count");
        let alus = arch.fus.iter().filter(|f| f.kind == FuKind::Alu).count();
        assert_eq!(alus, 2, "pipe depth replicates compute FUs");
        assert_eq!(arch.rfs.len(), 2, "banking splits each RF");
        assert!(arch.rfs.iter().all(|r| r.regs == 4), "8 regs over 2 banks");
        assert_eq!(arch.name, "b1a1c1m0i1r8.1.2x3p2k2");
        assert_eq!(arch.validate(), Ok(()));
    }

    #[test]
    fn default_hierarchical_knobs_keep_flat_labels() {
        // The 9-knob refactor must not rename any historical point.
        let space = TemplateSpace::paper_default();
        assert_eq!(space.point(0).name, "b1a1c1m0i1r8.1.2");
        assert!(space.points().all(|a| !a.name.contains(['x', 'p', 'k'])));
    }

    #[test]
    fn huge_space_random_points_validate() {
        let space = TemplateSpace::huge();
        // A deterministic stride through the million points, including
        // both ends; full enumeration would be too slow for a unit test.
        let stride = space.len() / 97;
        for i in (0..space.len()).step_by(stride).chain([space.len() - 1]) {
            let arch = space.point(i);
            assert_eq!(arch.validate(), Ok(()), "{}", arch.name);
            assert_eq!(space.index_of(space.coords(i)), i);
            assert_eq!(
                space.neighbour_index(space.neighbour_rank(i)),
                i,
                "walk inverse at {i}"
            );
        }
    }

    #[test]
    fn huge_space_walk_prefix_steps_one_knob_by_one() {
        let space = TemplateSpace::huge();
        let walk: Vec<usize> = space.neighbour_order().take(2048).collect();
        for pair in walk.windows(2) {
            let a = space.coords(pair[0]);
            let b = space.coords(pair[1]);
            let diffs: Vec<usize> = (0..KNOBS).filter(|&k| a[k] != b[k]).collect();
            assert_eq!(diffs.len(), 1, "{a:?} -> {b:?}");
            assert_eq!(a[diffs[0]].abs_diff(b[diffs[0]]), 1);
        }
    }

    #[test]
    fn names_are_unique_and_paper_style() {
        let a = Architecture::figure9();
        assert!(a.rfs.iter().any(|r| r.name == "rf1"));
        assert!(a.rfs.iter().any(|r| r.name == "rf2"));
    }
}
