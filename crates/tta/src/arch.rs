//! Architecture description: buses, functional units, register files and
//! their socket/bus attachments.

use std::fmt;

/// Index of a move bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusId(pub u8);

impl fmt::Display for BusId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus{}", self.0)
    }
}

/// The functional-unit kinds of the paper's component library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Arithmetic-logic unit (add/sub/shift/and/or/xor/not).
    Alu,
    /// Comparator producing a 1-bit condition.
    Cmp,
    /// Multiplier.
    Mul,
    /// Load/store unit (exactly one per architecture).
    LdSt,
    /// Program counter / sequencer (exactly one per architecture).
    Pc,
    /// Immediate unit (delivers instruction constants onto buses).
    Immediate,
}

impl FuKind {
    /// Execute-stage latency in cycles (trigger → result register), i.e.
    /// the paper's relation (3) lower bound, larger for MUL/LDST.
    pub fn latency(self) -> u32 {
        match self {
            FuKind::Mul => 2,
            FuKind::LdSt => 2,
            _ => 1,
        }
    }

    /// Number of input data ports (operand + trigger).
    pub fn input_ports(self) -> usize {
        match self {
            FuKind::Immediate => 1,
            _ => 2,
        }
    }

    /// Number of output data ports (result).
    pub fn output_ports(self) -> usize {
        1
    }

    /// Mnemonic as used in Figure 9 / Table 1.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FuKind::Alu => "ALU",
            FuKind::Cmp => "CMP",
            FuKind::Mul => "MUL",
            FuKind::LdSt => "LD/ST",
            FuKind::Pc => "PC",
            FuKind::Immediate => "IMM",
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Which pipeline register a port feeds/drains (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortRole {
    /// Operand register O (input).
    Operand,
    /// Trigger register T (input; starts the operation).
    Trigger,
    /// Result register R (output).
    Result,
    /// Register-file write port (input).
    RfWrite(u8),
    /// Register-file read port (output).
    RfRead(u8),
}

/// One functional-unit instance with its socket→bus assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuInstance {
    /// What the unit is.
    pub kind: FuKind,
    /// Instance name (unique within the architecture).
    pub name: String,
    /// Bus the operand input socket attaches to.
    pub operand_bus: BusId,
    /// Bus the trigger input socket attaches to.
    pub trigger_bus: BusId,
    /// Bus the result output socket attaches to.
    pub result_bus: BusId,
}

impl FuInstance {
    /// Connector count `nconn` of eq. (11): data ports of this unit.
    pub fn nconn(&self) -> usize {
        self.kind.input_ports() + self.kind.output_ports()
    }

    /// Buses of all ports, in (O, T, R) order (immediates have no O).
    pub fn port_buses(&self) -> Vec<BusId> {
        if self.kind == FuKind::Immediate {
            vec![self.trigger_bus, self.result_bus]
        } else {
            vec![self.operand_bus, self.trigger_bus, self.result_bus]
        }
    }
}

/// One register-file instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RfInstance {
    /// Instance name.
    pub name: String,
    /// Number of registers.
    pub regs: usize,
    /// Bus attachment of each write port (`nin = write_ports.len()`).
    pub write_ports: Vec<BusId>,
    /// Bus attachment of each read port (`nout = read_ports.len()`).
    pub read_ports: Vec<BusId>,
}

impl RfInstance {
    /// Connector count: all data ports.
    pub fn nconn(&self) -> usize {
        self.write_ports.len() + self.read_ports.len()
    }

    /// `nin` of eq. (12).
    pub fn nin(&self) -> usize {
        self.write_ports.len()
    }

    /// `nout` of eq. (12).
    pub fn nout(&self) -> usize {
        self.read_ports.len()
    }
}

/// Errors found by [`Architecture::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchitectureError {
    /// No buses declared.
    NoBuses,
    /// A port references a bus index ≥ `bus_count`.
    DanglingBus(String),
    /// Not exactly one PC / LD-ST unit.
    SingletonViolation(FuKind, usize),
    /// A register file has no registers or no ports.
    DegenerateRf(String),
    /// No register file at all (results have nowhere to live).
    NoRegisterFile,
    /// Duplicate instance name.
    DuplicateName(String),
}

impl fmt::Display for ArchitectureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchitectureError::NoBuses => write!(f, "architecture has no move buses"),
            ArchitectureError::DanglingBus(name) => {
                write!(f, "port of {name} references a bus that does not exist")
            }
            ArchitectureError::SingletonViolation(kind, n) => {
                write!(f, "architecture needs exactly one {kind}, found {n}")
            }
            ArchitectureError::DegenerateRf(name) => {
                write!(f, "register file {name} has no registers or no ports")
            }
            ArchitectureError::NoRegisterFile => write!(f, "architecture has no register file"),
            ArchitectureError::DuplicateName(name) => {
                write!(f, "duplicate instance name {name}")
            }
        }
    }
}

impl std::error::Error for ArchitectureError {}

/// A complete TTA instance: the unit of design-space exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    /// Human-readable configuration name.
    pub name: String,
    /// Datapath width in bits.
    pub width: usize,
    /// Number of move buses.
    pub buses: usize,
    /// Functional units.
    pub fus: Vec<FuInstance>,
    /// Register files.
    pub rfs: Vec<RfInstance>,
}

impl Architecture {
    /// Number of move buses (`nb` in the cost formulas).
    pub fn bus_count(&self) -> usize {
        self.buses
    }

    /// Functional units.
    pub fn fus(&self) -> &[FuInstance] {
        &self.fus
    }

    /// Register files.
    pub fn rfs(&self) -> &[RfInstance] {
        &self.rfs
    }

    /// Total socket count `ns` (one socket per attached data port).
    pub fn socket_count(&self) -> usize {
        let fu_ports: usize = self.fus.iter().map(FuInstance::nconn).sum();
        let rf_ports: usize = self.rfs.iter().map(RfInstance::nconn).sum();
        fu_ports + rf_ports
    }

    /// Units of a given kind.
    pub fn fus_of(&self, kind: FuKind) -> impl Iterator<Item = &FuInstance> {
        self.fus.iter().filter(move |f| f.kind == kind)
    }

    /// Total register capacity across register files.
    pub fn total_registers(&self) -> usize {
        self.rfs.iter().map(|r| r.regs).sum()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`ArchitectureError`] found.
    pub fn validate(&self) -> Result<(), ArchitectureError> {
        if self.buses == 0 {
            return Err(ArchitectureError::NoBuses);
        }
        if self.rfs.is_empty() {
            return Err(ArchitectureError::NoRegisterFile);
        }
        let mut names = std::collections::HashSet::new();
        for f in &self.fus {
            if !names.insert(f.name.as_str()) {
                return Err(ArchitectureError::DuplicateName(f.name.clone()));
            }
            for b in f.port_buses() {
                if usize::from(b.0) >= self.buses {
                    return Err(ArchitectureError::DanglingBus(f.name.clone()));
                }
            }
        }
        for r in &self.rfs {
            if !names.insert(r.name.as_str()) {
                return Err(ArchitectureError::DuplicateName(r.name.clone()));
            }
            if r.regs == 0 || r.write_ports.is_empty() || r.read_ports.is_empty() {
                return Err(ArchitectureError::DegenerateRf(r.name.clone()));
            }
            for b in r.write_ports.iter().chain(&r.read_ports) {
                if usize::from(b.0) >= self.buses {
                    return Err(ArchitectureError::DanglingBus(r.name.clone()));
                }
            }
        }
        for kind in [FuKind::Pc, FuKind::LdSt] {
            let n = self.fus_of(kind).count();
            if n != 1 {
                return Err(ArchitectureError::SingletonViolation(kind, n));
            }
        }
        Ok(())
    }

    /// The architecture the paper's equal-weight norm selects (Figure 9):
    /// 16-bit datapath, two move buses, ALU + CMP + LD/ST + PC +
    /// Immediate, RF1 (8 regs) and RF2 (12 regs).
    pub fn figure9() -> Self {
        crate::template::TemplateBuilder::new("figure9", 16, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Cmp)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .rf(12, 1, 2)
            .build()
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({}-bit, {} buses, {} sockets)",
            self.name,
            self.width,
            self.buses,
            self.socket_count()
        )?;
        for fu in &self.fus {
            let buses: Vec<String> = fu.port_buses().iter().map(|b| b.to_string()).collect();
            writeln!(f, "  {:<8} [{}]", fu.name, buses.join(", "))?;
        }
        for rf in &self.rfs {
            writeln!(
                f,
                "  {:<8} {}x{} ({}w/{}r)",
                rf.name,
                rf.regs,
                self.width,
                rf.nin(),
                rf.nout()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_is_valid() {
        let a = Architecture::figure9();
        assert_eq!(a.validate(), Ok(()));
        assert_eq!(a.bus_count(), 2);
        assert_eq!(a.width, 16);
        assert_eq!(a.rfs.len(), 2);
        assert_eq!(a.rfs[0].regs, 8);
        assert_eq!(a.rfs[1].regs, 12);
    }

    #[test]
    fn socket_count_counts_all_ports() {
        let a = Architecture::figure9();
        // ALU 3 + CMP 3 + LDST 3 + PC 3 + IMM 2 + RF1 3 + RF2 3 = 20.
        assert_eq!(a.socket_count(), 20);
    }

    #[test]
    fn validation_rejects_missing_pc() {
        let mut a = Architecture::figure9();
        a.fus.retain(|f| f.kind != FuKind::Pc);
        assert_eq!(
            a.validate(),
            Err(ArchitectureError::SingletonViolation(FuKind::Pc, 0))
        );
    }

    #[test]
    fn validation_rejects_dangling_bus() {
        let mut a = Architecture::figure9();
        a.fus[0].trigger_bus = BusId(9);
        assert!(matches!(
            a.validate(),
            Err(ArchitectureError::DanglingBus(_))
        ));
    }

    #[test]
    fn validation_rejects_duplicate_names() {
        let mut a = Architecture::figure9();
        let dup = a.fus[0].name.clone();
        a.fus[1].name = dup;
        assert!(matches!(
            a.validate(),
            Err(ArchitectureError::DuplicateName(_))
        ));
    }

    #[test]
    fn display_lists_units() {
        let s = Architecture::figure9().to_string();
        assert!(s.contains("alu0"));
        assert!(s.contains("8x16"));
    }
}
