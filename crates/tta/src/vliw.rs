//! The bus-oriented VLIW ASIP generalisation (Figure 7).
//!
//! The paper notes the functional-test methodology extends to "any type of
//! regular bus-oriented VLIW ASIP architectures": components directly on
//! the bus are tested by functional application of structural patterns,
//! while components reachable only *through* other components need a test
//! order and special control set-up. This module models such templates
//! and derives the required test order.

use std::collections::HashMap;
use std::fmt;

/// How a component connects to the central bus of the VLIW template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VliwAccess {
    /// Port directly on the bus (testable in any order).
    Direct,
    /// Reachable only through the listed components (they must be tested
    /// — and configured transparent — first).
    Through(Vec<String>),
}

/// One component of the VLIW template.
#[derive(Debug, Clone)]
pub struct VliwComponent {
    /// Instance name.
    pub name: String,
    /// Input-side access.
    pub input_access: VliwAccess,
    /// Output-side access.
    pub output_access: VliwAccess,
}

/// A bus-oriented VLIW ASIP template (Figure 7): register file, execution
/// units, caches around one (or few) shared buses.
#[derive(Debug, Clone, Default)]
pub struct VliwTemplate {
    components: Vec<VliwComponent>,
}

/// Error: the access graph has a dependency cycle, so no valid test order
/// exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestOrderCycle(pub Vec<String>);

impl fmt::Display for TestOrderCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "test-access cycle through {:?}", self.0)
    }
}

impl std::error::Error for TestOrderCycle {}

impl VliwTemplate {
    /// Empty template.
    pub fn new() -> Self {
        VliwTemplate::default()
    }

    /// Adds a component.
    pub fn component(
        mut self,
        name: impl Into<String>,
        input_access: VliwAccess,
        output_access: VliwAccess,
    ) -> Self {
        self.components.push(VliwComponent {
            name: name.into(),
            input_access,
            output_access,
        });
        self
    }

    /// The Figure 7 example: instruction cache/register feeding execution
    /// units; the register file's output reaches the bus only through the
    /// execution units.
    pub fn figure7(n_exec_units: usize) -> Self {
        let mut t = VliwTemplate::new()
            .component("icache", VliwAccess::Direct, VliwAccess::Direct)
            .component("iregister", VliwAccess::Direct, VliwAccess::Direct)
            .component("dcache", VliwAccess::Direct, VliwAccess::Direct);
        let eu_names: Vec<String> = (0..n_exec_units).map(|i| format!("eu{i}")).collect();
        for name in &eu_names {
            t = t.component(name.clone(), VliwAccess::Direct, VliwAccess::Direct);
        }
        // RF output is connected to the bus through the execution units.
        t.component("rf", VliwAccess::Direct, VliwAccess::Through(eu_names))
    }

    /// Components in the template.
    pub fn components(&self) -> &[VliwComponent] {
        &self.components
    }

    /// Components testable without preconditions.
    pub fn directly_testable(&self) -> Vec<&str> {
        self.components
            .iter()
            .filter(|c| {
                matches!(c.input_access, VliwAccess::Direct)
                    && matches!(c.output_access, VliwAccess::Direct)
            })
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Derives a valid test order: every component is tested after all
    /// components it depends on for bus access (topological sort).
    ///
    /// # Errors
    ///
    /// Returns [`TestOrderCycle`] when components mutually depend on each
    /// other for access.
    pub fn test_order(&self) -> Result<Vec<String>, TestOrderCycle> {
        let index: HashMap<&str, usize> = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.as_str(), i))
            .collect();
        let n = self.components.len();
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, c) in self.components.iter().enumerate() {
            for access in [&c.input_access, &c.output_access] {
                if let VliwAccess::Through(list) = access {
                    for dep in list {
                        let Some(&j) = index.get(dep.as_str()) else {
                            continue;
                        };
                        deps[i].push(j);
                    }
                }
            }
        }
        // Kahn's algorithm over the access-dependency graph.
        let mut indeg = vec![0usize; n];
        let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ds) in deps.iter().enumerate() {
            indeg[i] = ds.len();
            for &j in ds {
                rdeps[j].push(i);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            order.push(self.components[i].name.clone());
            for &k in &rdeps[i] {
                indeg[k] -= 1;
                if indeg[k] == 0 {
                    queue.push(k);
                }
            }
        }
        if order.len() != n {
            let stuck: Vec<String> = (0..n)
                .filter(|&i| indeg[i] > 0)
                .map(|i| self.components[i].name.clone())
                .collect();
            return Err(TestOrderCycle(stuck));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_rf_tested_after_execution_units() {
        let t = VliwTemplate::figure7(3);
        let order = t.test_order().expect("acyclic");
        let pos = |name: &str| order.iter().position(|n| n == name).unwrap();
        for eu in ["eu0", "eu1", "eu2"] {
            assert!(pos(eu) < pos("rf"), "{eu} must precede rf");
        }
    }

    #[test]
    fn direct_components_listed() {
        let t = VliwTemplate::figure7(2);
        let direct = t.directly_testable();
        assert!(direct.contains(&"icache"));
        assert!(!direct.contains(&"rf"));
    }

    #[test]
    fn cycle_detected() {
        let t = VliwTemplate::new()
            .component(
                "a",
                VliwAccess::Direct,
                VliwAccess::Through(vec!["b".into()]),
            )
            .component(
                "b",
                VliwAccess::Direct,
                VliwAccess::Through(vec!["a".into()]),
            );
        assert!(t.test_order().is_err());
    }

    #[test]
    fn unknown_dependency_ignored() {
        let t = VliwTemplate::new().component(
            "a",
            VliwAccess::Through(vec!["ghost".into()]),
            VliwAccess::Direct,
        );
        assert_eq!(t.test_order().unwrap(), vec!["a".to_string()]);
    }
}
