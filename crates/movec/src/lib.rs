//! A MOVE-style compiler for transport-triggered architectures.
//!
//! The MOVE framework "accepts C/C++ applications as input and produces
//! parallel code that is supported by an instruction level parallel-type
//! TTA". This crate is the corresponding substrate: a small dataflow IR
//! ([`ir`]) with an interpreter (the golden model the workload crate
//! checks against), and a resource-constrained transport list scheduler
//! ([`schedule`]) that maps the IR onto a concrete [`tta_arch::Architecture`],
//! yielding the cycle count (throughput axis) of the exploration.
//!
//! # Quickstart
//!
//! ```
//! use tta_movec::ir::{Dfg, Op};
//! use tta_movec::schedule::Scheduler;
//! use tta_arch::Architecture;
//!
//! // (a + b) ^ b
//! let mut dfg = Dfg::new(16);
//! let a = dfg.input();
//! let b = dfg.input();
//! let sum = dfg.op(Op::Add, &[a, b]);
//! let out = dfg.op(Op::Xor, &[sum, b]);
//! dfg.mark_output(out);
//!
//! let arch = Architecture::figure9();
//! let schedule = Scheduler::new(&arch).run(&dfg).expect("schedulable");
//! assert!(schedule.cycles > 0);
//! assert!(!schedule.moves.is_empty());
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod ir;
pub mod metrics;
pub mod schedule;

pub use ir::{Dfg, FuClass, Op, ValueId};
pub use schedule::{Move, Schedule, ScheduleError, Scheduler};
