//! Resource-constrained transport (move) list scheduling.
//!
//! The scheduler maps a [`Dfg`] onto a concrete [`Architecture`]:
//! every operation becomes an operand move, a trigger move and (when the
//! result is used) a result move into a register file; moves contend for
//! bus slots (`nb` per cycle), register-file ports and functional units.
//! The produced schedule respects the paper's transport-timing relations
//! (2)–(8) by construction — `transports_per_fu` exposes them for the
//! [`tta_arch::timing::validate_relations`] checker.
//!
//! Two deliberate simplifications (documented in DESIGN.md) keep the
//! scheduler predictable without changing the shape of the area/time
//! trade-off: results always travel through a register file (no software
//! bypassing), and register-file overflow is charged as a fixed spill
//! penalty instead of scheduling explicit spill code.

use std::collections::HashMap;

use tta_arch::{Architecture, FuKind, OpTransport};

use crate::ir::{Dfg, FuClass, Op, ValueId};

/// Cycles charged per register-file overflow event (a store+load round
/// trip on a loaded machine).
pub const SPILL_PENALTY_CYCLES: u32 = 4;

/// Search window for a feasible cycle before declaring deadlock.
const SEARCH_LIMIT: u32 = 1 << 20;

/// Where a move starts or ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Result register of FU `fus[i]`.
    FuResult(usize),
    /// Operand register of FU `fus[i]`.
    FuOperand(usize),
    /// Trigger register of FU `fus[i]`.
    FuTrigger(usize),
    /// A write port of RF `rfs[i]`.
    RfWrite(usize),
    /// A read port of RF `rfs[i]`.
    RfRead(usize),
    /// Immediate unit `fus[i]` (a constant rides the move slot).
    Imm(usize),
}

/// One scheduled data transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Cycle the transport occupies a bus.
    pub cycle: u32,
    /// Source.
    pub src: Endpoint,
    /// Destination.
    pub dst: Endpoint,
    /// The IR value transported.
    pub value: ValueId,
}

/// Which DFG node a trigger move fires: the binding an executable
/// lowering (`tta_sim`) needs to attach an opcode to each trigger.
/// Trigger cycles are unique per FU (relation 5), so `(fu, trigger)`
/// identifies the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Index of the DFG node executed.
    pub node: usize,
    /// Index of the executing FU in `arch.fus()`.
    pub fu: usize,
    /// The trigger cycle.
    pub trigger: u32,
}

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No FU instance can execute operations of this class.
    MissingFu(FuClass),
    /// The architecture failed validation.
    InvalidArchitecture(tta_arch::ArchitectureError),
    /// No feasible cycle found within the search window (resource
    /// starvation; indicates a degenerate architecture).
    ResourceDeadlock,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::MissingFu(c) => write!(f, "no functional unit for {c:?} operations"),
            ScheduleError::InvalidArchitecture(e) => write!(f, "invalid architecture: {e}"),
            ScheduleError::ResourceDeadlock => write!(f, "no feasible cycle within search window"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete schedule of one DFG on one architecture.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Total cycle count including spill penalties — the throughput axis
    /// of the exploration.
    pub cycles: u32,
    /// Makespan before spill penalties.
    pub makespan: u32,
    /// All scheduled moves.
    pub moves: Vec<Move>,
    /// Node → FU → trigger-cycle bindings, in scheduling order.
    pub ops: Vec<ScheduledOp>,
    /// Register-file overflow events.
    pub spills: u32,
    /// Per-FU operation transports (for timing-relation validation).
    pub transports: HashMap<usize, Vec<OpTransport>>,
}

impl Schedule {
    /// Moves per cycle averaged over the makespan — bus pressure.
    pub fn transport_density(&self, arch: &Architecture) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.moves.len() as f64 / (self.makespan as f64 * arch.bus_count() as f64)
    }

    /// Transports grouped by FU index (for utilisation reports).
    pub fn transports_per_fu(&self) -> &HashMap<usize, Vec<OpTransport>> {
        &self.transports
    }
}

/// Per-cycle counted resource.
#[derive(Debug, Clone, Default)]
struct Pool {
    used: Vec<u16>,
    cap: u16,
}

impl Pool {
    fn new(cap: usize) -> Self {
        Pool {
            used: Vec::new(),
            cap: cap as u16,
        }
    }

    fn free_at(&self, cycle: u32) -> bool {
        self.used.get(cycle as usize).is_none_or(|&u| u < self.cap)
    }

    fn take(&mut self, cycle: u32) {
        let idx = cycle as usize;
        if self.used.len() <= idx {
            self.used.resize(idx + 1, 0);
        }
        debug_assert!(self.used[idx] < self.cap, "over-subscribed pool");
        self.used[idx] += 1;
    }
}

/// Where a value lives once defined.
#[derive(Debug, Clone, Copy)]
enum Place {
    /// Resident in RF `i`, readable from `available`.
    Rf { rf: usize, available: u32 },
    /// A constant, deliverable by any immediate unit at any cycle.
    Imm,
    /// Defined but never stored (result unused).
    Void,
}

/// The transport list scheduler.
#[derive(Debug)]
pub struct Scheduler<'a> {
    arch: &'a Architecture,
}

impl<'a> Scheduler<'a> {
    /// Creates a scheduler for `arch`.
    pub fn new(arch: &'a Architecture) -> Self {
        Scheduler { arch }
    }

    /// Schedules `dfg`, returning the complete move schedule.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::InvalidArchitecture`] if `arch` fails validation;
    /// * [`ScheduleError::MissingFu`] if the DFG uses an operation class
    ///   the architecture has no unit for.
    pub fn run(&self, dfg: &Dfg) -> Result<Schedule, ScheduleError> {
        self.arch
            .validate()
            .map_err(ScheduleError::InvalidArchitecture)?;
        let mut st = State::new(self.arch, dfg)?;

        // List scheduling: repeatedly pick the highest-priority ready node.
        let prio = dfg.priorities();
        let n = dfg.nodes().len();
        let mut scheduled = vec![false; n];
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(prio[i]));
        let mut done = 0;
        while done < n {
            let mut progressed = false;
            for &i in &order {
                if scheduled[i] {
                    continue;
                }
                let node = &dfg.nodes()[i];
                let ready = node.args.iter().all(|a| scheduled[a.index()]);
                if !ready {
                    continue;
                }
                st.schedule_node(dfg, i)?;
                scheduled[i] = true;
                done += 1;
                progressed = true;
            }
            assert!(progressed, "DFG is acyclic; some node must be ready");
        }

        Ok(st.finish())
    }
}

struct FuState {
    kind: FuKind,
    last_trigger: Option<u32>,
    /// Cycle the last result left R (next result may arrive after it).
    result_free_from: u32,
}

struct State<'a> {
    arch: &'a Architecture,
    buses: Pool,
    rf_write: Vec<Pool>,
    rf_read: Vec<Pool>,
    imm_out: Vec<Pool>,
    imm_units: Vec<usize>,
    fu_of_class: HashMap<FuClass, Vec<usize>>,
    fu_state: Vec<FuState>,
    place: Vec<Place>,
    remaining_reads: Vec<u32>,
    resident: Vec<u32>,
    is_output: Vec<bool>,
    moves: Vec<Move>,
    ops: Vec<ScheduledOp>,
    transports: HashMap<usize, Vec<OpTransport>>,
    spills: u32,
    makespan: u32,
    next_rf: usize,
}

impl<'a> State<'a> {
    fn new(arch: &'a Architecture, dfg: &Dfg) -> Result<Self, ScheduleError> {
        let mut fu_of_class: HashMap<FuClass, Vec<usize>> = HashMap::new();
        let mut imm_units = Vec::new();
        for (i, fu) in arch.fus().iter().enumerate() {
            let class = match fu.kind {
                FuKind::Alu => FuClass::Alu,
                FuKind::Cmp => FuClass::Cmp,
                FuKind::Mul => FuClass::Mul,
                FuKind::LdSt => FuClass::LdSt,
                FuKind::Immediate => {
                    imm_units.push(i);
                    FuClass::Imm
                }
                FuKind::Pc => continue,
            };
            fu_of_class.entry(class).or_default().push(i);
        }
        // Comparisons may fall back to the ALU when no CMP unit exists?
        // No — the paper's templates always include the needed units; we
        // report MissingFu instead so the exploration can skip the point.
        for node in dfg.nodes() {
            if let Some(class) = node.op.fu_class() {
                let covered = match class {
                    FuClass::Imm => !imm_units.is_empty(),
                    _ => fu_of_class.get(&class).is_some_and(|v| !v.is_empty()),
                };
                if !covered {
                    return Err(ScheduleError::MissingFu(class));
                }
            }
        }
        let consumers = dfg.consumers();
        let n = dfg.nodes().len();
        let mut st = State {
            arch,
            buses: Pool::new(arch.bus_count()),
            rf_write: arch.rfs().iter().map(|r| Pool::new(r.nin())).collect(),
            rf_read: arch.rfs().iter().map(|r| Pool::new(r.nout())).collect(),
            imm_out: arch.fus().iter().map(|_| Pool::new(1)).collect(),
            imm_units,
            fu_of_class,
            fu_state: arch
                .fus()
                .iter()
                .map(|f| FuState {
                    kind: f.kind,
                    last_trigger: None,
                    result_free_from: 0,
                })
                .collect(),
            place: vec![Place::Void; n],
            remaining_reads: consumers.iter().map(|c| c.len() as u32).collect(),
            resident: vec![0; arch.rfs().len()],
            is_output: {
                let mut v = vec![false; n];
                for o in dfg.outputs() {
                    v[o.index()] = true;
                }
                v
            },
            moves: Vec::new(),
            ops: Vec::new(),
            transports: HashMap::new(),
            spills: 0,
            makespan: 0,
            next_rf: 0,
        };
        // Live-ins and constants get their places up front.
        for (i, node) in dfg.nodes().iter().enumerate() {
            match node.op {
                Op::Input => {
                    let rf = st.pick_rf();
                    st.resident[rf] += 1;
                    if st.resident[rf] > arch.rfs()[rf].regs as u32 {
                        st.spills += 1;
                    }
                    st.place[i] = Place::Rf { rf, available: 1 };
                }
                Op::Const(_) => st.place[i] = Place::Imm,
                _ => {}
            }
        }
        Ok(st)
    }

    fn pick_rf(&mut self) -> usize {
        // Prefer an RF with spare capacity; otherwise round-robin.
        let n = self.arch.rfs().len();
        for k in 0..n {
            let rf = (self.next_rf + k) % n;
            if self.resident[rf] < self.arch.rfs()[rf].regs as u32 {
                self.next_rf = (rf + 1) % n;
                return rf;
            }
        }
        let rf = self.next_rf;
        self.next_rf = (self.next_rf + 1) % n;
        rf
    }

    /// Is a read of `v` possible at `cycle` (source port + bus)?
    fn read_feasible(&self, v: ValueId, cycle: u32) -> bool {
        if !self.buses.free_at(cycle) {
            return false;
        }
        match self.place[v.index()] {
            Place::Rf { rf, available } => cycle >= available && self.rf_read[rf].free_at(cycle),
            Place::Imm => self
                .imm_units
                .iter()
                .any(|&u| self.imm_out[u].free_at(cycle)),
            Place::Void => false,
        }
    }

    /// Commits a read of `v` at `cycle` towards `dst`.
    fn commit_read(&mut self, v: ValueId, cycle: u32, dst: Endpoint) {
        self.buses.take(cycle);
        let src = match self.place[v.index()] {
            Place::Rf { rf, .. } => {
                self.rf_read[rf].take(cycle);
                self.remaining_reads[v.index()] -= 1;
                if self.remaining_reads[v.index()] == 0 && !self.is_output[v.index()] {
                    self.resident[rf] = self.resident[rf].saturating_sub(1);
                }
                Endpoint::RfRead(rf)
            }
            Place::Imm => {
                let unit = *self
                    .imm_units
                    .iter()
                    .find(|&&u| self.imm_out[u].free_at(cycle))
                    .expect("read_feasible checked an imm unit is free");
                self.imm_out[unit].take(cycle);
                Endpoint::Imm(unit)
            }
            Place::Void => unreachable!("reads of void values are rejected earlier"),
        };
        self.moves.push(Move {
            cycle,
            src,
            dst,
            value: v,
        });
        self.makespan = self.makespan.max(cycle);
    }

    /// Schedules node `i` of `dfg`.
    fn schedule_node(&mut self, dfg: &Dfg, i: usize) -> Result<(), ScheduleError> {
        let node = &dfg.nodes()[i];
        let Some(class) = node.op.fu_class() else {
            return Ok(()); // live-in: placed already
        };
        if class == FuClass::Imm {
            return Ok(()); // constants materialise at read time
        }
        let candidates: Vec<usize> = self.fu_of_class[&class].clone();

        // Earliest availability of each argument.
        let arg_avail = |st: &State, v: ValueId| -> u32 {
            match st.place[v.index()] {
                Place::Rf { available, .. } => available,
                Place::Imm => 1,
                Place::Void => 1,
            }
        };

        // Pick the FU reaching the earliest trigger cycle.
        let mut best: Option<(u32, Option<u32>, usize)> = None; // (t, o, fu)
        for &fu in &candidates {
            let fs = &self.fu_state[fu];
            let lat = fs.kind.latency();
            let mut lb = fs
                .last_trigger
                .map_or(1, |t| t + 1)
                .max(fs.result_free_from.saturating_sub(lat) + 1)
                .max(1);
            for a in &node.args {
                lb = lb.max(arg_avail(self, *a));
            }
            let found = self.find_slots(node, lb, fu)?;
            if best.is_none() || found.0 < best.as_ref().unwrap().0 {
                best = Some((found.0, found.1, fu));
            }
        }
        let (c_t, c_o, fu) = best.expect("at least one candidate FU");

        // Commit the input moves.
        match node.args.len() {
            0 => {}
            1 => self.commit_read(node.args[0], c_t, Endpoint::FuTrigger(fu)),
            2 => {
                self.commit_read(
                    node.args[0],
                    c_o.expect("binary op has operand cycle"),
                    Endpoint::FuOperand(fu),
                );
                self.commit_read(node.args[1], c_t, Endpoint::FuTrigger(fu));
            }
            _ => unreachable!("IR ops have at most 2 args"),
        }
        let lat = self.fu_state[fu].kind.latency();
        let r = c_t + lat;
        self.fu_state[fu].last_trigger = Some(c_t);
        self.ops.push(ScheduledOp {
            node: i,
            fu,
            trigger: c_t,
        });

        // Result move into an RF (when the value is used or is a live-out).
        let needs_result =
            node.op.has_result() && (self.remaining_reads[i] > 0 || self.is_output[i]);
        let fout;
        if needs_result {
            let rf = self.pick_rf();
            let mut w = r + 1;
            loop {
                if self.buses.free_at(w) && self.rf_write[rf].free_at(w) {
                    break;
                }
                w += 1;
                if w > r + SEARCH_LIMIT {
                    return Err(ScheduleError::ResourceDeadlock);
                }
            }
            self.buses.take(w);
            self.rf_write[rf].take(w);
            self.resident[rf] += 1;
            if self.resident[rf] > self.arch.rfs()[rf].regs as u32 {
                self.spills += 1;
            }
            self.place[i] = Place::Rf {
                rf,
                available: w + 1,
            };
            self.moves.push(Move {
                cycle: w,
                src: Endpoint::FuResult(fu),
                dst: Endpoint::RfWrite(rf),
                value: ValueId(i as u32),
            });
            self.makespan = self.makespan.max(w);
            self.fu_state[fu].result_free_from = w;
            fout = w;
        } else {
            self.place[i] = Place::Void;
            self.fu_state[fu].result_free_from = r;
            fout = r + 1;
        }
        self.makespan = self.makespan.max(r);

        // Record the transport for relation validation.
        let fin = match (c_o, node.args.len()) {
            (Some(o), 2) => o.min(c_t) - 1,
            _ => c_t - 1,
        };
        self.transports.entry(fu).or_default().push(OpTransport {
            o: if node.args.len() == 2 { c_o } else { None },
            t: c_t,
            r,
            fin,
            fout,
        });
        Ok(())
    }

    /// Finds the earliest `(trigger, operand)` cycles from `lb` on `fu`.
    fn find_slots(
        &self,
        node: &crate::ir::Node,
        lb: u32,
        fu: usize,
    ) -> Result<(u32, Option<u32>), ScheduleError> {
        let last_t = self.fu_state[fu].last_trigger.map_or(0, |t| t + 1);
        for c_t in lb..lb + SEARCH_LIMIT {
            match node.args.len() {
                0 => return Ok((c_t, None)),
                1 => {
                    if self.read_feasible(node.args[0], c_t) {
                        return Ok((c_t, None));
                    }
                }
                2 => {
                    if !self.read_feasible(node.args[1], c_t) {
                        continue;
                    }
                    // Operand move: latest feasible cycle ≤ c_t, strictly
                    // after the previous trigger (relation 5). Same-cycle
                    // needs two bus slots; `read_feasible` already checks
                    // slot counts, but both reads landing on one cycle must
                    // not exceed them — check pairwise.
                    let lo = last_t.max(arg_lower(self, node.args[0]));
                    let mut c_o = c_t;
                    while c_o >= lo {
                        if self.pair_feasible(node.args[0], c_o, node.args[1], c_t) {
                            return Ok((c_t, Some(c_o)));
                        }
                        if c_o == 0 {
                            break;
                        }
                        c_o -= 1;
                    }
                }
                _ => unreachable!(),
            }
        }
        return Err(ScheduleError::ResourceDeadlock);

        fn arg_lower(st: &State, v: ValueId) -> u32 {
            match st.place[v.index()] {
                Place::Rf { available, .. } => available,
                _ => 1,
            }
        }
    }

    /// Can reads of `a` at `ca` and `b` at `cb` coexist?
    fn pair_feasible(&self, a: ValueId, ca: u32, b: ValueId, cb: u32) -> bool {
        if !self.read_feasible(a, ca) || !self.read_feasible(b, cb) {
            return false;
        }
        if ca != cb {
            return true;
        }
        // Same cycle: need two bus slots and distinct port capacity.
        let bus_used = self.buses.used.get(ca as usize).copied().unwrap_or(0);
        if u32::from(bus_used) + 2 > self.arch.bus_count() as u32 {
            return false;
        }
        match (self.place[a.index()], self.place[b.index()]) {
            (Place::Rf { rf: ra, .. }, Place::Rf { rf: rb, .. }) if ra == rb => {
                let used = self.rf_read[ra].used.get(ca as usize).copied().unwrap_or(0);
                u32::from(used) + 2 <= self.arch.rfs()[ra].nout() as u32
            }
            (Place::Imm, Place::Imm) => {
                // Need two distinct free immediate units.
                self.imm_units
                    .iter()
                    .filter(|&&u| self.imm_out[u].free_at(ca))
                    .count()
                    >= 2
            }
            _ => true,
        }
    }

    fn finish(self) -> Schedule {
        let makespan = self.makespan + 1;
        Schedule {
            cycles: makespan + self.spills * SPILL_PENALTY_CYCLES,
            makespan,
            moves: self.moves,
            ops: self.ops,
            spills: self.spills,
            transports: self.transports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_arch::template::TemplateBuilder;
    use tta_arch::{validate_relations, Architecture};

    fn chain_dfg(len: usize) -> Dfg {
        let mut dfg = Dfg::new(16);
        let mut v = dfg.input();
        let one = dfg.constant(1);
        for _ in 0..len {
            v = dfg.op(Op::Add, &[v, one]);
        }
        dfg.mark_output(v);
        dfg
    }

    fn parallel_dfg(width: usize) -> Dfg {
        let mut dfg = Dfg::new(16);
        let a = dfg.input();
        let b = dfg.input();
        let mut vs = Vec::new();
        for _ in 0..width {
            vs.push(dfg.op(Op::Xor, &[a, b]));
        }
        // Reduce so everything is live-out-relevant.
        let mut acc = vs[0];
        for v in &vs[1..] {
            acc = dfg.op(Op::Or, &[acc, *v]);
        }
        dfg.mark_output(acc);
        dfg
    }

    #[test]
    fn schedules_simple_chain() {
        let arch = Architecture::figure9();
        let s = Scheduler::new(&arch).run(&chain_dfg(5)).unwrap();
        assert!(s.cycles >= 5, "chain of 5 dependent adds takes >= 5 cycles");
        // 5 ops * (2 reads + 1 write) = 15 moves.
        assert_eq!(s.moves.len(), 15);
    }

    #[test]
    fn schedules_respect_timing_relations() {
        let arch = Architecture::figure9();
        for dfg in [chain_dfg(8), parallel_dfg(6)] {
            let s = Scheduler::new(&arch).run(&dfg).unwrap();
            for (fu, ops) in s.transports_per_fu() {
                assert_eq!(validate_relations(ops), Ok(()), "fu {fu}");
            }
        }
    }

    #[test]
    fn more_buses_never_slower() {
        let dfg = parallel_dfg(10);
        let mut last = u32::MAX;
        for nb in [1usize, 2, 3, 4] {
            let arch = TemplateBuilder::new(format!("b{nb}"), 16, nb)
                .fu(FuKind::Alu)
                .fu(FuKind::Alu)
                .fu(FuKind::Immediate)
                .fu(FuKind::LdSt)
                .fu(FuKind::Pc)
                .rf(16, 2, 2)
                .build();
            let s = Scheduler::new(&arch).run(&dfg).unwrap();
            assert!(
                s.cycles <= last,
                "bus count {nb} slowed down: {} > {last}",
                s.cycles
            );
            last = s.cycles;
        }
    }
    use tta_arch::FuKind;

    #[test]
    fn two_alus_faster_than_one_on_parallel_work() {
        let dfg = parallel_dfg(12);
        let one = TemplateBuilder::new("one", 16, 4)
            .fu(FuKind::Alu)
            .fu(FuKind::Immediate)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .rf(16, 2, 2)
            .build();
        let two = TemplateBuilder::new("two", 16, 4)
            .fu(FuKind::Alu)
            .fu(FuKind::Alu)
            .fu(FuKind::Immediate)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .rf(16, 2, 2)
            .build();
        let s1 = Scheduler::new(&one).run(&dfg).unwrap();
        let s2 = Scheduler::new(&two).run(&dfg).unwrap();
        assert!(s2.cycles < s1.cycles, "{} !< {}", s2.cycles, s1.cycles);
    }

    #[test]
    fn missing_mul_reported() {
        let mut dfg = Dfg::new(16);
        let a = dfg.input();
        let b = dfg.input();
        let m = dfg.op(Op::Mul, &[a, b]);
        dfg.mark_output(m);
        let arch = Architecture::figure9(); // no MUL in Figure 9
        assert_eq!(
            Scheduler::new(&arch).run(&dfg).unwrap_err(),
            ScheduleError::MissingFu(FuClass::Mul)
        );
    }

    #[test]
    fn tiny_rf_causes_spills() {
        // Many simultaneously-live values on a 2-register RF.
        let mut dfg = Dfg::new(16);
        let a = dfg.input();
        let b = dfg.input();
        let mut vs = Vec::new();
        for k in 0..8 {
            let c = dfg.constant(k);
            let x = dfg.op(Op::Add, &[a, c]);
            vs.push(dfg.op(Op::Xor, &[x, b]));
        }
        let mut acc = vs[0];
        for v in &vs[1..] {
            acc = dfg.op(Op::Or, &[acc, *v]);
        }
        dfg.mark_output(acc);
        let small = TemplateBuilder::new("small", 16, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Immediate)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .rf(2, 1, 2)
            .build();
        let big = TemplateBuilder::new("big", 16, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Immediate)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .rf(16, 1, 2)
            .build();
        let ss = Scheduler::new(&small).run(&dfg).unwrap();
        let sb = Scheduler::new(&big).run(&dfg).unwrap();
        assert!(ss.spills > 0);
        assert_eq!(sb.spills, 0);
        assert!(ss.cycles > sb.cycles);
    }

    #[test]
    fn loads_and_stores_schedule() {
        let mut dfg = Dfg::new(16);
        let addr = dfg.constant(4);
        let v = dfg.op(Op::Load, &[addr]);
        let one = dfg.constant(1);
        let v2 = dfg.op(Op::Add, &[v, one]);
        dfg.op(Op::Store, &[addr, v2]);
        let arch = Architecture::figure9();
        let s = Scheduler::new(&arch).run(&dfg).unwrap();
        // load trigger + result write + 2 add reads + add result + 2
        // store input moves = 7.
        assert_eq!(s.moves.len(), 7);
    }
}
