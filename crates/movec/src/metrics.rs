//! Schedule quality metrics and reports.

use std::collections::HashMap;

use tta_arch::Architecture;

use crate::schedule::{Endpoint, Move, Schedule};

/// Utilisation summary of one schedule on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Total cycles (with spill penalty).
    pub cycles: u32,
    /// Total data transports.
    pub moves: usize,
    /// Average fraction of bus slots occupied.
    pub bus_utilization: f64,
    /// Transports per FU instance index (sources only).
    pub fu_result_moves: HashMap<usize, usize>,
    /// Transports per RF instance index (reads + writes).
    pub rf_traffic: HashMap<usize, usize>,
    /// Register-file overflow events.
    pub spills: u32,
}

impl ScheduleReport {
    /// Builds the report for `schedule` on `arch`.
    pub fn new(arch: &Architecture, schedule: &Schedule) -> Self {
        let mut fu_result_moves: HashMap<usize, usize> = HashMap::new();
        let mut rf_traffic: HashMap<usize, usize> = HashMap::new();
        for mv in &schedule.moves {
            count_endpoint(&mut fu_result_moves, &mut rf_traffic, mv);
        }
        ScheduleReport {
            cycles: schedule.cycles,
            moves: schedule.moves.len(),
            bus_utilization: schedule.transport_density(arch),
            fu_result_moves,
            rf_traffic,
            spills: schedule.spills,
        }
    }
}

fn count_endpoint(fu: &mut HashMap<usize, usize>, rf: &mut HashMap<usize, usize>, mv: &Move) {
    match mv.src {
        Endpoint::FuResult(i) | Endpoint::Imm(i) => *fu.entry(i).or_default() += 1,
        Endpoint::RfRead(i) => *rf.entry(i).or_default() += 1,
        _ => {}
    }
    if let Endpoint::RfWrite(i) = mv.dst {
        *rf.entry(i).or_default() += 1;
    }
}

impl std::fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} cycles, {} moves, bus util {:.1}%, {} spills",
            self.cycles,
            self.moves,
            self.bus_utilization * 100.0,
            self.spills
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Dfg, Op};
    use crate::schedule::Scheduler;

    #[test]
    fn report_counts_traffic() {
        let mut dfg = Dfg::new(16);
        let a = dfg.input();
        let b = dfg.input();
        let x = dfg.op(Op::Add, &[a, b]);
        dfg.mark_output(x);
        let arch = Architecture::figure9();
        let s = Scheduler::new(&arch).run(&dfg).unwrap();
        let report = ScheduleReport::new(&arch, &s);
        assert_eq!(report.moves, 3);
        assert!(report.bus_utilization > 0.0);
        assert!(report.to_string().contains("moves"));
    }
}
