//! The dataflow IR: a straight-line (trace) program over machine words.
//!
//! Workloads are expressed as acyclic dataflow graphs — the natural input
//! of a transport scheduler. Loops are handled at the workload level by
//! trace expansion (unrolling) plus an iteration multiplier, exactly how
//! the exploration evaluates the Crypt kernel.

use std::fmt;

/// Identifier of an IR value (the result of one node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub(crate) u32);

impl ValueId {
    /// Dense index of the defining node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// IR operations. Word semantics are defined by [`Dfg::width`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Live-in value (preloaded in a register file).
    Input,
    /// Instruction-encoded constant (delivered by an Immediate unit).
    Const(u64),
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a << (b mod width)`
    Shl,
    /// `a >> (b mod width)` (logical)
    Shr,
    /// `a & b`
    And,
    /// `a | b`
    Or,
    /// `a ^ b`
    Xor,
    /// `!a`
    Not,
    /// `a * b` (low half)
    Mul,
    /// `a == b` (1/0)
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` unsigned
    Ltu,
    /// `a ≥ b` unsigned
    Geu,
    /// `mem[a]`
    Load,
    /// `mem[a] = b` (produces no value consumers may use)
    Store,
}

/// Functional-unit class an operation executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// ALU-class operation.
    Alu,
    /// Multiplier.
    Mul,
    /// Comparator.
    Cmp,
    /// Load/store unit.
    LdSt,
    /// Immediate unit (constants).
    Imm,
}

impl Op {
    /// The FU class executing this op; `None` for live-ins.
    pub fn fu_class(self) -> Option<FuClass> {
        match self {
            Op::Input => None,
            Op::Const(_) => Some(FuClass::Imm),
            Op::Add | Op::Sub | Op::Shl | Op::Shr | Op::And | Op::Or | Op::Xor | Op::Not => {
                Some(FuClass::Alu)
            }
            Op::Mul => Some(FuClass::Mul),
            Op::Eq | Op::Ne | Op::Ltu | Op::Geu => Some(FuClass::Cmp),
            Op::Load | Op::Store => Some(FuClass::LdSt),
        }
    }

    /// Number of data arguments.
    pub fn arity(self) -> usize {
        match self {
            Op::Input | Op::Const(_) => 0,
            Op::Not | Op::Load => 1,
            _ => 2,
        }
    }

    /// Does the op define a value consumers can read?
    pub fn has_result(self) -> bool {
        !matches!(self, Op::Store)
    }
}

/// One IR node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Operation.
    pub op: Op,
    /// Argument values (length = `op.arity()`).
    pub args: Vec<ValueId>,
}

/// A dataflow graph over `width`-bit words.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    width: u32,
    nodes: Vec<Node>,
    outputs: Vec<ValueId>,
    n_inputs: usize,
}

impl Dfg {
    /// Creates an empty graph over `width`-bit words (2–64).
    ///
    /// # Panics
    ///
    /// Panics if `width` is out of range.
    pub fn new(width: u32) -> Self {
        assert!((2..=64).contains(&width), "width out of range");
        Dfg {
            width,
            nodes: Vec::new(),
            outputs: Vec::new(),
            n_inputs: 0,
        }
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Word mask.
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Declares a live-in value.
    pub fn input(&mut self) -> ValueId {
        self.n_inputs += 1;
        self.push(Op::Input, &[])
    }

    /// Adds a constant.
    pub fn constant(&mut self, value: u64) -> ValueId {
        self.push(Op::Const(value & self.mask()), &[])
    }

    /// Adds an operation node.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or forward references.
    pub fn op(&mut self, op: Op, args: &[ValueId]) -> ValueId {
        assert_eq!(op.arity(), args.len(), "{op:?} arity mismatch");
        assert!(!matches!(op, Op::Input), "use Dfg::input for live-ins");
        self.push(op, args)
    }

    fn push(&mut self, op: Op, args: &[ValueId]) -> ValueId {
        for a in args {
            assert!(a.index() < self.nodes.len(), "forward reference {a}");
        }
        let id = ValueId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            args: args.to_vec(),
        });
        id
    }

    /// Marks a value as a live-out.
    pub fn mark_output(&mut self, v: ValueId) {
        assert!(v.index() < self.nodes.len(), "unknown value {v}");
        assert!(
            self.nodes[v.index()].op.has_result(),
            "stores have no value"
        );
        self.outputs.push(v);
    }

    /// All nodes in definition order (already topological).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Live-out values.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// Number of live-ins.
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }

    /// Number of nodes that execute on some FU (excludes live-ins).
    pub fn operation_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.op.fu_class().is_some())
            .count()
    }

    /// Consumers of every value.
    pub fn consumers(&self) -> Vec<Vec<ValueId>> {
        let mut cons: Vec<Vec<ValueId>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for a in &node.args {
                cons[a.index()].push(ValueId(i as u32));
            }
        }
        cons
    }

    /// Longest path (in nodes) from each node to any sink — the classic
    /// list-scheduling priority.
    pub fn priorities(&self) -> Vec<u32> {
        let cons = self.consumers();
        let mut prio = vec![0u32; self.nodes.len()];
        for i in (0..self.nodes.len()).rev() {
            let best = cons[i]
                .iter()
                .map(|c| prio[c.index()] + 1)
                .max()
                .unwrap_or(0);
            prio[i] = best;
        }
        prio
    }

    /// Critical-path length in operations (lower bound on any schedule).
    pub fn critical_path(&self) -> u32 {
        self.priorities().iter().copied().max().unwrap_or(0) + 1
    }

    /// Interprets the graph: the golden model for workload verification.
    ///
    /// `inputs` supplies live-ins in declaration order; `mem` is the data
    /// memory for `Load`/`Store` (addresses taken modulo its length).
    ///
    /// Returns the values of [`Self::outputs`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than [`Self::input_count`] or `mem`
    /// is empty while the graph contains memory operations.
    pub fn eval(&self, inputs: &[u64], mem: &mut [u64]) -> Vec<u64> {
        let mask = self.mask();
        let w = self.width as u64;
        let mut values = vec![0u64; self.nodes.len()];
        let mut next_input = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            let a = |k: usize| values[node.args[k].index()];
            values[i] = mask
                & match node.op {
                    Op::Input => {
                        let v = inputs[next_input];
                        next_input += 1;
                        v
                    }
                    Op::Const(c) => c,
                    Op::Add => a(0).wrapping_add(a(1)),
                    Op::Sub => a(0).wrapping_sub(a(1)),
                    Op::Shl => a(0) << (a(1) % w),
                    Op::Shr => (a(0) & mask) >> (a(1) % w),
                    Op::And => a(0) & a(1),
                    Op::Or => a(0) | a(1),
                    Op::Xor => a(0) ^ a(1),
                    Op::Not => !a(0),
                    Op::Mul => a(0).wrapping_mul(a(1)),
                    Op::Eq => u64::from(a(0) == a(1)),
                    Op::Ne => u64::from(a(0) != a(1)),
                    Op::Ltu => u64::from(a(0) < a(1)),
                    Op::Geu => u64::from(a(0) >= a(1)),
                    Op::Load => {
                        let idx = (a(0) as usize) % mem.len();
                        mem[idx]
                    }
                    Op::Store => {
                        let idx = (a(0) as usize) % mem.len();
                        mem[idx] = a(1) & mask;
                        0
                    }
                };
        }
        self.outputs.iter().map(|v| values[v.index()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_straight_line() {
        let mut dfg = Dfg::new(16);
        let a = dfg.input();
        let b = dfg.input();
        let c5 = dfg.constant(5);
        let s = dfg.op(Op::Add, &[a, b]);
        let x = dfg.op(Op::Xor, &[s, c5]);
        dfg.mark_output(x);
        let mut mem = vec![0u64; 4];
        let out = dfg.eval(&[10, 20], &mut mem);
        assert_eq!(out, vec![(10 + 20) ^ 5]);
    }

    #[test]
    fn eval_memory_roundtrip() {
        let mut dfg = Dfg::new(16);
        let addr = dfg.constant(2);
        let val = dfg.constant(0xBEEF);
        dfg.op(Op::Store, &[addr, val]);
        let back = dfg.op(Op::Load, &[addr]);
        dfg.mark_output(back);
        let mut mem = vec![0u64; 4];
        assert_eq!(dfg.eval(&[], &mut mem), vec![0xBEEF]);
        assert_eq!(mem[2], 0xBEEF);
    }

    #[test]
    fn width_masks_results() {
        let mut dfg = Dfg::new(8);
        let a = dfg.input();
        let b = dfg.input();
        let s = dfg.op(Op::Add, &[a, b]);
        dfg.mark_output(s);
        assert_eq!(dfg.eval(&[200, 100], &mut [0]), vec![(200 + 100) & 0xFF]);
    }

    #[test]
    fn priorities_decrease_towards_sinks() {
        let mut dfg = Dfg::new(16);
        let a = dfg.input();
        let b = dfg.op(Op::Not, &[a]);
        let c = dfg.op(Op::Not, &[b]);
        dfg.mark_output(c);
        let p = dfg.priorities();
        assert!(p[a.index()] > p[b.index()]);
        assert!(p[b.index()] > p[c.index()]);
        assert_eq!(dfg.critical_path(), 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut dfg = Dfg::new(16);
        let a = dfg.input();
        let _ = dfg.op(Op::Add, &[a]);
    }
}
