//! Rendering of schedules as MOVE parallel code.
//!
//! The MOVE framework "produces parallel code that is supported by an
//! instruction level parallel-type TTA": one instruction per cycle, one
//! move slot per bus. This module renders a [`Schedule`] in that form —
//! useful for inspecting what the scheduler actually emitted, and the
//! basis of the instruction-width accounting of the architecture model.

use std::fmt::Write as _;

use tta_arch::Architecture;

use crate::schedule::{Endpoint, Schedule};

/// Renders one endpoint in MOVE-assembly style.
fn endpoint(arch: &Architecture, e: Endpoint) -> String {
    match e {
        Endpoint::FuResult(i) => format!("{}.r", arch.fus()[i].name),
        Endpoint::FuOperand(i) => format!("{}.o", arch.fus()[i].name),
        Endpoint::FuTrigger(i) => format!("{}.t", arch.fus()[i].name),
        Endpoint::RfWrite(i) => format!("{}.w", arch.rfs()[i].name),
        Endpoint::RfRead(i) => format!("{}.r", arch.rfs()[i].name),
        Endpoint::Imm(i) => format!("#{}", arch.fus()[i].name),
    }
}

/// Renders the whole schedule as one instruction (line) per cycle, with
/// `…` marking idle move slots.
pub fn render_move_code(arch: &Architecture, schedule: &Schedule) -> String {
    let nb = arch.bus_count();
    let mut by_cycle: Vec<Vec<String>> = vec![Vec::new(); schedule.makespan as usize + 1];
    for mv in &schedule.moves {
        let text = format!("{} -> {}", endpoint(arch, mv.src), endpoint(arch, mv.dst));
        by_cycle[mv.cycle as usize].push(text);
    }
    let mut out = String::new();
    for (cycle, moves) in by_cycle.iter().enumerate() {
        if cycle == 0 && moves.is_empty() {
            continue; // cycle 0 carries no moves by construction
        }
        let _ = write!(out, "{cycle:>4}: ");
        for slot in 0..nb {
            if slot > 0 {
                out.push_str(" ; ");
            }
            match moves.get(slot) {
                Some(m) => out.push_str(m),
                None => out.push('…'),
            }
        }
        debug_assert!(moves.len() <= nb, "more moves than buses in cycle {cycle}");
        out.push('\n');
    }
    out
}

/// Move-slot occupancy statistics: `(used_slots, total_slots)` over the
/// makespan — the NOP density of the emitted parallel code.
pub fn slot_occupancy(arch: &Architecture, schedule: &Schedule) -> (usize, usize) {
    let total = schedule.makespan as usize * arch.bus_count();
    (schedule.moves.len(), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Dfg, Op};
    use crate::schedule::Scheduler;
    use tta_arch::Architecture;

    fn example() -> (Architecture, Schedule) {
        let arch = Architecture::figure9();
        let mut dfg = Dfg::new(16);
        let a = dfg.input();
        let b = dfg.input();
        let s = dfg.op(Op::Add, &[a, b]);
        let t = dfg.op(Op::Xor, &[s, a]);
        dfg.mark_output(t);
        let schedule = Scheduler::new(&arch).run(&dfg).unwrap();
        (arch, schedule)
    }

    #[test]
    fn code_lists_every_move() {
        let (arch, schedule) = example();
        let code = render_move_code(&arch, &schedule);
        // Every move appears exactly once.
        let arrows = code.matches("->").count();
        assert_eq!(arrows, schedule.moves.len());
        assert!(code.contains("alu0.t"), "{code}");
        assert!(code.contains("rf"), "{code}");
    }

    #[test]
    fn occupancy_bounded_by_slots() {
        let (arch, schedule) = example();
        let (used, total) = slot_occupancy(&arch, &schedule);
        assert!(used <= total);
        assert!(used > 0);
    }
}
