//! Property-based tests: random DFGs always schedule on valid machines,
//! schedules respect the paper's transport-timing relations, and resource
//! monotonicity holds (more buses never hurt).

use proptest::prelude::*;
use tta_arch::template::TemplateBuilder;
use tta_arch::{validate_relations, FuKind};
use tta_movec::ir::{Dfg, Op, ValueId};
use tta_movec::schedule::Scheduler;

/// Builds a random (but valid) ALU/CMP-only DFG from proptest choices.
fn build_dfg(ops: &[(u8, u8, u8, u64)]) -> Dfg {
    let mut dfg = Dfg::new(16);
    let mut values: Vec<ValueId> = vec![dfg.input(), dfg.input()];
    for &(kind, a_sel, b_sel, cval) in ops {
        let a = values[a_sel as usize % values.len()];
        let b = values[b_sel as usize % values.len()];
        let v = match kind % 8 {
            0 => dfg.op(Op::Add, &[a, b]),
            1 => dfg.op(Op::Sub, &[a, b]),
            2 => dfg.op(Op::And, &[a, b]),
            3 => dfg.op(Op::Or, &[a, b]),
            4 => dfg.op(Op::Xor, &[a, b]),
            5 => dfg.op(Op::Not, &[a]),
            6 => dfg.op(Op::Ltu, &[a, b]),
            _ => dfg.constant(cval),
        };
        values.push(v);
    }
    let out = *values.last().expect("non-empty");
    dfg.mark_output(out);
    dfg
}

fn machine(buses: usize, alus: usize, regs: usize) -> tta_arch::Architecture {
    let mut b = TemplateBuilder::new(format!("m{buses}{alus}{regs}"), 16, buses);
    for _ in 0..alus {
        b = b.fu(FuKind::Alu);
    }
    b.fu(FuKind::Cmp)
        .fu(FuKind::Immediate)
        .fu(FuKind::LdSt)
        .fu(FuKind::Pc)
        .rf(regs, 1, 2)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_dfgs_schedule_and_respect_relations(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), 0u64..0xFFFF), 1..40),
        buses in 1usize..4,
        alus in 1usize..3,
    ) {
        let dfg = build_dfg(&ops);
        let arch = machine(buses, alus, 16);
        let s = Scheduler::new(&arch).run(&dfg).expect("schedulable");
        for (fu, transports) in s.transports_per_fu() {
            prop_assert_eq!(validate_relations(transports), Ok(()), "fu {}", fu);
        }
        // Each executed op contributes at least its trigger move.
        prop_assert!(s.moves.len() >= dfg.nodes().iter().filter(|n| n.op.arity() > 0).count());
    }

    #[test]
    fn more_buses_rarely_and_boundedly_slower(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), 0u64..0xFFFF), 4..30),
    ) {
        // Greedy list scheduling exhibits Graham anomalies: adding
        // resources can occasionally lengthen a schedule by a cycle or
        // two. The property we guarantee is *bounded* regression — no
        // resource-scaling cliff.
        let dfg = build_dfg(&ops);
        let mut last = u32::MAX;
        for buses in [1usize, 2, 4] {
            let arch = machine(buses, 2, 16);
            let s = Scheduler::new(&arch).run(&dfg).expect("schedulable");
            let bound = last.saturating_add(last / 4).saturating_add(2);
            prop_assert!(
                s.cycles <= bound,
                "{} buses: {} beyond anomaly bound {} (prev {})",
                buses, s.cycles, bound, last
            );
            last = last.min(s.cycles);
        }
    }

    #[test]
    fn bigger_rf_never_more_spills(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), 0u64..0xFFFF), 4..30),
    ) {
        let dfg = build_dfg(&ops);
        let small = Scheduler::new(&machine(2, 1, 2)).run(&dfg).expect("ok");
        let large = Scheduler::new(&machine(2, 1, 32)).run(&dfg).expect("ok");
        prop_assert!(large.spills <= small.spills);
    }

    #[test]
    fn eval_is_deterministic(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), 0u64..0xFFFF), 1..20),
        a in 0u64..0xFFFF,
        b in 0u64..0xFFFF,
    ) {
        let dfg = build_dfg(&ops);
        let r1 = dfg.eval(&[a, b], &mut [0u64; 4]);
        let r2 = dfg.eval(&[a, b], &mut [0u64; 4]);
        prop_assert_eq!(r1, r2);
    }
}
