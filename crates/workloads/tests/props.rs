//! Property tests of the workload subsystem: the DFG traces agree with
//! their golden models over random inputs, and every workload the
//! standard registry offers actually schedules on the paper space's
//! maximal template — a workload that cannot run anywhere in the space
//! would silently hollow out every suite it belongs to.

use proptest::prelude::*;
use tta_arch::template::TemplateSpace;
use tta_movec::schedule::Scheduler;
use tta_workloads::{fft, suite, viterbi};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interpreter == reference for the FFT butterfly stage over random
    /// sample frames and every supported stage size.
    #[test]
    fn fft_stage_matches_golden_model(
        n_exp in 1u32..5,
        samples in proptest::collection::vec(0u64..0x10000, 32),
    ) {
        let n = 1usize << n_exp;
        let mem: Vec<u64> = samples[..2 * n].to_vec();
        let (re, im) = mem.split_at(n);
        let dfg = fft::fft_stage_dfg(n);
        let mut m = mem.clone();
        let got = dfg.eval(&[], &mut m);
        prop_assert_eq!(got, fft::fft_stage_reference(re, im));
    }

    /// Interpreter == reference for the add-compare-select step over
    /// random metric frames and every supported trellis size.
    #[test]
    fn acs_step_matches_golden_model(
        s_exp in 1u32..5,
        metrics in proptest::collection::vec(0u64..0x10000, 48),
    ) {
        let states = 1usize << s_exp;
        let mem: Vec<u64> = metrics[..3 * states].to_vec();
        let dfg = viterbi::acs_step_dfg(states);
        let mut m = mem.clone();
        let got = dfg.eval(&[], &mut m);
        prop_assert_eq!(got, viterbi::acs_step_reference(states, &mem));
    }
}

/// The largest architecture the paper-default space enumerates (every
/// knob at its maximum: 4 buses, 3 ALUs, 2 CMPs, 1 MUL, the 16-register
/// dual-ported RF).
fn maximal_paper_template() -> tta_arch::Architecture {
    let space = TemplateSpace::paper_default();
    let arch = space.point(space.len() - 1);
    assert!(
        arch.fus.iter().any(|f| f.name.starts_with("mul")),
        "the maximal template must carry the MUL knob"
    );
    arch
}

#[test]
fn every_registered_workload_schedules_on_the_maximal_paper_template() {
    let arch = maximal_paper_template();
    let registry = suite::SuiteRegistry::standard();
    for params in [suite::SuiteParams::fast(), suite::SuiteParams::paper()] {
        for name in registry.workload_names() {
            let w = registry.build(name, &params).expect("registered");
            let schedule = Scheduler::new(&arch)
                .run(&w.dfg)
                .unwrap_or_else(|e| panic!("{} must schedule: {e}", w.name));
            assert!(schedule.cycles > 0, "{}", w.name);
        }
    }
}

#[test]
fn every_suite_member_evaluates_like_its_workload() {
    // Instantiating through a suite must hand out exactly the same
    // traces as building the workload directly.
    let registry = suite::SuiteRegistry::standard();
    let params = suite::SuiteParams::fast();
    for s in registry.suites() {
        let members = registry.instantiate(&s.name, &params).expect("registered");
        for (member, (name, weight)) in members.iter().zip(&s.members) {
            let direct = registry.build(name, &params).expect("member registered");
            assert_eq!(member.workload.name, direct.name);
            assert_eq!(member.weight, *weight);
            let mut m1 = member.workload.mem.clone();
            let mut m2 = direct.mem.clone();
            assert_eq!(
                member.workload.dfg.eval(&member.workload.inputs, &mut m1),
                direct.dfg.eval(&direct.inputs, &mut m2),
            );
        }
    }
}
