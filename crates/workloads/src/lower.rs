//! Lowering of the crypt/DES kernel onto the 16-bit MOVE IR.
//!
//! The MOVE framework compiles the C "Crypt" application to move code for
//! a 16-bit TTA (Figure 9's data-bus width). This module performs the
//! same job by hand for the dominant kernel — the 16 Feistel rounds — in
//! the style real `crypt` implementations use: combined S+P (SPE) lookup
//! tables in data memory, key schedule in data memory, and the
//! E-expansion computed with shift/mask/or word operations.
//!
//! The lowering is verified value-for-value against
//! [`crate::des::rounds16_spe`] (same computation, different substrate).

use std::collections::HashMap;

use tta_movec::ir::{Dfg, Op, ValueId};

use crate::des;

/// Base address of the low-half SPE tables (8 × 64 words).
pub const SP_LO_BASE: u64 = 0;
/// Base address of the high-half SPE tables.
pub const SP_HI_BASE: u64 = 512;
/// Base address of the key schedule (16 rounds × 8 chunks).
pub const KEY_BASE: u64 = 1024;
/// Total size of the crypt data-memory image.
pub const MEM_SIZE: usize = 1024 + 16 * 8;

/// crypt(3) iterates the 16-round block cipher 25 times.
pub const CRYPT_ITERATIONS: u64 = 25;

/// Builds the data-memory image for `key`: SPE tables + key schedule.
pub fn crypt_mem_image(key: u64) -> Vec<u64> {
    let spe = des::spe_tables();
    let mut mem = vec![0u64; MEM_SIZE];
    for i in 0..8 {
        for idx in 0..64 {
            mem[(SP_LO_BASE as usize) + i * 64 + idx] = u64::from(spe[i][idx] & 0xFFFF);
            mem[(SP_HI_BASE as usize) + i * 64 + idx] = u64::from(spe[i][idx] >> 16);
        }
    }
    for (r, k) in des::key_schedule(key).iter().enumerate() {
        for (i, c) in des::subkey_chunks(*k).iter().enumerate() {
            mem[(KEY_BASE as usize) + r * 8 + i] = u64::from(*c);
        }
    }
    mem
}

/// Splits a 32-bit half into `(hi16, lo16)` IR input words.
pub fn split_half(v: u32) -> (u64, u64) {
    (u64::from(v >> 16), u64::from(v & 0xFFFF))
}

/// Builder helper caching constant nodes.
struct Lowerer {
    dfg: Dfg,
    consts: HashMap<u64, ValueId>,
}

impl Lowerer {
    fn constant(&mut self, v: u64) -> ValueId {
        if let Some(&id) = self.consts.get(&v) {
            return id;
        }
        let id = self.dfg.constant(v);
        self.consts.insert(v, id);
        id
    }

    fn shr(&mut self, v: ValueId, amount: u64) -> ValueId {
        if amount == 0 {
            return v;
        }
        let c = self.constant(amount);
        self.dfg.op(Op::Shr, &[v, c])
    }

    fn shl(&mut self, v: ValueId, amount: u64) -> ValueId {
        if amount == 0 {
            return v;
        }
        let c = self.constant(amount);
        self.dfg.op(Op::Shl, &[v, c])
    }

    fn and_mask(&mut self, v: ValueId, mask: u64) -> ValueId {
        let c = self.constant(mask);
        self.dfg.op(Op::And, &[v, c])
    }

    /// Extracts E-group `i` from the two R words.
    ///
    /// Group bit `5-k` (MSB-first) is the R bit at DES position
    /// `(4i-1+k) mod 32` (1-based); positions 1–16 live in `r_hi`
    /// (bit `16-p`), positions 17–32 in `r_lo` (bit `32-p`). Consecutive
    /// positions within one word form a run extracted with one
    /// shift/mask/shift triple.
    fn e_group(&mut self, i: usize, r_hi: ValueId, r_lo: ValueId) -> ValueId {
        // (word, word_bit, group_shift) per k.
        let mut bits = Vec::with_capacity(6);
        for k in 0..6usize {
            let p = (4 * i + k + 31) % 32 + 1; // 1-based DES position
            let (word, word_bit) = if p <= 16 {
                (r_hi, 16 - p)
            } else {
                (r_lo, 32 - p)
            };
            bits.push((word, word_bit, 5 - k));
        }
        // Merge maximal runs: consecutive k in the same word with
        // descending word bits.
        let mut acc: Option<ValueId> = None;
        let mut run_start = 0usize;
        for k in 1..=6 {
            let extend = k < 6 && {
                let (w_prev, b_prev, _) = bits[k - 1];
                let (w, b, _) = bits[k];
                w == w_prev && b + 1 == b_prev
            };
            if extend {
                continue;
            }
            // Emit run run_start..k-1.
            let (word, _, _) = bits[run_start];
            let (_, low_bit, low_shift) = bits[k - 1];
            let len = (k - run_start) as u64;
            let mut v = self.shr(word, low_bit as u64);
            // Mask unless the shift already isolated the run at the top.
            if low_bit as u64 + len < 16 {
                v = self.and_mask(v, (1 << len) - 1);
            }
            v = self.shl(v, low_shift as u64);
            acc = Some(match acc {
                None => v,
                Some(a) => self.dfg.op(Op::Or, &[a, v]),
            });
            run_start = k;
        }
        acc.expect("six bits produce at least one run")
    }

    /// Lowers one Feistel round; returns the new `(l_hi, l_lo, r_hi, r_lo)`.
    fn round(
        &mut self,
        round: usize,
        l: (ValueId, ValueId),
        r: (ValueId, ValueId),
    ) -> ((ValueId, ValueId), (ValueId, ValueId)) {
        let mut f_hi: Option<ValueId> = None;
        let mut f_lo: Option<ValueId> = None;
        for i in 0..8 {
            let group = self.e_group(i, r.0, r.1);
            // Key chunk from the in-memory key schedule.
            let kaddr = self.constant(KEY_BASE + (round as u64) * 8 + i as u64);
            let chunk = self.dfg.op(Op::Load, &[kaddr]);
            let idx = self.dfg.op(Op::Xor, &[group, chunk]);
            // SPE lookups (low and high halves of the 32-bit contribution).
            let lo_base = self.constant(SP_LO_BASE + (i as u64) * 64);
            let hi_base = self.constant(SP_HI_BASE + (i as u64) * 64);
            let lo_addr = self.dfg.op(Op::Add, &[idx, lo_base]);
            let hi_addr = self.dfg.op(Op::Add, &[idx, hi_base]);
            let s_lo = self.dfg.op(Op::Load, &[lo_addr]);
            let s_hi = self.dfg.op(Op::Load, &[hi_addr]);
            f_lo = Some(match f_lo {
                None => s_lo,
                Some(a) => self.dfg.op(Op::Or, &[a, s_lo]),
            });
            f_hi = Some(match f_hi {
                None => s_hi,
                Some(a) => self.dfg.op(Op::Or, &[a, s_hi]),
            });
        }
        let new_r_hi = self.dfg.op(Op::Xor, &[l.0, f_hi.expect("8 groups")]);
        let new_r_lo = self.dfg.op(Op::Xor, &[l.1, f_lo.expect("8 groups")]);
        (r, (new_r_hi, new_r_lo))
    }
}

/// Lowers `rounds` Feistel rounds (1–16) of the crypt kernel to a 16-bit
/// DFG.
///
/// Inputs (in order): `l_hi, l_lo, r_hi, r_lo`. Outputs: the four words
/// after the final swap, matching [`des::rounds16_spe`] when
/// `rounds == 16`.
///
/// # Panics
///
/// Panics if `rounds` is 0 or greater than 16.
pub fn lower_crypt_rounds(rounds: usize) -> Dfg {
    assert!((1..=16).contains(&rounds), "1..=16 rounds");
    let mut lw = Lowerer {
        dfg: Dfg::new(16),
        consts: HashMap::new(),
    };
    let l_hi = lw.dfg.input();
    let l_lo = lw.dfg.input();
    let r_hi = lw.dfg.input();
    let r_lo = lw.dfg.input();
    let mut l = (l_hi, l_lo);
    let mut r = (r_hi, r_lo);
    for round in 0..rounds {
        let (nl, nr) = lw.round(round, l, r);
        l = nl;
        r = nr;
    }
    // Final swap: outputs are (r, l).
    let mut dfg = lw.dfg;
    dfg.mark_output(r.0);
    dfg.mark_output(r.1);
    dfg.mark_output(l.0);
    dfg.mark_output(l.1);
    dfg
}

/// How many times the `rounds`-round trace executes for one full crypt
/// call: 25 iterations × the fraction of the 16 rounds modelled.
pub fn crypt_trace_multiplier(rounds: usize) -> u64 {
    CRYPT_ITERATIONS * (16 / rounds as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des;

    fn eval_lowered(rounds: usize, key: u64, l: u32, r: u32) -> (u32, u32) {
        let dfg = lower_crypt_rounds(rounds);
        let (lh, ll) = split_half(l);
        let (rh, rl) = split_half(r);
        let mut mem = crypt_mem_image(key);
        let out = dfg.eval(&[lh, ll, rh, rl], &mut mem);
        let a = ((out[0] as u32) << 16) | out[1] as u32;
        let b = ((out[2] as u32) << 16) | out[3] as u32;
        (a, b)
    }

    #[test]
    fn sixteen_rounds_match_reference() {
        let key = 0x1334_5779_9BBC_DFF1;
        let keys = des::key_schedule(key);
        let expect = des::rounds16_spe(0x0123_4567, 0x89AB_CDEF, &keys);
        let got = eval_lowered(16, key, 0x0123_4567, 0x89AB_CDEF);
        assert_eq!(got, expect);
    }

    #[test]
    fn single_round_matches_reference() {
        let key = 0xA5A5_5A5A_0F0F_F0F0;
        let keys = des::key_schedule(key);
        let spe = des::spe_tables();
        let (l, r) = (0xDEAD_BEEFu32, 0x0BAD_F00Du32);
        let (el, er) = des::round_spe(l, r, des::subkey_chunks(keys[0]), &spe);
        // One-round lowering applies the final swap, so compare swapped.
        let got = eval_lowered(1, key, l, r);
        assert_eq!(got, (er, el));
    }

    #[test]
    fn multiple_keys_and_blocks() {
        for (key, l, r) in [
            (0u64, 0u32, 0u32),
            (u64::MAX, u32::MAX, 0),
            (0x0123_4567_89AB_CDEF, 0x1111_2222, 0x3333_4444),
        ] {
            let keys = des::key_schedule(key);
            let expect = des::rounds16_spe(l, r, &keys);
            assert_eq!(eval_lowered(16, key, l, r), expect, "key={key:016x}");
        }
    }

    #[test]
    fn node_count_is_compiler_scale() {
        let dfg = lower_crypt_rounds(16);
        // ~90 ops per round: the trace a real compiler would schedule.
        assert!(dfg.nodes().len() > 800, "{}", dfg.nodes().len());
        assert!(dfg.nodes().len() < 3000, "{}", dfg.nodes().len());
    }

    #[test]
    fn trace_multiplier() {
        assert_eq!(crypt_trace_multiplier(16), 25);
        assert_eq!(crypt_trace_multiplier(4), 100);
        assert_eq!(crypt_trace_multiplier(1), 400);
    }
}
