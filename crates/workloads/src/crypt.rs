//! UNIX `crypt(3)` — the password-hashing application the paper's whole
//! exploration is validated on (ref. \[7\]).
//!
//! `crypt` builds a 56-bit DES key from the password (7 bits per
//! character), perturbs the cipher's E-expansion with a 12-bit salt, and
//! encrypts the zero block 25 times, feeding each output back as input.
//! The result is encoded as 13 characters of the `./0-9A-Za-z` alphabet
//! (salt first).

use crate::des;

/// The `crypt` output alphabet, in encoding order.
const ALPHABET: &[u8; 64] = b"./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";

/// Value of a salt character (its index in the alphabet; unknown
/// characters fold like the historical implementation: by low bits).
fn salt_value(c: u8) -> u32 {
    match ALPHABET.iter().position(|&a| a == c) {
        Some(i) => i as u32,
        None => u32::from(c) & 0x3F,
    }
}

/// Builds the 64-bit DES key from up to 8 password bytes: 7 data bits per
/// character placed in the high bits of each key byte (parity ignored).
pub fn password_key(password: &str) -> u64 {
    let mut key = 0u64;
    for (i, b) in password.bytes().take(8).enumerate() {
        key |= u64::from(b & 0x7F) << 1 << (8 * (7 - i));
    }
    key
}

/// The 12-bit salt from two salt characters.
pub fn salt_bits(salt: &str) -> u32 {
    let bytes = salt.as_bytes();
    let s0 = salt_value(*bytes.first().unwrap_or(&b'.'));
    let s1 = salt_value(*bytes.get(1).unwrap_or(&b'.'));
    s0 | (s1 << 6)
}

/// The 25-fold salted-DES core: encrypts the zero block 25 times.
pub fn crypt_core(key: u64, salt: u32) -> u64 {
    let mut block = 0u64;
    for _ in 0..25 {
        block = des::encrypt_block_salted(key, block, salt);
    }
    block
}

/// Encodes the 64-bit result as 11 output characters (6 bits each,
/// MSB-first, two zero bits appended).
fn encode(block: u64) -> String {
    let mut out = String::with_capacity(11);
    // 64 bits + 2 padding zero bits = 66 = 11 * 6.
    let v = u128::from(block) << 2;
    for i in (0..11).rev() {
        let six = ((v >> (6 * i)) & 0x3F) as usize;
        out.push(ALPHABET[six] as char);
    }
    out
}

/// `crypt(3)`: hashes `password` under the two-character `salt`,
/// returning the classic 13-character string (salt + 11 hash chars).
///
/// # Examples
///
/// ```
/// use tta_workloads::crypt::crypt;
///
/// let hash = crypt("correct horse", "ab");
/// assert_eq!(hash.len(), 13);
/// assert!(hash.starts_with("ab"));
/// // Deterministic:
/// assert_eq!(hash, crypt("correct horse", "ab"));
/// ```
pub fn crypt(password: &str, salt: &str) -> String {
    let key = password_key(password);
    let bits = salt_bits(salt);
    let block = crypt_core(key, bits);
    let bytes = salt.as_bytes();
    let s0 = *bytes.first().unwrap_or(&b'.') as char;
    let s1 = *bytes.get(1).unwrap_or(&b'.') as char;
    format!("{s0}{s1}{}", encode(block))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape() {
        let h = crypt("password", "ab");
        assert_eq!(h.len(), 13);
        assert!(h.starts_with("ab"));
        assert!(h.bytes().all(|b| ALPHABET.contains(&b)));
    }

    #[test]
    fn deterministic_and_salt_sensitive() {
        assert_eq!(crypt("secret", "xy"), crypt("secret", "xy"));
        assert_ne!(crypt("secret", "xy"), crypt("secret", "yx"));
        assert_ne!(crypt("secret", "xy"), crypt("secrets", "xy"));
    }

    #[test]
    fn only_first_eight_chars_matter() {
        // Historical behaviour: the key uses at most 8 characters.
        assert_eq!(crypt("12345678", "ab"), crypt("12345678ZZZ", "ab"));
    }

    #[test]
    fn zero_salt_core_is_iterated_plain_des() {
        // Salt ".." = 0: the core must equal 25 chained plain-DES calls.
        let key = password_key("hunter2");
        let mut block = 0u64;
        for _ in 0..25 {
            block = des::encrypt_block(key, block);
        }
        assert_eq!(crypt_core(key, 0), block);
    }

    #[test]
    fn password_key_layout() {
        // 'A' = 0x41: 7 bits 1000001, shifted into the top byte.
        let k = password_key("A");
        assert_eq!(k >> 56, 0x41 << 1);
    }

    #[test]
    fn salt_bits_alphabet_order() {
        assert_eq!(salt_bits(".."), 0);
        assert_eq!(salt_bits("/."), 1);
        assert_eq!(salt_bits("./"), 1 << 6);
        assert_eq!(salt_bits("zz"), 63 | (63 << 6));
    }
}
