//! Radix-2 FFT butterfly stage — the kernel of TTA-based FFT processors.
//!
//! Žádník & Takala's FFT processor (arXiv:1905.08239) runs fixed-point
//! radix-2 butterflies on a TTA core; the butterfly is the textbook
//! stress case for MUL/ADD chain pressure in the design space. This
//! module expresses one decimation-in-frequency (DIF) stage over `n`
//! complex points as a straight-line [`Dfg`] trace:
//!
//! for every butterfly `k` in `0..n/2`, with `a = x[k]`,
//! `b = x[k + n/2]` and the twiddle `W = e^{-j2πk/n}` in Q7 fixed
//! point:
//!
//! ```text
//! a' = a + b
//! b' = (a - b) · W
//! ```
//!
//! The complex multiply expands to four scalar MULs and two ALU
//! combines per butterfly, so the kernel is multiplier-dominated —
//! architectures without a MUL unit are infeasible for it, and
//! MUL-capable points shift the selected architecture (exactly the
//! effect a DSP-weighted suite is meant to expose).
//!
//! Arithmetic is wrapping over the DFG word width (two's-complement
//! encoding for negative twiddles), mirroring what a fixed-point
//! compiler emits; [`fft_stage_reference`] is the golden model with
//! the same wrapping semantics, value for value.

use tta_movec::ir::{Dfg, Op, ValueId};

/// Q7 fixed-point scale of the twiddle factors (cos/sin × 128).
pub const TWIDDLE_SCALE: f64 = 128.0;

/// Q7 twiddle factors `W_n^k = e^{-j2πk/n}` for `k in 0..n/2`, as
/// `(re, im)` pairs wrapped to 16 bits (negative values encoded
/// two's-complement, as a fixed-point compiler would emit them).
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 2.
pub fn fft_twiddles(n: usize) -> Vec<(u16, u16)> {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "FFT size must be a power of two >= 2"
    );
    (0..n / 2)
        .map(|k| {
            let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            let re = (angle.cos() * TWIDDLE_SCALE).round() as i32;
            let im = (angle.sin() * TWIDDLE_SCALE).round() as i32;
            ((re as i16) as u16, (im as i16) as u16)
        })
        .collect()
}

/// One radix-2 DIF butterfly stage over `n` complex points as a
/// 16-bit dataflow trace.
///
/// Memory layout: `re[k]` at address `k`, `im[k]` at address `n + k`.
/// Outputs, in order, for each butterfly `k in 0..n/2`: the sum path
/// `(re, im)` followed by the twiddled difference path `(re, im)`.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 2.
pub fn fft_stage_dfg(n: usize) -> Dfg {
    let twiddles = fft_twiddles(n);
    let mut dfg = Dfg::new(16);
    let half = n / 2;
    for (k, &(wr, wi)) in twiddles.iter().enumerate() {
        let load = |dfg: &mut Dfg, addr: usize| {
            let a = dfg.constant(addr as u64);
            dfg.op(Op::Load, &[a])
        };
        let ar = load(&mut dfg, k);
        let ai = load(&mut dfg, n + k);
        let br = load(&mut dfg, k + half);
        let bi = load(&mut dfg, n + k + half);
        // Sum path: a' = a + b.
        let sum_r = dfg.op(Op::Add, &[ar, br]);
        let sum_i = dfg.op(Op::Add, &[ai, bi]);
        // Difference path: d = a - b, then b' = d · W.
        let dr = dfg.op(Op::Sub, &[ar, br]);
        let di = dfg.op(Op::Sub, &[ai, bi]);
        let cwr = dfg.constant(u64::from(wr));
        let cwi = dfg.constant(u64::from(wi));
        let t = complex_mul(&mut dfg, (dr, di), (cwr, cwi));
        dfg.mark_output(sum_r);
        dfg.mark_output(sum_i);
        dfg.mark_output(t.0);
        dfg.mark_output(t.1);
    }
    dfg
}

/// `(ar + j·ai) · (br + j·bi)` with wrapping word arithmetic: four MULs
/// plus the cross-term combine.
fn complex_mul(dfg: &mut Dfg, a: (ValueId, ValueId), b: (ValueId, ValueId)) -> (ValueId, ValueId) {
    let rr = dfg.op(Op::Mul, &[a.0, b.0]);
    let ii = dfg.op(Op::Mul, &[a.1, b.1]);
    let ri = dfg.op(Op::Mul, &[a.0, b.1]);
    let ir = dfg.op(Op::Mul, &[a.1, b.0]);
    let re = dfg.op(Op::Sub, &[rr, ii]);
    let im = dfg.op(Op::Add, &[ri, ir]);
    (re, im)
}

/// Golden model for [`fft_stage_dfg`]: the same butterflies with the
/// same wrapping 16-bit arithmetic, in plain Rust. Returns the outputs
/// in the trace's output order (`sum_re, sum_im, diff_re, diff_im` per
/// butterfly).
///
/// # Panics
///
/// Panics unless `re` and `im` both hold `n` samples for a power-of-two
/// `n` ≥ 2.
pub fn fft_stage_reference(re: &[u64], im: &[u64]) -> Vec<u64> {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im sample counts must match");
    let twiddles = fft_twiddles(n);
    let m = |v: u64| v & 0xFFFF;
    let mut out = Vec::with_capacity(2 * n);
    for (k, &(wr, wi)) in twiddles.iter().enumerate() {
        let (ar, ai) = (m(re[k]), m(im[k]));
        let (br, bi) = (m(re[k + n / 2]), m(im[k + n / 2]));
        out.push(m(ar.wrapping_add(br)));
        out.push(m(ai.wrapping_add(bi)));
        let dr = m(ar.wrapping_sub(br));
        let di = m(ai.wrapping_sub(bi));
        let (wr, wi) = (u64::from(wr), u64::from(wi));
        let rr = m(dr.wrapping_mul(wr));
        let ii = m(di.wrapping_mul(wi));
        let ri = m(dr.wrapping_mul(wi));
        let ir = m(di.wrapping_mul(wr));
        out.push(m(rr.wrapping_sub(ii)));
        out.push(m(ri.wrapping_add(ir)));
    }
    out
}

/// A deterministic `2n`-word sample frame (`re` then `im`) for the
/// suite's memory image.
pub fn fft_sample_frame(n: usize) -> Vec<u64> {
    (0..2 * n)
        .map(|k| ((k as u64) * 73 + 19) & 0xFFFF)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_matches_reference() {
        for n in [2usize, 4, 8, 16] {
            let mem = fft_sample_frame(n);
            let (re, im) = mem.split_at(n);
            let dfg = fft_stage_dfg(n);
            let mut m = mem.clone();
            let out = dfg.eval(&[], &mut m);
            assert_eq!(out, fft_stage_reference(re, im), "n={n}");
        }
    }

    #[test]
    fn dc_butterfly_passes_sums_through() {
        // k = 0 has W = 1 (Q7: 128): the difference path is the plain
        // difference scaled by 128.
        let re = [100u64, 40];
        let im = [7u64, 3];
        let out = fft_stage_reference(&re, &im);
        assert_eq!(out[0], 140); // 100 + 40
        assert_eq!(out[1], 10); // 7 + 3
        assert_eq!(out[2], (100 - 40) * 128);
        assert_eq!(out[3], (7 - 3) * 128);
    }

    #[test]
    fn twiddles_live_on_the_unit_circle() {
        for (re, im) in fft_twiddles(16) {
            let r = f64::from(re as i16) / TWIDDLE_SCALE;
            let i = f64::from(im as i16) / TWIDDLE_SCALE;
            let mag = (r * r + i * i).sqrt();
            assert!((mag - 1.0).abs() < 0.02, "|W| = {mag}");
        }
    }

    #[test]
    fn stage_is_multiplier_dominated() {
        use tta_movec::ir::FuClass;
        let dfg = fft_stage_dfg(8);
        let muls = dfg
            .nodes()
            .iter()
            .filter(|node| node.op.fu_class() == Some(FuClass::Mul))
            .count();
        assert_eq!(muls, 4 * 4, "four MULs per butterfly");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = fft_stage_dfg(6);
    }
}
