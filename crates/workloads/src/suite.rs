//! The workload registry the exploration driver consumes: named
//! workloads, sizing parameters, and *weighted suites*.
//!
//! A [`Workload`] is one schedulable trace; a [`Suite`] is a named,
//! weighted set of them (`paper`, `dsp`, `control`, `all`, or your
//! own); the [`SuiteRegistry`] maps names to both and is the single
//! source of truth the CLI, the bench harnesses and the docs derive
//! their workload lists from — a workload registered here can never
//! drift out of the help text.
//!
//! ```
//! use tta_workloads::suite::{SuiteParams, SuiteRegistry};
//!
//! let reg = SuiteRegistry::standard();
//! let dsp = reg.instantiate("dsp", &SuiteParams::fast()).unwrap();
//! assert!(dsp.iter().any(|m| m.workload.name.starts_with("fft")));
//! assert!(dsp.iter().all(|m| m.weight > 0.0));
//! ```

use tta_movec::ir::Dfg;

use crate::{extra, fft, lower, viterbi};

/// A schedulable workload: a DFG trace plus everything needed to run and
/// account for it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// The dataflow trace.
    pub dfg: Dfg,
    /// Live-in values for the golden-model evaluation.
    pub inputs: Vec<u64>,
    /// Initial data memory image.
    pub mem: Vec<u64>,
    /// How many times the trace executes in the full application
    /// (multiplies the scheduled cycle count).
    pub trace_iterations: u64,
}

impl Workload {
    /// Full-application cycle estimate from one scheduled trace.
    pub fn application_cycles(&self, trace_cycles: u32) -> u64 {
        u64::from(trace_cycles) * self.trace_iterations
    }
}

/// A workload paired with its weight inside a suite. The weight scales
/// the workload's cycle contribution in the exploration's aggregate
/// execution-time axis (`tta_core::explore`): weight 2 counts the
/// workload twice as heavily as weight 1.
#[derive(Debug, Clone)]
pub struct WeightedWorkload {
    /// The workload itself.
    pub workload: Workload,
    /// Relative weight (> 0, finite).
    pub weight: f64,
}

/// The paper's workload: the crypt(3) kernel, `rounds` Feistel rounds per
/// trace (16 = one full block cipher; fewer rounds shrink the trace for
/// fast tests while `trace_iterations` keeps the full-app total honest).
pub fn crypt(rounds: usize) -> Workload {
    let key = crate::crypt::password_key("explorer");
    Workload {
        name: format!("crypt[{rounds}r]"),
        dfg: lower::lower_crypt_rounds(rounds),
        inputs: vec![0, 0, 0, 0],
        mem: lower::crypt_mem_image(key),
        trace_iterations: lower::crypt_trace_multiplier(rounds),
    }
}

/// 16-tap FIR filter (needs a multiplier).
pub fn fir16() -> Workload {
    let taps: Vec<u64> = (1..=16).map(|k| (k * 7 + 3) & 0xFF).collect();
    let dfg = extra::fir_dfg(&taps);
    Workload {
        name: "fir16".into(),
        dfg,
        inputs: vec![],
        mem: (0..64).map(|k| (k * 13 + 1) & 0xFFFF).collect(),
        trace_iterations: 256, // one output sample per trace
    }
}

/// Bit-count ladder (pure ALU).
pub fn bitcount() -> Workload {
    Workload {
        name: "bitcount".into(),
        dfg: extra::bitcount_dfg(),
        inputs: vec![0xA5A5],
        mem: vec![0],
        trace_iterations: 4096,
    }
}

/// 32-word Fletcher checksum (load heavy).
pub fn checksum32() -> Workload {
    Workload {
        name: "checksum32".into(),
        dfg: extra::checksum_dfg(32),
        inputs: vec![],
        mem: (0..64).map(|k| (k * 31 + 7) & 0xFFFF).collect(),
        trace_iterations: 512,
    }
}

/// 8-point DCT (multiplier-dominated, 64 MULs per trace).
pub fn dct8() -> Workload {
    Workload {
        name: "dct8".into(),
        dfg: extra::dct8_dfg(),
        inputs: vec![],
        mem: (0..8).map(|k| (k * 97 + 11) & 0xFFFF).collect(),
        trace_iterations: 64, // one 8-sample block per trace
    }
}

/// Branch-free Euclid GCD trace (ALU + CMP mix, long dependence chain).
pub fn gcd12() -> Workload {
    Workload {
        name: "gcd12".into(),
        dfg: extra::gcd_dfg(12),
        inputs: vec![2310, 1155],
        mem: vec![0],
        trace_iterations: 1024,
    }
}

/// One radix-2 FFT butterfly stage over `points` complex points
/// (fixed-point, MUL-dominated — see [`crate::fft`]).
///
/// # Panics
///
/// Panics unless `points` is a power of two ≥ 2.
pub fn fft(points: usize) -> Workload {
    Workload {
        name: format!("fft[{points}p]"),
        dfg: fft::fft_stage_dfg(points),
        inputs: vec![],
        mem: fft::fft_sample_frame(points),
        // One stage per trace; a full N-point FFT is log2(N) stages, and
        // the application streams 128 frames.
        trace_iterations: u64::from(points.trailing_zeros()) * 128,
    }
}

/// One Viterbi/turbo add-compare-select trellis step over `states`
/// states (ALU/CMP-dominated, no multiplier — see [`crate::viterbi`]).
///
/// # Panics
///
/// Panics unless `states` is a power of two in `2..=16`.
pub fn viterbi(states: usize) -> Workload {
    Workload {
        name: format!("viterbi[{states}s]"),
        dfg: viterbi::acs_step_dfg(states),
        inputs: vec![],
        mem: viterbi::acs_metric_frame(states),
        // One trellis step per trace; a decoded block is 256 steps.
        trace_iterations: 256,
    }
}

// ---------------------------------------------------------------------
// Sizing parameters
// ---------------------------------------------------------------------

/// Sizing knobs for registry-built workloads: the same named workload
/// comes in paper-scale and test-friendly variants, and every size is
/// spelled out here instead of being scattered over call sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteParams {
    /// Feistel rounds per crypt trace (16 = one full DES block).
    pub crypt_rounds: usize,
    /// Complex points per FFT butterfly stage (power of two ≥ 2).
    pub fft_points: usize,
    /// Trellis states per add-compare-select step (power of two, 2–16).
    pub viterbi_states: usize,
}

impl SuiteParams {
    /// Paper-scale sizes: full crypt cipher, 16-point FFT stage,
    /// 8-state trellis.
    pub fn paper() -> Self {
        SuiteParams {
            crypt_rounds: 16,
            fft_points: 16,
            viterbi_states: 8,
        }
    }

    /// Test-friendly sizes for the fast space and CI smoke runs.
    pub fn fast() -> Self {
        SuiteParams {
            crypt_rounds: 1,
            fft_points: 8,
            viterbi_states: 4,
        }
    }
}

impl Default for SuiteParams {
    fn default() -> Self {
        SuiteParams::fast()
    }
}

// ---------------------------------------------------------------------
// Suites and the registry
// ---------------------------------------------------------------------

/// A named, weighted suite definition: workload *names* (resolved
/// against the registry at instantiation time) with their weights.
#[derive(Debug, Clone)]
pub struct Suite {
    /// Suite name (`paper`, `dsp`, …).
    pub name: String,
    /// One-line description for listings.
    pub description: String,
    /// `(workload name, weight)` members, in aggregation order.
    pub members: Vec<(String, f64)>,
}

/// Builds one workload at the given sizes.
type WorkloadFactory = Box<dyn Fn(&SuiteParams) -> Workload + Send + Sync>;

/// The registry of named workloads and named, weighted suites.
///
/// [`SuiteRegistry::standard`] registers every built-in workload and
/// the four standard suites; [`SuiteRegistry::register_workload`] /
/// [`SuiteRegistry::register_suite`] extend it with your own (see
/// `docs/WORKLOADS.md`).
pub struct SuiteRegistry {
    workloads: Vec<(String, WorkloadFactory)>,
    suites: Vec<Suite>,
}

impl SuiteRegistry {
    /// An empty registry (no workloads, no suites).
    pub fn new() -> Self {
        SuiteRegistry {
            workloads: Vec::new(),
            suites: Vec::new(),
        }
    }

    /// The standard registry: every built-in workload plus the four
    /// standard suites —
    ///
    /// * `paper` — the paper's single application (crypt);
    /// * `dsp` — kernel-dominated MUL-pressure mix (FFT stage, FIR,
    ///   DCT), weighted toward the FFT per Žádník & Takala;
    /// * `control` — decoder/control mix without a multiplier
    ///   (add-compare-select, GCD, bitcount, checksum), weighted toward
    ///   the ACS kernel per Shahabuddin et al.;
    /// * `all` — every workload at weight 1.
    pub fn standard() -> Self {
        let mut reg = SuiteRegistry::new();
        reg.register_workload("crypt", |p: &SuiteParams| crypt(p.crypt_rounds));
        reg.register_workload("fir16", |_| fir16());
        reg.register_workload("bitcount", |_| bitcount());
        reg.register_workload("checksum32", |_| checksum32());
        reg.register_workload("dct8", |_| dct8());
        reg.register_workload("gcd12", |_| gcd12());
        reg.register_workload("fft", |p: &SuiteParams| fft(p.fft_points));
        reg.register_workload("viterbi", |p: &SuiteParams| viterbi(p.viterbi_states));
        reg.register_suite(Suite {
            name: "paper".into(),
            description: "the paper's single application: crypt(3)/DES".into(),
            members: vec![("crypt".into(), 1.0)],
        });
        reg.register_suite(Suite {
            name: "dsp".into(),
            description: "MUL-dominated kernels: FFT butterfly stage, FIR, DCT".into(),
            members: vec![
                ("fft".into(), 4.0),
                ("fir16".into(), 2.0),
                ("dct8".into(), 1.0),
            ],
        });
        reg.register_suite(Suite {
            name: "control".into(),
            description: "decoder/control kernels without a multiplier: ACS, GCD, bitcount, \
                          checksum"
                .into(),
            members: vec![
                ("viterbi".into(), 4.0),
                ("gcd12".into(), 2.0),
                ("bitcount".into(), 1.0),
                ("checksum32".into(), 1.0),
            ],
        });
        let all = reg
            .workload_names()
            .iter()
            .map(|n| (n.to_string(), 1.0))
            .collect();
        reg.register_suite(Suite {
            name: "all".into(),
            description: "every registered workload at weight 1".into(),
            members: all,
        });
        reg
    }

    /// Registers (or replaces) a named workload factory.
    pub fn register_workload(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&SuiteParams) -> Workload + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.workloads.retain(|(n, _)| *n != name);
        self.workloads.push((name, Box::new(factory)));
    }

    /// Registers (or replaces) a named suite. Member names are resolved
    /// lazily, so a suite may be registered before its workloads.
    pub fn register_suite(&mut self, suite: Suite) {
        self.suites.retain(|s| s.name != suite.name);
        self.suites.push(suite);
    }

    /// Every registered workload name, in registration order.
    pub fn workload_names(&self) -> Vec<&str> {
        self.workloads.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Every registered suite, in registration order.
    pub fn suites(&self) -> &[Suite] {
        &self.suites
    }

    /// Every registered suite name, in registration order.
    pub fn suite_names(&self) -> Vec<&str> {
        self.suites.iter().map(|s| s.name.as_str()).collect()
    }

    /// The suite registered under `name`, if any.
    pub fn suite(&self, name: &str) -> Option<&Suite> {
        self.suites.iter().find(|s| s.name == name)
    }

    /// Builds the workload registered under `name` at the given sizes.
    pub fn build(&self, name: &str, params: &SuiteParams) -> Option<Workload> {
        self.workloads
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f(params))
    }

    /// Instantiates every member of the suite registered under `name`,
    /// in member order. Returns `None` for an unknown suite name.
    ///
    /// # Panics
    ///
    /// Panics when a member names a workload the registry does not
    /// have — a suite definition bug, not an input error.
    pub fn instantiate(&self, name: &str, params: &SuiteParams) -> Option<Vec<WeightedWorkload>> {
        let suite = self.suite(name)?;
        Some(
            suite
                .members
                .iter()
                .map(|(member, weight)| WeightedWorkload {
                    workload: self.build(member, params).unwrap_or_else(|| {
                        panic!("suite {name:?} names unknown workload {member:?}")
                    }),
                    weight: *weight,
                })
                .collect(),
        )
    }
}

impl Default for SuiteRegistry {
    /// An empty registry, matching [`SuiteRegistry::new`] (use
    /// [`SuiteRegistry::standard`] for the built-in workloads and
    /// suites).
    fn default() -> Self {
        SuiteRegistry::new()
    }
}

impl std::fmt::Debug for SuiteRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuiteRegistry")
            .field("workloads", &self.workload_names())
            .field("suites", &self.suite_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_workloads_evaluate() {
        let reg = SuiteRegistry::standard();
        let params = SuiteParams::fast();
        for name in reg.workload_names() {
            let w = reg.build(name, &params).expect("registered");
            let mut mem = w.mem.clone();
            let out = w.dfg.eval(&w.inputs, &mut mem);
            assert!(!out.is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn application_cycles_scale() {
        let w = crypt(16);
        assert_eq!(w.application_cycles(100), 2500);
        let w4 = crypt(4);
        assert_eq!(w4.application_cycles(100), 10_000);
    }

    #[test]
    fn standard_suites_instantiate_with_positive_weights() {
        let reg = SuiteRegistry::standard();
        for suite_name in ["paper", "dsp", "control", "all"] {
            let members = reg
                .instantiate(suite_name, &SuiteParams::fast())
                .unwrap_or_else(|| panic!("{suite_name} registered"));
            assert!(!members.is_empty(), "{suite_name}");
            for m in &members {
                assert!(
                    m.weight > 0.0 && m.weight.is_finite(),
                    "{}",
                    m.workload.name
                );
            }
        }
        // `all` covers every registered workload.
        let all = reg.instantiate("all", &SuiteParams::fast()).unwrap();
        assert_eq!(all.len(), reg.workload_names().len());
    }

    #[test]
    fn suite_sizes_follow_params() {
        let reg = SuiteRegistry::standard();
        let fast = reg.build("fft", &SuiteParams::fast()).unwrap();
        let paper = reg.build("fft", &SuiteParams::paper()).unwrap();
        assert!(paper.dfg.operation_count() > fast.dfg.operation_count());
        assert_eq!(fast.name, "fft[8p]");
        assert_eq!(paper.name, "fft[16p]");
    }

    #[test]
    fn unknown_names_are_none() {
        let reg = SuiteRegistry::standard();
        assert!(reg.build("mp3", &SuiteParams::fast()).is_none());
        assert!(reg.instantiate("media", &SuiteParams::fast()).is_none());
        assert!(reg.suite("media").is_none());
    }

    #[test]
    fn registration_replaces_and_extends() {
        let mut reg = SuiteRegistry::standard();
        reg.register_workload("crypt", |_| bitcount());
        assert_eq!(
            reg.build("crypt", &SuiteParams::fast()).unwrap().name,
            "bitcount"
        );
        reg.register_suite(Suite {
            name: "mine".into(),
            description: "custom".into(),
            members: vec![("gcd12".into(), 3.0)],
        });
        let mine = reg.instantiate("mine", &SuiteParams::fast()).unwrap();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].weight, 3.0);
    }
}
