//! The workload registry the exploration driver consumes.

use tta_movec::ir::Dfg;

use crate::{extra, lower};

/// A schedulable workload: a DFG trace plus everything needed to run and
/// account for it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// The dataflow trace.
    pub dfg: Dfg,
    /// Live-in values for the golden-model evaluation.
    pub inputs: Vec<u64>,
    /// Initial data memory image.
    pub mem: Vec<u64>,
    /// How many times the trace executes in the full application
    /// (multiplies the scheduled cycle count).
    pub trace_iterations: u64,
}

impl Workload {
    /// Full-application cycle estimate from one scheduled trace.
    pub fn application_cycles(&self, trace_cycles: u32) -> u64 {
        u64::from(trace_cycles) * self.trace_iterations
    }
}

/// The paper's workload: the crypt(3) kernel, `rounds` Feistel rounds per
/// trace (16 = one full block cipher; fewer rounds shrink the trace for
/// fast tests while `trace_iterations` keeps the full-app total honest).
pub fn crypt(rounds: usize) -> Workload {
    let key = crate::crypt::password_key("explorer");
    Workload {
        name: format!("crypt[{rounds}r]"),
        dfg: lower::lower_crypt_rounds(rounds),
        inputs: vec![0, 0, 0, 0],
        mem: lower::crypt_mem_image(key),
        trace_iterations: lower::crypt_trace_multiplier(rounds),
    }
}

/// 16-tap FIR filter (needs a multiplier).
pub fn fir16() -> Workload {
    let taps: Vec<u64> = (1..=16).map(|k| (k * 7 + 3) & 0xFF).collect();
    let dfg = extra::fir_dfg(&taps);
    Workload {
        name: "fir16".into(),
        dfg,
        inputs: vec![],
        mem: (0..64).map(|k| (k * 13 + 1) & 0xFFFF).collect(),
        trace_iterations: 256, // one output sample per trace
    }
}

/// Bit-count ladder (pure ALU).
pub fn bitcount() -> Workload {
    Workload {
        name: "bitcount".into(),
        dfg: extra::bitcount_dfg(),
        inputs: vec![0xA5A5],
        mem: vec![0],
        trace_iterations: 4096,
    }
}

/// 32-word Fletcher checksum (load heavy).
pub fn checksum32() -> Workload {
    Workload {
        name: "checksum32".into(),
        dfg: extra::checksum_dfg(32),
        inputs: vec![],
        mem: (0..64).map(|k| (k * 31 + 7) & 0xFFFF).collect(),
        trace_iterations: 512,
    }
}

/// 8-point DCT (multiplier-dominated, 64 MULs per trace).
pub fn dct8() -> Workload {
    Workload {
        name: "dct8".into(),
        dfg: extra::dct8_dfg(),
        inputs: vec![],
        mem: (0..8).map(|k| (k * 97 + 11) & 0xFFFF).collect(),
        trace_iterations: 64, // one 8-sample block per trace
    }
}

/// Branch-free Euclid GCD trace (ALU + CMP mix, long dependence chain).
pub fn gcd12() -> Workload {
    Workload {
        name: "gcd12".into(),
        dfg: extra::gcd_dfg(12),
        inputs: vec![2310, 1155],
        mem: vec![0],
        trace_iterations: 1024,
    }
}

/// Every standard workload at test-friendly sizes.
pub fn all_standard() -> Vec<Workload> {
    vec![crypt(4), fir16(), bitcount(), checksum32(), dct8(), gcd12()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_evaluate() {
        for w in all_standard() {
            let mut mem = w.mem.clone();
            let out = w.dfg.eval(&w.inputs, &mut mem);
            assert!(!out.is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn application_cycles_scale() {
        let w = crypt(16);
        assert_eq!(w.application_cycles(100), 2500);
        let w4 = crypt(4);
        assert_eq!(w4.application_cycles(100), 10_000);
    }
}
