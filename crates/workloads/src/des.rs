//! The Data Encryption Standard (FIPS 46), the computational core of the
//! UNIX `crypt(3)` application the paper evaluates.
//!
//! Two functionally equivalent implementations coexist:
//!
//! * a readable permutation-table reference (`encrypt_block`), validated
//!   against the classic published test vectors;
//! * an SPE-table path (`rounds16_spe`, [`spe_tables`], [`e_groups`])
//!   structured exactly like the 16-bit IR lowering in [`crate::lower`],
//!   so the scheduled workload can be checked against it value-for-value.

/// Initial permutation IP.
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation IP⁻¹.
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion E (32 → 48).
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation P (32 → 32).
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Key permutation PC-1 (64 → 56).
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Key permutation PC-2 (56 → 48).
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Per-round left-shift amounts of the key schedule.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight S-boxes, row-major `[box][row * 16 + column]`.
const SBOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Generic MSB-first bit permutation: output bit `i` (MSB first) takes
/// input bit `table[i]` (1-based, MSB first) of an `in_bits`-wide value.
fn permute(v: u64, in_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for (i, &src) in table.iter().enumerate() {
        let bit = (v >> (in_bits - u32::from(src))) & 1;
        out |= bit << (table.len() - 1 - i);
    }
    out
}

/// S-box lookup with the raw 6-bit input (row = b1b6, column = b2b3b4b5).
fn sbox(i: usize, six: u64) -> u64 {
    let row = ((six >> 4) & 2) | (six & 1);
    let col = (six >> 1) & 0xF;
    u64::from(SBOX[i][(row * 16 + col) as usize])
}

/// The 16 round subkeys (48 bits each) of `key`.
pub fn key_schedule(key: u64) -> [u64; 16] {
    let pc1 = permute(key, 64, &PC1);
    let mut c = (pc1 >> 28) & 0x0FFF_FFFF;
    let mut d = pc1 & 0x0FFF_FFFF;
    let mut keys = [0u64; 16];
    for (i, &s) in SHIFTS.iter().enumerate() {
        let s = u32::from(s);
        c = ((c << s) | (c >> (28 - s))) & 0x0FFF_FFFF;
        d = ((d << s) | (d >> (28 - s))) & 0x0FFF_FFFF;
        keys[i] = permute((c << 28) | d, 56, &PC2);
    }
    keys
}

/// The cipher function `f(R, K)` with an optional `crypt(3)` salt
/// perturbation: salt bit `i` (0..12) swaps E-output bits `i` and `i+24`
/// (counted LSB-first over the 48-bit expansion).
pub fn f_function(r: u32, subkey: u64, salt: u32) -> u32 {
    let mut e = permute(u64::from(r), 32, &E);
    // Salt perturbation (Morris & Thompson): makes crypt ≠ plain DES so
    // hardware DES chips cannot be used for password search.
    for i in 0..12 {
        if salt >> i & 1 == 1 {
            let b1 = (e >> i) & 1;
            let b2 = (e >> (i + 24)) & 1;
            if b1 != b2 {
                e ^= (1 << i) | (1 << (i + 24));
            }
        }
    }
    let x = e ^ subkey;
    let mut sout = 0u64;
    for i in 0..8 {
        let six = (x >> (42 - 6 * i)) & 0x3F;
        sout |= sbox(i, six) << (28 - 4 * i);
    }
    permute(sout, 32, &P) as u32
}

/// Encrypts one 64-bit block under `key` (single DES), with a `crypt(3)`
/// salt (0 for plain DES).
pub fn encrypt_block_salted(key: u64, block: u64, salt: u32) -> u64 {
    let keys = key_schedule(key);
    let ip = permute(block, 64, &IP);
    let mut l = (ip >> 32) as u32;
    let mut r = ip as u32;
    for k in keys {
        let next_r = l ^ f_function(r, k, salt);
        l = r;
        r = next_r;
    }
    let preoutput = (u64::from(r) << 32) | u64::from(l);
    permute(preoutput, 64, &FP)
}

/// Plain single-DES block encryption.
pub fn encrypt_block(key: u64, block: u64) -> u64 {
    encrypt_block_salted(key, block, 0)
}

// ---------------------------------------------------------------------
// SPE path: the structure the 16-bit IR lowering mirrors.
// ---------------------------------------------------------------------

/// The eight E-expansion 6-bit groups of `r` (group 0 first, each
/// MSB-first) — E is eight overlapping windows of R, wrapping at both
/// ends.
pub fn e_groups(r: u32) -> [u8; 8] {
    let mut g = [0u8; 8];
    for (i, slot) in g.iter_mut().enumerate() {
        let mut v = 0u8;
        for k in 0..6usize {
            // DES position, 1-based MSB-first, wrapping 0 -> 32, 33 -> 1.
            let p = (4 * i + k + 31) % 32 + 1;
            let bit = (r >> (32 - p)) & 1;
            v |= (bit as u8) << (5 - k);
        }
        *slot = v;
    }
    g
}

/// The per-round 6-bit subkey chunks (chunk 0 = E group 0's key bits).
pub fn subkey_chunks(subkey: u64) -> [u8; 8] {
    let mut c = [0u8; 8];
    for (i, slot) in c.iter_mut().enumerate() {
        *slot = ((subkey >> (42 - 6 * i)) & 0x3F) as u8;
    }
    c
}

/// The SPE tables: `spe[i][idx]` is the P-permuted contribution of S-box
/// `i` on raw input `idx` — S and P folded into one lookup, as real
/// `crypt` implementations (and our IR lowering) do.
pub fn spe_tables() -> [[u32; 64]; 8] {
    let mut spe = [[0u32; 64]; 8];
    for (i, row) in spe.iter_mut().enumerate() {
        for idx in 0..64u64 {
            let placed = sbox(i, idx) << (28 - 4 * i);
            row[idx as usize] = permute(placed, 32, &P) as u32;
        }
    }
    spe
}

/// One Feistel round via the SPE path (no salt).
pub fn round_spe(l: u32, r: u32, chunks: [u8; 8], spe: &[[u32; 64]; 8]) -> (u32, u32) {
    let groups = e_groups(r);
    let mut f = 0u32;
    for i in 0..8 {
        f |= spe[i][usize::from(groups[i] ^ chunks[i])];
    }
    (r, l ^ f)
}

/// Sixteen SPE rounds plus the final swap: the exact computation the IR
/// lowering of [`crate::lower`] performs (IP/FP excluded on both sides).
pub fn rounds16_spe(mut l: u32, mut r: u32, subkeys: &[u64; 16]) -> (u32, u32) {
    let spe = spe_tables();
    for &k in subkeys {
        let (nl, nr) = round_spe(l, r, subkey_chunks(k), &spe);
        l = nl;
        r = nr;
    }
    (r, l) // final swap
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked example (widely reproduced from FIPS 46
    /// teaching material).
    #[test]
    fn classic_textbook_vector() {
        let ct = encrypt_block(0x1334_5779_9BBC_DFF1, 0x0123_4567_89AB_CDEF);
        assert_eq!(ct, 0x85E8_1354_0F0A_B405);
    }

    #[test]
    fn nbs_zero_vector() {
        // All-zero key and block: a standard validation value.
        assert_eq!(encrypt_block(0, 0), 0x8CA6_4DE9_C1B1_23A7);
    }

    #[test]
    fn all_ones_vector() {
        assert_eq!(encrypt_block(u64::MAX, u64::MAX), 0x7359_B216_3E4E_DC58);
    }

    #[test]
    fn key_schedule_textbook_first_subkey() {
        // K1 of key 133457799BBCDFF1 = 000110 110000 001011 101111
        // 111111 000111 000001 110010 (another fixture from the same
        // worked example).
        let keys = key_schedule(0x1334_5779_9BBC_DFF1);
        assert_eq!(
            keys[0],
            0b000110_110000_001011_101111_111111_000111_000001_110010
        );
    }

    #[test]
    fn e_groups_match_table_expansion() {
        for r in [0u32, 1, 0x8000_0001, 0xDEAD_BEEF, 0xFFFF_FFFF, 0x0F0F_1234] {
            let e = permute(u64::from(r), 32, &E);
            let groups = e_groups(r);
            for (i, &group) in groups.iter().enumerate() {
                let expect = ((e >> (42 - 6 * i)) & 0x3F) as u8;
                assert_eq!(group, expect, "r={r:08x} group {i}");
            }
        }
    }

    #[test]
    fn spe_rounds_match_reference() {
        let key = 0x1334_5779_9BBC_DFF1;
        let keys = key_schedule(key);
        // Reference: run the f-function rounds directly (no IP/FP).
        let (mut l, mut r) = (0x0123_4567u32, 0x89AB_CDEFu32);
        for k in keys {
            let nr = l ^ f_function(r, k, 0);
            l = r;
            r = nr;
        }
        let reference = (r, l);
        let spe = rounds16_spe(0x0123_4567, 0x89AB_CDEF, &keys);
        assert_eq!(spe, reference);
    }

    #[test]
    fn salt_changes_ciphertext() {
        let key = 0x0011_2233_4455_6677;
        let a = encrypt_block_salted(key, 0, 0);
        let b = encrypt_block_salted(key, 0, 0x5A5);
        assert_ne!(a, b, "salt perturbation must alter the cipher");
    }

    #[test]
    fn decrypt_roundtrip_via_reverse_schedule() {
        // DES decryption = same rounds with reversed subkeys; verify the
        // Feistel structure by undoing an encryption manually.
        let key = 0x0123_4567_89AB_CDEF;
        let pt = 0x1122_3344_5566_7788;
        let ct = encrypt_block(key, pt);
        let keys = key_schedule(key);
        let ip = permute(ct, 64, &IP);
        let mut l = (ip >> 32) as u32;
        let mut r = ip as u32;
        for k in keys.iter().rev() {
            let next_r = l ^ f_function(r, *k, 0);
            l = r;
            r = next_r;
        }
        let preoutput = (u64::from(r) << 32) | u64::from(l);
        assert_eq!(permute(preoutput, 64, &FP), pt);
    }
}
