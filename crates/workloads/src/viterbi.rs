//! Viterbi/turbo-style add-compare-select (ACS) — the decoder kernel.
//!
//! Shahabuddin et al.'s turbo-decoder TTA (arXiv:1501.04192) is built
//! around the add-compare-select recursion: every trellis step adds
//! branch metrics to the surviving path metrics, compares the two
//! candidates reaching each state, and keeps the smaller one plus a
//! decision bit. The FU pressure is the opposite of the FFT butterfly:
//! no multiplier at all, but a long ADD/CMP/mask chain per state —
//! a comparator-starved architecture chokes on it.
//!
//! This module expresses one full trellis step over `states` states as
//! a straight-line [`Dfg`] trace using branch-free select (compare +
//! all-ones mask + XOR swap), the form a predicated compiler emits.
//! [`acs_step_reference`] is the golden model with identical wrapping
//! semantics.

use tta_movec::ir::{Dfg, Op, ValueId};

/// One add-compare-select trellis step over `states` states.
///
/// Memory layout: path metric of state `s` at address `s`; the two
/// branch metrics feeding state `s` at addresses `states + 2s` and
/// `states + 2s + 1`. State `s` is reached from predecessor states
/// `(2s) mod states` and `(2s + 1) mod states` — the butterfly wiring
/// of a rate-1/2 convolutional trellis.
///
/// Outputs, in order: the `states` surviving metrics, then one word
/// packing the decision bits (bit `s` = 1 when the second path won).
///
/// # Panics
///
/// Panics unless `states` is a power of two in `2..=16` (the decision
/// word must fit the 16-bit trace).
pub fn acs_step_dfg(states: usize) -> Dfg {
    assert!(
        (2..=16).contains(&states) && states.is_power_of_two(),
        "state count must be a power of two in 2..=16"
    );
    let mut dfg = Dfg::new(16);
    let zero = dfg.constant(0);
    let mut decisions: Option<ValueId> = None;
    for s in 0..states {
        let load = |dfg: &mut Dfg, addr: usize| {
            let a = dfg.constant(addr as u64);
            dfg.op(Op::Load, &[a])
        };
        let pm0 = load(&mut dfg, (2 * s) % states);
        let pm1 = load(&mut dfg, (2 * s + 1) % states);
        let bm0 = load(&mut dfg, states + 2 * s);
        let bm1 = load(&mut dfg, states + 2 * s + 1);
        // Add.
        let m0 = dfg.op(Op::Add, &[pm0, bm0]);
        let m1 = dfg.op(Op::Add, &[pm1, bm1]);
        // Compare: t = 1 when the second candidate is strictly smaller.
        let t = dfg.op(Op::Ltu, &[m1, m0]);
        // Select, branch-free: mask = 0 - t (all ones when t), then
        // min = m0 ^ ((m0 ^ m1) & mask).
        let mask = dfg.op(Op::Sub, &[zero, t]);
        let x = dfg.op(Op::Xor, &[m0, m1]);
        let pick = dfg.op(Op::And, &[x, mask]);
        let min = dfg.op(Op::Xor, &[m0, pick]);
        dfg.mark_output(min);
        // Pack the decision bit into bit s of the survivor word.
        let shift = dfg.constant(s as u64);
        let bit = dfg.op(Op::Shl, &[t, shift]);
        decisions = Some(match decisions {
            None => bit,
            Some(acc) => dfg.op(Op::Or, &[acc, bit]),
        });
    }
    dfg.mark_output(decisions.expect("at least two states"));
    dfg
}

/// Golden model for [`acs_step_dfg`]: the same trellis step with the
/// same wrapping 16-bit arithmetic. `mem` holds path metrics followed
/// by branch metrics, exactly as the trace's memory image. Returns the
/// surviving metrics followed by the packed decision word.
///
/// # Panics
///
/// Panics when `mem` is shorter than `3 × states`.
pub fn acs_step_reference(states: usize, mem: &[u64]) -> Vec<u64> {
    assert!(mem.len() >= 3 * states, "need metrics for every state");
    let m = |v: u64| v & 0xFFFF;
    let mut out = Vec::with_capacity(states + 1);
    let mut decisions = 0u64;
    for s in 0..states {
        let m0 = m(m(mem[(2 * s) % states]).wrapping_add(mem[states + 2 * s]));
        let m1 = m(m(mem[(2 * s + 1) % states]).wrapping_add(mem[states + 2 * s + 1]));
        let t = u64::from(m1 < m0);
        out.push(if t == 1 { m1 } else { m0 });
        decisions |= t << s;
    }
    out.push(m(decisions));
    out
}

/// A deterministic `3n`-word metric frame (path metrics, then branch
/// metrics) for the suite's memory image.
pub fn acs_metric_frame(states: usize) -> Vec<u64> {
    (0..3 * states)
        .map(|k| ((k as u64) * 41 + 5) % 997)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_matches_reference() {
        for states in [2usize, 4, 8, 16] {
            let mem = acs_metric_frame(states);
            let dfg = acs_step_dfg(states);
            let mut m = mem.clone();
            let out = dfg.eval(&[], &mut m);
            assert_eq!(out, acs_step_reference(states, &mem), "states={states}");
        }
    }

    #[test]
    fn survivor_is_the_smaller_candidate() {
        // states = 2: state 0 reads pm[0]+bm[0] vs pm[1]+bm[1].
        let mem = [10u64, 50, 1, 2, 3, 4]; // pm = [10, 50], bm = [1,2,3,4]
        let out = acs_step_reference(2, &mem);
        assert_eq!(out[0], 11); // min(10+1, 50+2)
        assert_eq!(out[1], 13); // state 1: min(10+3, 50+4) = 13
        assert_eq!(out[2], 0b00); // first path won both
    }

    #[test]
    fn decision_bits_flag_second_path_wins() {
        let mem = [50u64, 1, 9, 0, 9, 0];
        let out = acs_step_reference(2, &mem);
        assert_eq!(out[0], 1); // 50+9=59 vs 1+0=1
        assert_eq!(out[2] & 1, 1, "second path won state 0");
    }

    #[test]
    fn step_uses_no_multiplier() {
        use tta_movec::ir::FuClass;
        let dfg = acs_step_dfg(8);
        assert!(dfg
            .nodes()
            .iter()
            .all(|node| node.op.fu_class() != Some(FuClass::Mul)));
        let cmps = dfg
            .nodes()
            .iter()
            .filter(|node| node.op.fu_class() == Some(FuClass::Cmp))
            .count();
        assert_eq!(cmps, 8, "one compare per state");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_state_counts() {
        let _ = acs_step_dfg(6);
    }
}
