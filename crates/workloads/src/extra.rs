//! Additional workloads beyond the paper's Crypt application.
//!
//! These exercise different corners of the design space — a MUL-hungry
//! FIR filter, a pure-ALU bit-count kernel and a load-heavy checksum —
//! so examples and ablation benches can show how the selected
//! architecture shifts with the workload.

use tta_movec::ir::{Dfg, Op, ValueId};

/// FIR filter: `y[n] = Σ c[k] · x[n−k]` over one output sample window.
///
/// Taps are constants; samples are loaded from memory starting at
/// address 0. Multiplier-bound: architectures without a MUL unit cannot
/// run it.
pub fn fir_dfg(taps: &[u64]) -> Dfg {
    let mut dfg = Dfg::new(16);
    let mut acc: Option<ValueId> = None;
    for (k, &c) in taps.iter().enumerate() {
        let addr = dfg.constant(k as u64);
        let x = dfg.op(Op::Load, &[addr]);
        let coef = dfg.constant(c);
        let prod = dfg.op(Op::Mul, &[x, coef]);
        acc = Some(match acc {
            None => prod,
            Some(a) => dfg.op(Op::Add, &[a, prod]),
        });
    }
    dfg.mark_output(acc.expect("at least one tap"));
    dfg
}

/// Reference FIR for the golden check.
pub fn fir_reference(taps: &[u64], samples: &[u64]) -> u64 {
    taps.iter()
        .enumerate()
        .map(|(k, &c)| c.wrapping_mul(samples[k]))
        .fold(0u64, |a, v| a.wrapping_add(v))
        & 0xFFFF
}

/// Population count of one word via the shift-and-mask ladder
/// (pure ALU work, long dependence chain).
pub fn bitcount_dfg() -> Dfg {
    let mut dfg = Dfg::new(16);
    let x = dfg.input();
    // v = v - ((v >> 1) & 0x5555)
    let c1 = dfg.constant(1);
    let m5 = dfg.constant(0x5555);
    let t = dfg.op(Op::Shr, &[x, c1]);
    let t = dfg.op(Op::And, &[t, m5]);
    let v = dfg.op(Op::Sub, &[x, t]);
    // v = (v & 0x3333) + ((v >> 2) & 0x3333)
    let c2 = dfg.constant(2);
    let m3 = dfg.constant(0x3333);
    let a = dfg.op(Op::And, &[v, m3]);
    let b = dfg.op(Op::Shr, &[v, c2]);
    let b = dfg.op(Op::And, &[b, m3]);
    let v = dfg.op(Op::Add, &[a, b]);
    // v = (v + (v >> 4)) & 0x0F0F
    let c4 = dfg.constant(4);
    let mf = dfg.constant(0x0F0F);
    let b = dfg.op(Op::Shr, &[v, c4]);
    let v = dfg.op(Op::Add, &[v, b]);
    let v = dfg.op(Op::And, &[v, mf]);
    // count = (v + (v >> 8)) & 0x1F
    let c8 = dfg.constant(8);
    let m1f = dfg.constant(0x1F);
    let b = dfg.op(Op::Shr, &[v, c8]);
    let v = dfg.op(Op::Add, &[v, b]);
    let v = dfg.op(Op::And, &[v, m1f]);
    dfg.mark_output(v);
    dfg
}

/// Fletcher-style checksum over `n` memory words (load + add heavy).
pub fn checksum_dfg(n: usize) -> Dfg {
    let mut dfg = Dfg::new(16);
    let mut s1: Option<ValueId> = None;
    let mut s2: Option<ValueId> = None;
    for k in 0..n {
        let addr = dfg.constant(k as u64);
        let x = dfg.op(Op::Load, &[addr]);
        s1 = Some(match s1 {
            None => x,
            Some(a) => dfg.op(Op::Add, &[a, x]),
        });
        s2 = Some(match (s2, s1) {
            (None, Some(cur)) => cur,
            (Some(b), Some(cur)) => dfg.op(Op::Add, &[b, cur]),
            _ => unreachable!(),
        });
    }
    let s1 = s1.expect("n >= 1");
    let s2 = s2.expect("n >= 1");
    let c8 = dfg.constant(8);
    let hi = dfg.op(Op::Shl, &[s2, c8]);
    let out = dfg.op(Op::Or, &[hi, s1]);
    dfg.mark_output(out);
    dfg
}

/// Reference checksum for the golden check.
pub fn checksum_reference(data: &[u64]) -> u64 {
    let mut s1 = 0u64;
    let mut s2 = 0u64;
    for &x in data {
        s1 = (s1 + (x & 0xFFFF)) & 0xFFFF;
        s2 = (s2 + s1) & 0xFFFF;
    }
    ((s2 << 8) | s1) & 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_matches_reference() {
        let taps = [3u64, 1, 4, 1, 5];
        let samples = vec![10u64, 20, 30, 40, 50, 0, 0, 0];
        let dfg = fir_dfg(&taps);
        let mut mem = samples.clone();
        let out = dfg.eval(&[], &mut mem);
        assert_eq!(out[0], fir_reference(&taps, &samples));
    }

    #[test]
    fn bitcount_matches_popcount() {
        let dfg = bitcount_dfg();
        for x in [0u64, 1, 0xFFFF, 0xA5A5, 0x1234, 0x8000] {
            let out = dfg.eval(&[x], &mut [0]);
            assert_eq!(
                out[0],
                u64::from((x as u16).count_ones() as u16),
                "x={x:04x}"
            );
        }
    }

    #[test]
    fn checksum_matches_reference() {
        let data = vec![0x1111u64, 0x2222, 0x0042, 0x9999];
        let dfg = checksum_dfg(data.len());
        let mut mem = data.clone();
        let out = dfg.eval(&[], &mut mem);
        assert_eq!(out[0], checksum_reference(&data));
    }
}

/// 8-point 1-D integer DCT as a coefficient matrix–vector product:
/// `y[k] = Σ x[n] · c[k][n]` with Q7 fixed-point coefficients — the
/// multiplier-dominated kernel of image/video workloads MOVE targets.
pub fn dct8_dfg() -> Dfg {
    let coeffs = dct8_coefficients();
    let mut dfg = Dfg::new(16);
    let xs: Vec<ValueId> = (0..8)
        .map(|n| {
            let addr = dfg.constant(n as u64);
            dfg.op(Op::Load, &[addr])
        })
        .collect();
    for row in &coeffs {
        let mut acc: Option<ValueId> = None;
        for (n, &c) in row.iter().enumerate() {
            let cc = dfg.constant(u64::from(c));
            let p = dfg.op(Op::Mul, &[xs[n], cc]);
            acc = Some(match acc {
                None => p,
                Some(a) => dfg.op(Op::Add, &[a, p]),
            });
        }
        dfg.mark_output(acc.expect("8 taps"));
    }
    dfg
}

/// Q7 cosine coefficients of the 8-point DCT-II, wrapped to 16 bits
/// (negative values two's-complement encoded, as a fixed-point compiler
/// would emit them).
pub fn dct8_coefficients() -> [[u16; 8]; 8] {
    let mut c = [[0u16; 8]; 8];
    for (k, row) in c.iter_mut().enumerate() {
        for (n, cell) in row.iter_mut().enumerate() {
            let angle = std::f64::consts::PI / 8.0 * (n as f64 + 0.5) * k as f64;
            let q7 = (angle.cos() * 128.0).round() as i32;
            *cell = (q7 as i16) as u16;
        }
    }
    c
}

/// Reference DCT for the golden check (same wrapping arithmetic).
pub fn dct8_reference(x: &[u64; 8]) -> [u64; 8] {
    let coeffs = dct8_coefficients();
    let mut y = [0u64; 8];
    for (k, row) in coeffs.iter().enumerate() {
        let mut acc = 0u64;
        for (n, &c) in row.iter().enumerate() {
            acc = acc.wrapping_add(x[n].wrapping_mul(u64::from(c)));
        }
        y[k] = acc & 0xFFFF;
    }
    y
}

/// `iterations` unrolled steps of a branch-free Euclid GCD: the larger
/// value is replaced by the difference each step, expressed with
/// comparator + mask arithmetic (the trace a predicated compiler emits).
pub fn gcd_dfg(iterations: usize) -> Dfg {
    let mut dfg = Dfg::new(16);
    let mut a = dfg.input();
    let mut b = dfg.input();
    let zero = dfg.constant(0);
    for _ in 0..iterations {
        // swap so that a >= b:  t = a<b;  m = 0 - t (all-ones if t)
        let t = dfg.op(Op::Ltu, &[a, b]);
        let m = dfg.op(Op::Sub, &[zero, t]);
        let x = dfg.op(Op::Xor, &[a, b]);
        let sw = dfg.op(Op::And, &[x, m]);
        let hi = dfg.op(Op::Xor, &[a, sw]);
        let lo = dfg.op(Op::Xor, &[b, sw]);
        // b==0 guard: keep (hi, lo) when lo==0 else (lo, hi-lo).
        let z = dfg.op(Op::Eq, &[lo, zero]);
        let zm = dfg.op(Op::Sub, &[zero, z]);
        let diff = dfg.op(Op::Sub, &[hi, lo]);
        let keep = dfg.op(Op::And, &[hi, zm]);
        let nzm = dfg.op(Op::Not, &[zm]);
        let step_a = dfg.op(Op::And, &[lo, nzm]);
        let na = dfg.op(Op::Or, &[keep, step_a]);
        let step_b = dfg.op(Op::And, &[diff, nzm]);
        a = na;
        b = step_b;
    }
    dfg.mark_output(a);
    dfg.mark_output(b);
    dfg
}

/// Reference for the unrolled GCD trace.
pub fn gcd_reference(mut a: u64, mut b: u64, iterations: usize) -> (u64, u64) {
    for _ in 0..iterations {
        let (hi, lo) = if a < b { (b, a) } else { (a, b) };
        if lo == 0 {
            a = hi;
            b = 0;
        } else {
            a = lo;
            b = hi - lo;
        }
    }
    (a & 0xFFFF, b & 0xFFFF)
}

#[cfg(test)]
mod dct_gcd_tests {
    use super::*;

    #[test]
    fn dct8_matches_reference() {
        let x = [10u64, 20, 30, 40, 50, 60, 70, 80];
        let dfg = dct8_dfg();
        let mut mem = x.to_vec();
        let out = dfg.eval(&[], &mut mem);
        let want = dct8_reference(&x);
        assert_eq!(out, want.to_vec());
    }

    #[test]
    fn dct_dc_row_sums_inputs() {
        // Row 0 coefficients are all cos(0)*128 = 128.
        let x = [1u64, 1, 1, 1, 1, 1, 1, 1];
        let out = dct8_reference(&x);
        assert_eq!(out[0], 8 * 128);
    }

    #[test]
    fn gcd_trace_converges() {
        // 24 unrolled steps settle gcd(48, 36) = 12.
        let dfg = gcd_dfg(24);
        let out = dfg.eval(&[48, 36], &mut [0]);
        assert_eq!(out[0], 12);
        assert_eq!(out[1], 0);
        assert_eq!(gcd_reference(48, 36, 24), (12, 0));
    }

    #[test]
    fn gcd_trace_matches_reference_midway() {
        for (a, b, k) in [(270u64, 192u64, 3usize), (17, 5, 5), (1000, 35, 7)] {
            let dfg = gcd_dfg(k);
            let out = dfg.eval(&[a, b], &mut [0]);
            let (ra, rb) = gcd_reference(a, b, k);
            assert_eq!((out[0], out[1]), (ra, rb), "gcd({a},{b}) after {k}");
        }
    }
}
