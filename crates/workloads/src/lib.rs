//! Workloads for the TTA design/test space exploration.
//!
//! The paper validates its method on the UNIX "Crypt" application (DES
//! password hashing, ref. \[7\]). This crate provides:
//!
//! * a complete, test-vector-validated [`des`] implementation and the
//!   [`crypt`] password hash built on it (the *reference semantics*);
//! * the hand lowering of the crypt kernel onto the 16-bit MOVE IR
//!   ([`lower`]), checked value-for-value against the reference;
//! * additional kernels exercising other corners of the design space:
//!   the radix-2 FFT butterfly stage ([`fft`], MUL-dominated), the
//!   Viterbi/turbo add-compare-select step ([`viterbi`], CMP-dominated)
//!   and the [`extra`] grab bag (FIR, DCT, bitcount, checksum, GCD) —
//!   each with a golden-model reference;
//! * the registry of named workloads and *named, weighted suites*
//!   ([`suite::SuiteRegistry`]: `paper`, `dsp`, `control`, `all`, plus
//!   your own) the exploration driver, CLI and docs all derive their
//!   workload lists from. `docs/WORKLOADS.md` is the authoring guide.
//!
//! # Quickstart
//!
//! ```
//! use tta_workloads::crypt::crypt;
//! use tta_workloads::suite;
//!
//! // The application itself:
//! assert_eq!(crypt("hunter2", "ab").len(), 13);
//!
//! // The schedulable kernel:
//! let w = suite::crypt(2);
//! let mut mem = w.mem.clone();
//! let out = w.dfg.eval(&w.inputs, &mut mem);
//! assert_eq!(out.len(), 4); // L and R halves as 16-bit words
//! ```

#![warn(missing_docs)]

pub mod crypt;
pub mod des;
pub mod extra;
pub mod fft;
pub mod lower;
pub mod suite;
pub mod viterbi;

pub use suite::{Suite, SuiteParams, SuiteRegistry, WeightedWorkload, Workload};
