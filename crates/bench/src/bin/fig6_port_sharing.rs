//! Regenerates Figure 6: two identical FUs whose test cost differs only
//! through their port-to-bus connections. Pass `--fast` for 8-bit.

use tta_bench::{fig6, Experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let mut exp = Experiments::new(scale);
    println!("{}", fig6(&mut exp));
}
