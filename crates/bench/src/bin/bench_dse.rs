//! Distils the scratch-vs-delta sweep comparison into the flat JSON
//! committed as `BENCH_dse.json` (the committed perf trajectory; see
//! `docs/PERF.md` for how to read it).
//!
//! A plain binary rather than a criterion bench so CI can run it and
//! soft-check wall-clock against the committed numbers:
//!
//! ```text
//! cargo run --release -p tta-bench --bin bench_dse -- --space fast
//! cargo run --release -p tta-bench --bin bench_dse -- --date 2026-08-08 > BENCH_dse.json
//! ```
//!
//! Both engines produce bit-identical results (asserted in
//! `crates/core/tests/delta.rs`); only the wall-clock differs. Every
//! sweep here is cold-cache by construction (no `SweepCache` attached)
//! but shares one warmed `ComponentDb`, as a real campaign would.

use std::time::Instant;

use tta_arch::template::TemplateSpace;
use tta_core::explore::{EvalMode, Exploration};
use tta_core::ComponentDb;
use tta_workloads::suite;

struct SweepRow {
    space: &'static str,
    points: usize,
    front: usize,
    scratch_s: f64,
    delta_s: f64,
}

/// Best-of-`iters` wall-clock for one cold sweep in `mode`.
fn time_sweep(
    space: &TemplateSpace,
    db: &ComponentDb,
    mode: EvalMode,
    iters: usize,
) -> (f64, usize) {
    let workload = suite::crypt(1);
    let mut best = f64::INFINITY;
    let mut front = 0;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let result = Exploration::over(space.clone())
            .workload(&workload)
            .with_db(db)
            .eval_mode(mode)
            .run();
        best = best.min(start.elapsed().as_secs_f64());
        front = result.pareto.len();
    }
    (best, front)
}

fn measure(
    space: &'static str,
    template: TemplateSpace,
    db: &ComponentDb,
    iters: usize,
) -> SweepRow {
    eprintln!("sweeping {space} space ({} points)...", template.len());
    // One untimed pass so the lazily-annotated database is warm before
    // either engine is measured (matters for --iters 1).
    time_sweep(&template, db, EvalMode::Scratch, 1);
    let (scratch_s, front) = time_sweep(&template, db, EvalMode::Scratch, iters);
    let (delta_s, delta_front) = time_sweep(&template, db, EvalMode::Delta, iters);
    assert_eq!(front, delta_front, "the engines must agree on the front");
    SweepRow {
        space,
        points: template.len(),
        front,
        scratch_s,
        delta_s,
    }
}

/// The headline trajectory number: one cold paper-scale fig2-style
/// sweep, annotation database and all, per engine. This is what the
/// `< 1 s` CI soft-check guards.
fn time_cold(mode: EvalMode, iters: usize) -> f64 {
    let workload = suite::crypt(1);
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let db = ComponentDb::new();
        Exploration::over(TemplateSpace::paper_default())
            .workload(&workload)
            .with_db(&db)
            .eval_mode(mode)
            .run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut date = String::from("unknown");
    let mut space_filter: Option<String> = None;
    let mut iters = 3usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--date" => date = it.next().expect("--date needs a value").clone(),
            "--space" => space_filter = Some(it.next().expect("--space needs a value").clone()),
            "--iters" => {
                iters = it
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters needs a number")
            }
            other => {
                eprintln!("unknown flag {other:?} (expected --date, --space or --iters)");
                std::process::exit(2);
            }
        }
    }

    // One shared database covers both widths (records are keyed by
    // component width); warm it with the cheap space first so neither
    // timed sweep pays for annotation.
    let db = ComponentDb::new();
    let keep = |name: &str| space_filter.as_deref().is_none_or(|f| f == name);
    let mut rows = Vec::new();
    if keep("fast") {
        rows.push(measure("fast", TemplateSpace::fast_default(), &db, iters));
    }
    if keep("paper") {
        rows.push(measure("paper", TemplateSpace::paper_default(), &db, iters));
    }
    if rows.is_empty() {
        eprintln!("--space matched nothing (expected fast or paper)");
        std::process::exit(2);
    }

    println!("{{");
    println!("  \"bench\": \"dse\",");
    println!("  \"date\": \"{date}\",");
    println!(
        "  \"command\": \"cargo run --release -p tta-bench --bin bench_dse -- --date {date}\","
    );
    println!(
        "  \"note\": \"best-of-{iters} wall-clock per engine, release profile, single machine \
         run, cold sweep cache, shared warmed ComponentDb. scratch re-derives every per-component \
         cost from the annotation database at each point; delta memoizes them in the \
         fingerprint-guarded arena (bit-identical results, asserted in tests and CI). At the \
         paper's space sizes the ratio is ~1: per-point cost is scheduler-dominated and the \
         ComponentDb already caches annotations behind its own lock, so swapping that lock for \
         the arena's is in the noise. The historical speedup lives upstream (annotation-side \
         ATPG batching took the cold paper sweep from tens of seconds to under one, the `cold` \
         row below); delta earns its keep as the differential-tested memo layer with O(1) \
         guarded invalidation, and these rows exist to catch either engine regressing.\","
    );
    println!("  \"sweeps\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{ \"space\": \"{}\", \"points\": {}, \"front\": {}, \"scratch_s\": {:.4}, \
             \"delta_s\": {:.4}, \"delta_over_scratch\": {:.3} }}{comma}",
            r.space,
            r.points,
            r.front,
            r.scratch_s,
            r.delta_s,
            r.delta_s / r.scratch_s
        );
    }
    println!("  ],");
    if keep("paper") {
        // Cold end-to-end: the annotation database (real ATPG + march
        // runs) is rebuilt inside the timed region, as `ttadse fig2`
        // pays it. This is the committed trajectory headline.
        eprintln!("cold paper sweeps (database rebuilt per run)...");
        let cold_scratch = time_cold(EvalMode::Scratch, iters);
        let cold_delta = time_cold(EvalMode::Delta, iters);
        println!("  \"cold\": {{");
        println!(
            "    \"space\": \"paper\", \"includes_annotation\": true, \
             \"scratch_s\": {cold_scratch:.3}, \"delta_s\": {cold_delta:.3}"
        );
        println!("  }}");
    } else {
        println!("  \"cold\": null");
    }
    println!("}}");
}
