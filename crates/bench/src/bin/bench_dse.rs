//! Distils the scratch-vs-delta sweep comparison into the flat JSON
//! committed as `BENCH_dse.json` (the committed perf trajectory; see
//! `docs/PERF.md` for how to read it).
//!
//! A plain binary rather than a criterion bench so CI can run it and
//! soft-check wall-clock against the committed numbers:
//!
//! ```text
//! cargo run --release -p tta-bench --bin bench_dse -- --space fast
//! cargo run --release -p tta-bench --bin bench_dse -- --date 2026-08-08 > BENCH_dse.json
//! ```
//!
//! Both engines produce bit-identical results (asserted in
//! `crates/core/tests/delta.rs`); only the wall-clock differs. Every
//! sweep here is cold-cache by construction (no `SweepCache` attached)
//! but shares one warmed `ComponentDb`, as a real campaign would.

use std::hint::black_box;
use std::time::Instant;

use tta_arch::template::TemplateSpace;
use tta_core::explore::{EvalMode, Exploration};
use tta_core::models::{
    AnnotatedAreaModel, AnnotatedTimingModel, AreaModel, Eq14TestCostModel, InterconnectModel,
    TestCostModel, TimingModel,
};
use tta_core::{CarriedFolds, ComponentDb, DeltaEvaluator};
use tta_netlist::{elaborate, timing, IncrementalElaborator};
use tta_workloads::suite;

struct SweepRow {
    space: &'static str,
    points: usize,
    front: usize,
    scratch_s: f64,
    delta_s: f64,
}

struct FoldRow {
    space: &'static str,
    points: usize,
    walked: usize,
    scratch_s: f64,
    delta_s: f64,
    incremental_s: f64,
}

struct FidelityRow {
    space: &'static str,
    points: usize,
    walked: usize,
    table_s: f64,
    netlist_s: f64,
    incremental_s: f64,
}

/// Times the area+clock axes per point under the two fidelities: the
/// back-annotation `table` fold, a from-scratch gate-level elaboration
/// (`elaborate` + loaded STA — what `--fidelity netlist` pays on a
/// cold, non-neighbour walk), and the `IncrementalElaborator` along the
/// same Gray-walk order, which rewinds to the first differing segment
/// instead of rebuilding the whole point. An untimed pass first asserts
/// the incremental netlists dump bit-identically to the from-scratch
/// ones.
fn time_fidelity_axis(
    space: &'static str,
    template: TemplateSpace,
    db: &ComponentDb,
    iters: usize,
) -> FidelityRow {
    eprintln!(
        "fidelity axis over {space} space ({} points)...",
        template.len()
    );
    let archs: Vec<_> = template
        .neighbour_order()
        .map(|i| template.point(i))
        .collect();
    let ic = InterconnectModel::paper();
    let area = AnnotatedAreaModel::new(ic);
    let clock = AnnotatedTimingModel::new(ic);

    // Untimed bit-identity pass (also warms the annotation database on
    // the table side so neither engine pays for it in the timed loop).
    let mut inc = IncrementalElaborator::new();
    for arch in &archs {
        let walked = inc.advance(arch).expect("incremental elaboration");
        let fresh = elaborate(arch).expect("scratch elaboration");
        assert_eq!(walked.dump(), fresh.dump(), "point {}", arch.name);
        black_box(area.area(arch, db) + clock.clock_period(arch, db));
    }

    let best_of = |f: &mut dyn FnMut() -> f64| {
        let mut best = f64::INFINITY;
        for _ in 0..iters.max(1) {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let table_s = best_of(&mut || {
        archs
            .iter()
            .map(|a| area.area(a, db) + clock.clock_period(a, db))
            .sum()
    });
    let netlist_s = best_of(&mut || {
        archs
            .iter()
            .map(|a| {
                let nl = elaborate(a).expect("scratch elaboration");
                nl.area() + timing::min_clock_period(&nl)
            })
            .sum()
    });
    let incremental_s = best_of(&mut || {
        let mut inc = IncrementalElaborator::new();
        archs
            .iter()
            .map(|a| {
                let nl = inc.advance(a).expect("incremental elaboration");
                nl.area() + timing::min_clock_period(&nl)
            })
            .sum()
    });
    FidelityRow {
        space,
        points: template.len(),
        walked: archs.len(),
        table_s,
        netlist_s,
        incremental_s,
    }
}

/// Times the three-axis cost fold alone — area, clock period, eq. (14)
/// test total — over a budgeted Gray-walk prefix, with scheduling and
/// architecture construction excluded equally for every engine:
/// `scratch` re-derives each component record through the annotation
/// database at every point, `delta` answers record lookups from the
/// memo arena but still refolds every point, and `incremental` carries
/// the previous point's folds and exchanges only the one changed
/// component ([`CarriedFolds::advance`]). This isolates the per-point
/// evaluation cost the carried-fold engine optimises; the full-sweep
/// rows above stay scheduler-dominated by design.
fn time_fold_axis(
    space: &'static str,
    template: TemplateSpace,
    walked: usize,
    db: &ComponentDb,
    iters: usize,
) -> FoldRow {
    let walked = walked.min(template.len());
    eprintln!(
        "fold axis over {space} space ({walked} of {} points)...",
        template.len()
    );
    let archs: Vec<_> = template
        .neighbour_order()
        .take(walked)
        .map(|i| template.point(i))
        .collect();
    let ic = InterconnectModel::paper();
    let area = AnnotatedAreaModel::new(ic);
    let timing = AnnotatedTimingModel::new(ic);
    let eval = DeltaEvaluator::new(ic);

    // Untimed verification pass (it also warms the memo arena): the
    // three engines must agree on exact bits before clocks compare.
    let mut carry = CarriedFolds::new(ic);
    for (rank, arch) in archs.iter().enumerate() {
        let inc = carry.advance(arch, rank, &eval, db);
        assert_eq!(inc.area.to_bits(), area.area(arch, db).to_bits());
        assert_eq!(
            inc.clock_period.to_bits(),
            timing.clock_period(arch, db).to_bits()
        );
        assert_eq!(
            inc.test_total.to_bits(),
            Eq14TestCostModel.test_cost(arch, db).total.to_bits()
        );
    }

    let best_of = |f: &mut dyn FnMut() -> f64| {
        let mut best = f64::INFINITY;
        for _ in 0..iters.max(1) {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let scratch_s = best_of(&mut || {
        archs
            .iter()
            .map(|a| {
                area.area(a, db)
                    + timing.clock_period(a, db)
                    + Eq14TestCostModel.test_cost(a, db).total
            })
            .sum()
    });
    let delta_s = best_of(&mut || {
        archs
            .iter()
            .map(|a| eval.area(a, db) + eval.clock_period(a, db) + eval.test_cost(a, db).total)
            .sum()
    });
    let incremental_s = best_of(&mut || {
        let mut carry = CarriedFolds::new(ic);
        archs
            .iter()
            .enumerate()
            .map(|(rank, a)| {
                let c = carry.advance(a, rank, &eval, db);
                c.area + c.clock_period + c.test_total
            })
            .sum()
    });
    FoldRow {
        space,
        points: template.len(),
        walked,
        scratch_s,
        delta_s,
        incremental_s,
    }
}

/// Best-of-`iters` wall-clock for one cold sweep in `mode`.
fn time_sweep(
    space: &TemplateSpace,
    db: &ComponentDb,
    mode: EvalMode,
    iters: usize,
) -> (f64, usize) {
    let workload = suite::crypt(1);
    let mut best = f64::INFINITY;
    let mut front = 0;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let result = Exploration::over(space.clone())
            .workload(&workload)
            .with_db(db)
            .eval_mode(mode)
            .run();
        best = best.min(start.elapsed().as_secs_f64());
        front = result.pareto.len();
    }
    (best, front)
}

fn measure(
    space: &'static str,
    template: TemplateSpace,
    db: &ComponentDb,
    iters: usize,
) -> SweepRow {
    eprintln!("sweeping {space} space ({} points)...", template.len());
    // One untimed pass so the lazily-annotated database is warm before
    // either engine is measured (matters for --iters 1).
    time_sweep(&template, db, EvalMode::Scratch, 1);
    let (scratch_s, front) = time_sweep(&template, db, EvalMode::Scratch, iters);
    let (delta_s, delta_front) = time_sweep(&template, db, EvalMode::Delta, iters);
    assert_eq!(front, delta_front, "the engines must agree on the front");
    SweepRow {
        space,
        points: template.len(),
        front,
        scratch_s,
        delta_s,
    }
}

/// The headline trajectory number: one cold paper-scale fig2-style
/// sweep, annotation database and all, per engine. This is what the
/// `< 1 s` CI soft-check guards.
fn time_cold(mode: EvalMode, iters: usize) -> f64 {
    let workload = suite::crypt(1);
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let db = ComponentDb::new();
        Exploration::over(TemplateSpace::paper_default())
            .workload(&workload)
            .with_db(&db)
            .eval_mode(mode)
            .run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut date = String::from("unknown");
    let mut space_filter: Option<String> = None;
    let mut iters = 3usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--date" => date = it.next().expect("--date needs a value").clone(),
            "--space" => space_filter = Some(it.next().expect("--space needs a value").clone()),
            "--iters" => {
                iters = it
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters needs a number")
            }
            other => {
                eprintln!("unknown flag {other:?} (expected --date, --space or --iters)");
                std::process::exit(2);
            }
        }
    }

    // One shared database covers both widths (records are keyed by
    // component width); warm it with the cheap space first so neither
    // timed sweep pays for annotation.
    let db = ComponentDb::new();
    let keep = |name: &str| space_filter.as_deref().is_none_or(|f| f == name);
    let mut rows = Vec::new();
    if keep("fast") {
        rows.push(measure("fast", TemplateSpace::fast_default(), &db, iters));
    }
    if keep("paper") {
        rows.push(measure("paper", TemplateSpace::paper_default(), &db, iters));
    }
    // Fold-axis rows: per-point cost evaluation alone, scratch vs delta
    // vs true incremental (carried folds). The huge row is the first
    // budgeted sweep of the 2^20-point hierarchical space — walking the
    // whole space is deliberately out of reach; a 4096-point Gray
    // prefix is what a budgeted campaign actually evaluates.
    let mut fold_rows = Vec::new();
    if keep("fast") {
        fold_rows.push(time_fold_axis(
            "fast",
            TemplateSpace::fast_default(),
            usize::MAX,
            &db,
            iters,
        ));
    }
    if keep("paper") {
        fold_rows.push(time_fold_axis(
            "paper",
            TemplateSpace::paper_default(),
            usize::MAX,
            &db,
            iters,
        ));
    }
    if keep("huge") {
        fold_rows.push(time_fold_axis(
            "huge",
            TemplateSpace::huge(),
            4096,
            &db,
            iters,
        ));
    }
    // Fidelity rows: area+clock per point from the annotation tables vs
    // per-point gate-level elaboration (scratch and incremental). Fast
    // space only — the netlist axis is meant for front-sized point
    // counts, not the 2^20 walk.
    let mut fidelity_rows = Vec::new();
    if keep("fast") {
        fidelity_rows.push(time_fidelity_axis(
            "fast",
            TemplateSpace::fast_default(),
            &db,
            iters,
        ));
    }
    if rows.is_empty() && fold_rows.is_empty() && fidelity_rows.is_empty() {
        eprintln!("--space matched nothing (expected fast, paper or huge)");
        std::process::exit(2);
    }

    println!("{{");
    println!("  \"bench\": \"dse\",");
    println!("  \"date\": \"{date}\",");
    println!(
        "  \"command\": \"cargo run --release -p tta-bench --bin bench_dse -- --date {date}\","
    );
    println!(
        "  \"note\": \"best-of-{iters} wall-clock per engine, release profile, single machine \
         run, cold sweep cache, shared warmed ComponentDb. scratch re-derives every per-component \
         cost from the annotation database at each point; delta memoizes them in the \
         fingerprint-guarded arena (bit-identical results, asserted in tests and CI). At the \
         paper's space sizes the ratio is ~1: per-point cost is scheduler-dominated and the \
         ComponentDb already caches annotations behind its own lock, so swapping that lock for \
         the arena's is in the noise. The historical speedup lives upstream (annotation-side \
         ATPG batching took the cold paper sweep from tens of seconds to under one, the `cold` \
         row below); delta earns its keep as the differential-tested memo layer with O(1) \
         guarded invalidation, and these rows exist to catch either engine regressing. The \
         fold_axis rows isolate per-point cost evaluation over a Gray-walk prefix — scratch \
         refolds every component through the database, delta refolds through the memo arena, \
         incremental carries the previous point's folds and exchanges the single changed \
         component (CarriedFolds::advance; bit-identity asserted in an untimed pass) — the \
         huge row is the budgeted 2^20-point hierarchical-space sweep where the carried fold \
         pays off. The fidelity rows time the area+clock axes per point: table folds the \
         back-annotation constants, netlist elaborates every point to gates from scratch and \
         runs the loaded STA (what --fidelity netlist pays on a cold non-neighbour walk), \
         incremental drives the IncrementalElaborator along the Gray walk, rewinding to the \
         first differing segment (bit-identity to scratch asserted in an untimed pass). The \
         table fold being orders of magnitude cheaper is the fidelity trade, not a regression; \
         the CI soft bar watches netlist_over_incremental like the fold rows' 3x bar.\","
    );
    println!("  \"sweeps\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{ \"space\": \"{}\", \"points\": {}, \"front\": {}, \"scratch_s\": {:.4}, \
             \"delta_s\": {:.4}, \"delta_over_scratch\": {:.3} }}{comma}",
            r.space,
            r.points,
            r.front,
            r.scratch_s,
            r.delta_s,
            r.delta_s / r.scratch_s
        );
    }
    println!("  ],");
    println!("  \"fold_axis\": [");
    for (i, r) in fold_rows.iter().enumerate() {
        let comma = if i + 1 < fold_rows.len() { "," } else { "" };
        println!(
            "    {{ \"space\": \"{}\", \"points\": {}, \"walked\": {}, \"scratch_s\": {:.6}, \
             \"delta_s\": {:.6}, \"incremental_s\": {:.6}, \"scratch_over_incremental\": {:.1} }}{comma}",
            r.space,
            r.points,
            r.walked,
            r.scratch_s,
            r.delta_s,
            r.incremental_s,
            r.scratch_s / r.incremental_s
        );
    }
    println!("  ],");
    println!("  \"fidelity\": [");
    for (i, r) in fidelity_rows.iter().enumerate() {
        let comma = if i + 1 < fidelity_rows.len() { "," } else { "" };
        println!(
            "    {{ \"space\": \"{}\", \"points\": {}, \"walked\": {}, \"table_s\": {:.6}, \
             \"netlist_s\": {:.6}, \"incremental_s\": {:.6}, \"netlist_over_incremental\": {:.1} }}{comma}",
            r.space,
            r.points,
            r.walked,
            r.table_s,
            r.netlist_s,
            r.incremental_s,
            r.netlist_s / r.incremental_s
        );
    }
    println!("  ],");
    if keep("paper") {
        // Cold end-to-end: the annotation database (real ATPG + march
        // runs) is rebuilt inside the timed region, as `ttadse fig2`
        // pays it. This is the committed trajectory headline.
        eprintln!("cold paper sweeps (database rebuilt per run)...");
        let cold_scratch = time_cold(EvalMode::Scratch, iters);
        let cold_delta = time_cold(EvalMode::Delta, iters);
        println!("  \"cold\": {{");
        println!(
            "    \"space\": \"paper\", \"includes_annotation\": true, \
             \"scratch_s\": {cold_scratch:.3}, \"delta_s\": {cold_delta:.3}"
        );
        println!("  }}");
    } else {
        println!("  \"cold\": null");
    }
    println!("}}");
}
