//! Regenerates Figure 9: the architecture picked by the equal-weight
//! Euclidean norm, plus a norm/weight sensitivity appendix. Pass
//! `--fast` for the reduced space.

use tta_bench::{fig9, Experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Figure 9 at {scale:?} scale…");
    let mut exp = Experiments::new(scale);
    println!("{}", fig9(&mut exp));
}
