//! Regenerates Figure 7's analysis: test access and test order for the
//! bus-oriented VLIW ASIP template.

use tta_bench::fig7;

fn main() {
    println!("{}", fig7());
}
