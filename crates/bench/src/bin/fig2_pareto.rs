//! Regenerates Figure 2: the (area, execution time) Pareto front of the
//! Crypt application. Pass `--fast` for the reduced 8-bit space and
//! `--csv` for machine-readable output (the role of the paper's gawk
//! post-processing scripts).

use tta_bench::{fig2, Experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    eprintln!("running Figure 2 at {scale:?} scale…");
    let mut exp = Experiments::new(scale);
    let fig = fig2(&mut exp);
    if csv {
        println!("area,exec_time,on_front");
        for (a, t, on) in &fig.points {
            println!("{a:.1},{t:.1},{}", u8::from(*on));
        }
    } else {
        println!("{fig}");
    }
}
