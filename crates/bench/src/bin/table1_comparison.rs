//! Regenerates Table 1: full scan vs the proposed functional methodology
//! for every component of the selected architecture. Pass `--fast` for
//! the reduced space, or `--figure9` to cost the paper's published
//! architecture directly (skipping the exploration).

use tta_arch::Architecture;
use tta_bench::{table1, table1_for, Experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let mut exp = Experiments::new(scale);
    let table = if std::env::args().any(|a| a == "--figure9") {
        table1_for(&mut exp, Architecture::figure9())
    } else {
        eprintln!("selecting the architecture at {scale:?} scale…");
        table1(&mut exp)
    };
    println!("{table}");
}
