//! Regenerates Figure 8: the Pareto set in (area, execution time, test
//! cost) space, with the Figure 2 projection check. Pass `--fast` for
//! the reduced space and `--csv` for machine-readable output.

use tta_bench::{fig8, Experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    eprintln!("running Figure 8 at {scale:?} scale…");
    let mut exp = Experiments::new(scale);
    let fig = fig8(&mut exp);
    if csv {
        println!("area,exec_time,test_cost,architecture");
        for (a, t, tc, name) in &fig.points {
            println!("{a:.1},{t:.1},{tc:.1},{name}");
        }
    } else {
        println!("{fig}");
    }
}
