//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation.
//!
//! | Artefact | Function | CLI |
//! |---|---|---|
//! | Figure 2 (2-D Pareto, Crypt) | [`fig2`] | `cargo run -p tta-bench --bin fig2_pareto` |
//! | Figure 6 (port sharing cost) | [`fig6`] | `--bin fig6_port_sharing` |
//! | Figure 7 (VLIW extension) | [`fig7`] | `--bin fig7_vliw` |
//! | Figure 8 (3-D Pareto) | [`fig8`] | `--bin fig8_pareto3d` |
//! | Figure 9 (norm selection) | [`fig9`] | `--bin fig9_selection` |
//! | Table 1 (full scan vs ours) | [`table1`] | `--bin table1_comparison` |
//!
//! Each harness has two sizes: `Scale::Paper` (16-bit datapath, the full
//! 144-point space, 16 crypt rounds) and `Scale::Fast` (8-bit reduced
//! space for tests and CI smoke runs). Absolute numbers differ from the
//! paper (different cell library, netlists and ATPG); EXPERIMENTS.md
//! records the paper-vs-measured comparison and the preserved shape.

#![warn(missing_docs)]

use std::fmt;

use tta_arch::template::TemplateSpace;
use tta_arch::vliw::VliwTemplate;
use tta_arch::{Architecture, BusId, FuInstance, FuKind};
use tta_core::backannotate::{ComponentDb, ComponentKey};
use tta_core::cache::SweepCache;
use tta_core::explore::{
    CacheStatus, EvalMode, EvaluatedArch, Exploration, ExploreResult, LiftMode,
};
use tta_core::fullscan::FullScanDb;
use tta_core::report::TextTable;
use tta_core::testcost::{architecture_test_cost, ftfu_ratio};
use tta_core::{Norm, Weights};
use tta_workloads::suite;

/// Experiment size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's configuration: 16-bit, full space, 16 crypt rounds.
    Paper,
    /// Reduced 8-bit configuration for tests / smoke benches.
    Fast,
}

impl Scale {
    /// Template space for this scale.
    pub fn space(self) -> TemplateSpace {
        match self {
            Scale::Paper => TemplateSpace::paper_default(),
            Scale::Fast => TemplateSpace::fast_default(),
        }
    }

    /// Crypt trace length (Feistel rounds per scheduled trace).
    pub fn crypt_rounds(self) -> usize {
        match self {
            Scale::Paper => 16,
            Scale::Fast => 1,
        }
    }

    /// Datapath width.
    pub fn width(self) -> u16 {
        match self {
            Scale::Paper => 16,
            Scale::Fast => 8,
        }
    }

    /// Workload sizing parameters for this scale.
    pub fn suite_params(self) -> suite::SuiteParams {
        match self {
            Scale::Paper => suite::SuiteParams::paper(),
            Scale::Fast => suite::SuiteParams::fast(),
        }
    }

    /// Parses `--fast` from CLI arguments (default: paper scale).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--fast") {
            Scale::Fast
        } else {
            Scale::Paper
        }
    }
}

/// Shared experiment context (annotation database + crypt workload +
/// result cache, optionally backed by a persistent [`SweepCache`]).
pub struct Experiments<'c> {
    /// The scale everything runs at.
    pub scale: Scale,
    db: ComponentDb,
    cache: Option<&'c SweepCache>,
    eval_mode: EvalMode,
    result: Option<ExploreResult>,
    full_result: Option<ExploreResult>,
}

impl Experiments<'static> {
    /// Creates a context at `scale` (no persistent cache).
    pub fn new(scale: Scale) -> Self {
        Experiments {
            scale,
            db: ComponentDb::new(),
            cache: None,
            eval_mode: EvalMode::default(),
            result: None,
            full_result: None,
        }
    }
}

impl<'c> Experiments<'c> {
    /// Creates a context whose exploration consults (and populates) a
    /// persistent sweep cache — a warm cache skips the whole sweep and
    /// is bit-identical to a cold run.
    pub fn with_cache(scale: Scale, cache: &'c SweepCache) -> Self {
        Experiments {
            scale,
            db: ComponentDb::new(),
            cache: Some(cache),
            eval_mode: EvalMode::default(),
            result: None,
            full_result: None,
        }
    }

    /// Selects the evaluation engine (`--eval`): memoized delta by
    /// default, or scratch as the reference oracle. Bit-identical
    /// either way — CI `cmp`s the two.
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    fn run_exploration(&self, lift: LiftMode) -> ExploreResult {
        let workload = suite::crypt(self.scale.crypt_rounds());
        let mut e = Exploration::over(self.scale.space())
            .workload(&workload)
            .with_db(&self.db)
            .lift(lift)
            .eval_mode(self.eval_mode)
            .parallel(true);
        if let Some(cache) = self.cache {
            e = e.cache(cache);
        }
        e.run()
    }

    /// Runs (or returns the cached) crypt exploration — parallel, which
    /// is bit-identical to the serial sweep.
    pub fn exploration(&mut self) -> &ExploreResult {
        if self.result.is_none() {
            self.result = Some(self.run_exploration(LiftMode::ParetoOnly));
        }
        self.result.as_ref().expect("just populated")
    }

    /// Runs (or returns the cached) *full-lift* crypt exploration
    /// ([`LiftMode::Full`]): every feasible point carries the test
    /// axis and the front is the true 3-D one. Shares the annotation
    /// database — and, through the unchanged eval content addresses,
    /// the persistent cache's scheduling entries — with
    /// [`Experiments::exploration`].
    pub fn exploration_full(&mut self) -> &ExploreResult {
        if self.full_result.is_none() {
            self.full_result = Some(self.run_exploration(LiftMode::Full));
        }
        self.full_result.as_ref().expect("just populated")
    }

    /// The first cache-flush failure message from any exploration this
    /// context has run, if any — so harness callers (the CLI figure
    /// commands) can warn that results were computed but not
    /// persisted.
    pub fn flush_failure(&self) -> Option<&str> {
        [self.result.as_ref(), self.full_result.as_ref()]
            .into_iter()
            .flatten()
            .find_map(|r| match &r.cache_status {
                CacheStatus::FlushFailed(msg) => Some(msg.as_str()),
                _ => None,
            })
    }

    /// The shared back-annotation database.
    pub fn db(&self) -> &ComponentDb {
        &self.db
    }
}

// ---------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------

/// Figure 2: the (area, execution-time) solution space of the Crypt
/// application, bounded by Pareto points.
pub struct Fig2 {
    /// Every feasible point `(area GE, exec time, on-front?)`.
    pub points: Vec<(f64, f64, bool)>,
    /// The Pareto front sorted by area.
    pub front: Vec<(f64, f64, String)>,
    /// Infeasible architectures skipped.
    pub infeasible: usize,
}

/// Regenerates Figure 2.
pub fn fig2(exp: &mut Experiments) -> Fig2 {
    let result = exp.exploration();
    let mut points = Vec::new();
    for (i, e) in result.evaluated.iter().enumerate() {
        points.push((e.area(), e.exec_time(), result.is_on_front(i)));
    }
    let mut front: Vec<(f64, f64, String)> = result
        .pareto_points()
        .iter()
        .map(|e| (e.area(), e.exec_time(), e.architecture.name.clone()))
        .collect();
    front.sort_by(|a, b| a.0.total_cmp(&b.0));
    Fig2 {
        points,
        front,
        infeasible: result.infeasible,
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 — Crypt solution space: {} points ({} infeasible), {} Pareto",
            self.points.len(),
            self.infeasible,
            self.front.len()
        )?;
        let mut t = TextTable::new(["area [GE]", "exec time [norm]", "architecture"]);
        for (a, time, name) in &self.front {
            t.row([format!("{a:.0}"), format!("{time:.0}"), name.clone()]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------

/// Figure 6: two *identical* FUs whose test costs differ because of their
/// port/bus connections.
pub struct Fig6 {
    /// np of the unit (same for both).
    pub np: usize,
    /// `CD` and `ftfu` with dedicated buses (FU1).
    pub dedicated: (u32, f64),
    /// `CD` and `ftfu` with operand+trigger on one bus (FU2).
    pub shared: (u32, f64),
    /// The explicit eq.-(11) ratio form for both.
    pub ratio_form: (f64, f64),
}

/// Regenerates Figure 6.
pub fn fig6(exp: &mut Experiments) -> Fig6 {
    let w = exp.scale.width();
    let np = exp.db().get(ComponentKey::Alu(w)).np;
    let fu1 = FuInstance {
        kind: FuKind::Alu,
        name: "fu1".into(),
        operand_bus: BusId(0),
        trigger_bus: BusId(1),
        result_bus: BusId(2),
    };
    let fu2 = FuInstance {
        kind: FuKind::Alu,
        name: "fu2".into(),
        operand_bus: BusId(0),
        trigger_bus: BusId(0), // the two ports connected to the same bus
        result_bus: BusId(1),
    };
    let cd1 = tta_arch::transport_cycles(&fu1);
    let cd2 = tta_arch::transport_cycles(&fu2);
    Fig6 {
        np,
        dedicated: (cd1, np as f64 * f64::from(cd1)),
        shared: (cd2, np as f64 * f64::from(cd2)),
        ratio_form: (ftfu_ratio(np, 3, 3, 3), ftfu_ratio(np, 3, 3, 2)),
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6 — identical FUs, different test cost (np = {})",
            self.np
        )?;
        let mut t = TextTable::new(["unit", "ports", "CD", "ftfu"]);
        t.row([
            "FU1".into(),
            "dedicated buses".to_string(),
            self.dedicated.0.to_string(),
            format!("{:.0}", self.dedicated.1),
        ]);
        t.row([
            "FU2".into(),
            "O,T share one bus".to_string(),
            self.shared.0.to_string(),
            format!("{:.0}", self.shared.1),
        ]);
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "eq. (11) ratio form: dedicated {:.0}, shared {:.0}  (ftf1 < ftf2: {})",
            self.ratio_form.0,
            self.ratio_form.1,
            self.shared.1 > self.dedicated.1
        )
    }
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// Figure 7: the bus-oriented VLIW ASIP extension — which components are
/// directly testable and the required test order.
pub struct Fig7 {
    /// Components directly on the bus.
    pub direct: Vec<String>,
    /// Valid test order (dependencies first).
    pub order: Vec<String>,
}

/// Regenerates Figure 7's analysis for a 3-execution-unit VLIW.
pub fn fig7() -> Fig7 {
    let template = VliwTemplate::figure7(3);
    let direct = template
        .directly_testable()
        .into_iter()
        .map(String::from)
        .collect();
    let order = template.test_order().expect("figure 7 template is acyclic");
    Fig7 { direct, order }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7 — bus-oriented VLIW ASIP test access")?;
        writeln!(f, "directly testable: {}", self.direct.join(", "))?;
        writeln!(f, "required test order: {}", self.order.join(" -> "))
    }
}

// ---------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------

/// Figure 8: the Pareto set lifted to (area, exec time, test cost).
pub struct Fig8 {
    /// The 3-D points with architecture names, sorted by area.
    pub points: Vec<(f64, f64, f64, String)>,
    /// Does the (area, time) projection reproduce Figure 2?
    pub projection_holds: bool,
    /// Spread of the test axis across the front (max/min).
    pub test_spread: f64,
}

/// Regenerates Figure 8.
pub fn fig8(exp: &mut Experiments) -> Fig8 {
    let result = exp.exploration();
    let mut points: Vec<(f64, f64, f64, String)> = result
        .pareto_points()
        .iter()
        .map(|e| {
            (
                e.area(),
                e.exec_time(),
                e.test_cost().expect("front points carry the test axis"),
                e.architecture.name.clone(),
            )
        })
        .collect();
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    let projection_holds = result.projection_holds();
    let (lo, hi) = points.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
        (lo.min(p.2), hi.max(p.2))
    });
    Fig8 {
        points,
        projection_holds,
        test_spread: if lo > 0.0 { hi / lo } else { 1.0 },
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8 — 3-D Pareto points (projection holds: {}, test spread {:.2}x)",
            self.projection_holds, self.test_spread
        )?;
        let mut t = TextTable::new([
            "area [GE]",
            "exec time",
            "test cost [cycles]",
            "architecture",
        ]);
        for (a, time, tc, name) in &self.points {
            t.row([
                format!("{a:.0}"),
                format!("{time:.0}"),
                format!("{tc:.0}"),
                name.clone(),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Figure 8, co-explored: the true 3-D front of a [`LiftMode::Full`]
/// sweep against the paper's Pareto-only lift — quantifying what the
/// post-hoc lift misses.
pub struct Fig8Full {
    /// Size of the 2-D design front (the points the paper lifts).
    pub design_front: usize,
    /// Size of the true 3-D front.
    pub full_front: usize,
    /// 3-D front points `(area, exec time, test cost, name)` absent
    /// from the design-only lift, sorted by area. Each is a genuine
    /// trade-off — dominated in (area, time), yet cheaper to test than
    /// every point that dominates it.
    pub missed: Vec<(f64, f64, f64, String)>,
    /// Whether the paper's projection assumption survived the full
    /// sweep (true exactly when nothing was missed).
    pub projection_holds: bool,
}

/// Regenerates the Figure 8 comparison under full 3-D co-exploration.
pub fn fig8_full(exp: &mut Experiments) -> Fig8Full {
    let result = exp.exploration_full();
    let design: std::collections::HashSet<usize> = result.design_front().into_iter().collect();
    let mut missed: Vec<(f64, f64, f64, String)> = result
        .pareto
        .iter()
        .filter(|i| !design.contains(i))
        .map(|&i| {
            let e = &result.evaluated[i];
            (
                e.area(),
                e.exec_time(),
                e.test_cost().expect("full-lift points carry the test axis"),
                e.architecture.name.clone(),
            )
        })
        .collect();
    missed.sort_by(|a, b| a.0.total_cmp(&b.0));
    Fig8Full {
        design_front: design.len(),
        full_front: result.pareto.len(),
        projection_holds: missed.is_empty(),
        missed,
    }
}

impl fmt::Display for Fig8Full {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8 (full lift) — true 3-D front: {} points; Pareto-only lift finds {} and misses {}",
            self.full_front,
            self.design_front,
            self.missed.len()
        )?;
        if self.missed.is_empty() {
            return write!(
                f,
                "the paper's projection assumption holds on this space: \
                 every 3-D Pareto point is already on the (area, time) front"
            );
        }
        let mut t = TextTable::new([
            "area [GE]",
            "exec time",
            "test cost [cycles]",
            "architecture",
        ]);
        for (a, time, tc, name) in &self.missed {
            t.row([
                format!("{a:.0}"),
                format!("{time:.0}"),
                format!("{tc:.0}"),
                name.clone(),
            ]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------

/// Figure 9: the architecture selected by the equal-weight Euclidean
/// norm.
pub struct Fig9 {
    /// The selected point.
    pub selected: EvaluatedArch,
    /// Sensitivity: selections under other norms/weights.
    pub alternatives: Vec<(String, String)>,
}

/// Regenerates Figure 9 (plus a selection-sensitivity appendix).
pub fn fig9(exp: &mut Experiments) -> Fig9 {
    let result = exp.exploration();
    let selected = result.select_equal_weights().clone();
    let mut alternatives = Vec::new();
    for (label, weights, norm) in [
        ("Manhattan, equal", Weights::equal(3), Norm::Manhattan),
        ("Chebyshev, equal", Weights::equal(3), Norm::Chebyshev),
        (
            "Euclid, test-heavy (w=1,1,4)",
            Weights(vec![1.0, 1.0, 4.0]),
            Norm::Euclidean,
        ),
        (
            "Euclid, area-heavy (w=4,1,1)",
            Weights(vec![4.0, 1.0, 1.0]),
            Norm::Euclidean,
        ),
    ] {
        let pick = result.select(&weights, norm);
        alternatives.push((label.to_string(), pick.architecture.name.clone()));
    }
    Fig9 {
        selected,
        alternatives,
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9 — selected architecture (equal-weight Euclid norm)"
        )?;
        writeln!(f, "{}", self.selected.architecture)?;
        writeln!(
            f,
            "area {:.0} GE, exec time {:.0}, test cost {:.0} cycles",
            self.selected.area(),
            self.selected.exec_time(),
            self.selected.test_cost().unwrap_or(f64::NAN)
        )?;
        writeln!(f, "selection sensitivity:")?;
        for (label, name) in &self.alternatives {
            writeln!(f, "  {label:<30} -> {name}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One Table 1 row.
pub struct Table1Row {
    /// Component name.
    pub component: String,
    /// Full-scan cycles (parenthesised in the paper for excluded units).
    pub full_scan: usize,
    /// Our approach cycles (`ftfu/ftrf + fts`).
    pub ours: f64,
    /// Socket scan-chain length.
    pub nl: usize,
    /// `ftfu` (functional units only).
    pub ftfu: Option<f64>,
    /// `ftrf` (register files only).
    pub ftrf: Option<f64>,
    /// `fts`.
    pub fts: f64,
    /// Fault coverage (%).
    pub coverage: f64,
    /// Excluded from the comparison (LD/ST, PC, IMM)?
    pub excluded: bool,
}

/// Table 1: full scan vs the proposed methodology, per component of the
/// selected architecture.
pub struct Table1 {
    /// The architecture the rows describe.
    pub architecture: Architecture,
    /// Per-component rows.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Σ full-scan vs Σ ours over the non-excluded rows.
    pub fn totals(&self) -> (f64, f64) {
        let fs: usize = self
            .rows
            .iter()
            .filter(|r| !r.excluded)
            .map(|r| r.full_scan)
            .sum();
        let ours: f64 = self
            .rows
            .iter()
            .filter(|r| !r.excluded)
            .map(|r| r.ours)
            .sum();
        (fs as f64, ours)
    }
}

/// Regenerates Table 1 for the Figure 9 selection (or, at fast scale, the
/// fast-space selection).
pub fn table1(exp: &mut Experiments) -> Table1 {
    let arch = {
        let result = exp.exploration();
        result.select_equal_weights().architecture.clone()
    };
    table1_for(exp, arch)
}

/// Table 1 for an explicit architecture.
pub fn table1_for(exp: &mut Experiments, arch: Architecture) -> Table1 {
    let w = u16::try_from(arch.width).expect("harness widths fit the component keys");
    let mut fullscan = FullScanDb::new();
    let cost = architecture_test_cost(&arch, exp.db());
    let mut rows = Vec::new();
    for (c, fu_or_rf) in cost.components.iter().zip(
        arch.fus()
            .iter()
            .map(|f| (Some(f.kind), None))
            .chain(arch.rfs().iter().map(|r| (None, Some(r)))),
    ) {
        let (key, n_inputs, is_rf) = match fu_or_rf {
            (Some(kind), None) => (ComponentKey::for_fu(kind, w), kind.input_ports(), false),
            (None, Some(rf)) => (
                ComponentKey::for_rf(rf, w).expect("harness RFs fit the component keys"),
                rf.nin(),
                true,
            ),
            _ => unreachable!("zip pairs components with their source"),
        };
        let fs = fullscan.get(key, n_inputs).clone();
        rows.push(Table1Row {
            component: c.name.clone(),
            full_scan: fs.cycles,
            ours: c.our_approach_cycles(),
            nl: c.nl,
            ftfu: (!is_rf).then_some(c.functional_cost),
            ftrf: is_rf.then_some(c.functional_cost),
            fts: c.fts,
            coverage: c.fault_coverage * 100.0,
            excluded: c.excluded,
        });
    }
    Table1 {
        architecture: arch,
        rows,
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1 — full scan vs our methodology ({})",
            self.architecture.name
        )?;
        let mut t = TextTable::new([
            "Component",
            "full scan",
            "our approach",
            "nl",
            "ftfu",
            "ftrf",
            "fts",
            "FC (%)",
        ]);
        for r in &self.rows {
            let ours = if r.excluded {
                format!("({:.0})", r.ours)
            } else {
                format!("{:.0}", r.ours)
            };
            t.row([
                r.component.clone(),
                r.full_scan.to_string(),
                ours,
                r.nl.to_string(),
                r.ftfu.map_or("-".into(), |v| format!("{v:.0}")),
                r.ftrf.map_or("-".into(), |v| format!("{v:.0}")),
                format!("{:.0}", r.fts),
                format!("{:.2}", r.coverage),
            ]);
        }
        writeln!(f, "{t}")?;
        let (fs, ours) = self.totals();
        writeln!(
            f,
            "totals (compared components): full scan {fs:.0} cycles, ours {ours:.0} cycles ({:.1}x fewer)",
            fs / ours
        )
    }
}

// ---------------------------------------------------------------------
// Cross-suite comparison
// ---------------------------------------------------------------------

/// One row of [`SuiteComparison`]: a weighted suite and what the
/// equal-weight Euclidean norm selected for it.
pub struct SuiteComparisonRow {
    /// Suite name.
    pub suite: String,
    /// `(workload name, weight)` members, in aggregation order.
    pub members: Vec<(String, f64)>,
    /// Feasible points of the sweep.
    pub feasible: usize,
    /// Infeasible points of the sweep.
    pub infeasible: usize,
    /// The selected point, when any point was feasible.
    pub selected: Option<EvaluatedArch>,
    /// Points each member was the first to make infeasible, in
    /// [`SuiteComparisonRow::members`] order.
    pub blocked: Vec<usize>,
    /// Per-member simulated-minus-modeled trace-cycle delta on the
    /// selected architecture, in [`SuiteComparisonRow::members`] order;
    /// `None` when nothing was selected or the member does not schedule
    /// there. Zero by the simulator's acceptance property — a non-zero
    /// value flags scheduler/model drift.
    pub cycle_deltas: Vec<Option<i64>>,
}

/// Executes one scheduled trace of `w` on `arch` and returns simulated
/// minus scheduled cycles (`None` when the workload does not schedule
/// or lower there).
fn simulated_delta(arch: &Architecture, w: &suite::Workload) -> Option<i64> {
    let schedule = tta_movec::schedule::Scheduler::new(arch).run(&w.dfg).ok()?;
    let program = tta_sim::lower(arch, &w.dfg, &schedule, &w.inputs, &w.mem).ok()?;
    let options = tta_sim::SimOptions {
        allow_register_overflow: true,
        ..Default::default()
    };
    let trace = tta_sim::Simulator::new(arch)
        .options(options)
        .run(&program)
        .ok()?;
    let executed = i64::try_from(trace.cycles).ok()?;
    Some(executed - i64::from(schedule.cycles))
}

/// How the Figure 9 weighted-norm selection moves across workload
/// suites — the `ttadse workloads compare` harness.
pub struct SuiteComparison {
    /// The scale every sweep ran at.
    pub scale: Scale,
    /// Template points per sweep.
    pub space_points: usize,
    /// One row per requested suite, in request order.
    pub rows: Vec<SuiteComparisonRow>,
    /// First cache-flush failure across the sweeps, if any — results
    /// are complete but were not persisted.
    pub flush_failure: Option<String>,
}

/// Sweeps the scale's template space once per named suite (sharing one
/// annotation database, and the persistent cache when given) and
/// reports each suite's weighted-norm selection side by side.
///
/// # Errors
///
/// Returns the offending name when `suites` contains a name the
/// standard [`suite::SuiteRegistry`] does not know.
pub fn compare_suites(
    scale: Scale,
    suites: &[String],
    cache: Option<&SweepCache>,
) -> Result<SuiteComparison, String> {
    let registry = suite::SuiteRegistry::standard();
    let params = scale.suite_params();
    let db = ComponentDb::new();
    let space = scale.space();
    let space_points = space.len();
    let mut rows = Vec::new();
    let mut flush_failure = None;
    for name in suites {
        let members = registry
            .instantiate(name, &params)
            .ok_or_else(|| name.clone())?;
        let mut e = Exploration::over(space.clone())
            .suite(&members)
            .with_db(&db)
            .parallel(true);
        if let Some(cache) = cache {
            e = e.cache(cache);
        }
        let result = e.run();
        if let CacheStatus::FlushFailed(msg) = &result.cache_status {
            flush_failure.get_or_insert_with(|| msg.clone());
        }
        let selected = result.try_select_equal_weights().cloned();
        let cycle_deltas = members
            .iter()
            .map(|m| {
                selected
                    .as_ref()
                    .and_then(|s| simulated_delta(&s.architecture, &m.workload))
            })
            .collect();
        rows.push(SuiteComparisonRow {
            suite: name.clone(),
            members: members
                .iter()
                .map(|m| (m.workload.name.clone(), m.weight))
                .collect(),
            feasible: result.evaluated.len(),
            infeasible: result.infeasible,
            blocked: result.blocked.clone(),
            selected,
            cycle_deltas,
        });
    }
    Ok(SuiteComparison {
        scale,
        space_points,
        rows,
        flush_failure,
    })
}

impl fmt::Display for SuiteComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cross-suite comparison — {} template points per sweep",
            self.space_points
        )?;
        let mut t = TextTable::new([
            "suite",
            "members",
            "selected",
            "area [GE]",
            "exec time",
            "test cost",
            "feasible",
            "sim-model Δcycles",
        ]);
        for r in &self.rows {
            let members = r
                .members
                .iter()
                .map(|(n, w)| format!("{n}:{w}"))
                .collect::<Vec<_>>()
                .join(" ");
            // Per-member executed-minus-modeled cycles on the selected
            // machine: all zeros while scheduler and simulator agree.
            let deltas = r
                .cycle_deltas
                .iter()
                .map(|d| d.map_or("-".into(), |v| v.to_string()))
                .collect::<Vec<_>>()
                .join(" ");
            match &r.selected {
                Some(e) => t.row([
                    r.suite.clone(),
                    members,
                    e.architecture.name.clone(),
                    format!("{:.0}", e.area()),
                    format!("{:.0}", e.exec_time()),
                    e.test_cost().map_or("-".into(), |c| format!("{c:.0}")),
                    format!("{}/{}", r.feasible, r.feasible + r.infeasible),
                    deltas,
                ]),
                None => t.row([
                    r.suite.clone(),
                    members,
                    "(no feasible point)".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("0/{}", r.infeasible),
                    deltas,
                ]),
            }
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fig2_has_front() {
        let mut exp = Experiments::new(Scale::Fast);
        let fig = fig2(&mut exp);
        assert!(!fig.front.is_empty());
        assert!(fig.to_string().contains("Pareto"));
    }

    #[test]
    fn fast_fig6_shows_inequality() {
        let mut exp = Experiments::new(Scale::Fast);
        let fig = fig6(&mut exp);
        assert!(fig.shared.1 > fig.dedicated.1, "ftf1 < ftf2 required");
        assert!(fig.ratio_form.1 > fig.ratio_form.0);
    }

    #[test]
    fn fig7_order_valid() {
        let fig = fig7();
        assert!(fig.order.len() >= 4);
        assert!(fig.to_string().contains("rf"));
    }

    #[test]
    fn fast_fig8_projection() {
        let mut exp = Experiments::new(Scale::Fast);
        let fig = fig8(&mut exp);
        assert!(fig.projection_holds);
        assert!(!fig.points.is_empty());
    }

    #[test]
    fn full_lift_surfaces_points_the_pareto_lift_misses() {
        use std::collections::HashSet;
        use tta_core::pareto::dominates;

        // The control suite on the fast space, under the paper's own
        // eq. (14) model: the true 3-D front holds points that are
        // dominated in (area, time) yet cheaper to test than every one
        // of their dominators — the Pareto-only lift never sees them.
        let registry = suite::SuiteRegistry::standard();
        let members = registry
            .instantiate("control", &suite::SuiteParams::fast())
            .expect("control is a standard suite");
        let db = ComponentDb::new();
        let full = Exploration::over(TemplateSpace::fast_default())
            .suite(&members)
            .with_db(&db)
            .lift(LiftMode::Full)
            .parallel(true)
            .run();
        let design: HashSet<usize> = full.design_front().into_iter().collect();
        // The 3-D front is a superset of the design front…
        for &i in &design {
            assert!(full.pareto.contains(&i), "design point {i} fell off");
        }
        // …and on this space a *strict* one: the co-exploration
        // demonstrably surfaces trade-offs the post-hoc lift misses.
        let missed: Vec<usize> = full
            .pareto
            .iter()
            .copied()
            .filter(|i| !design.contains(i))
            .collect();
        assert!(
            !missed.is_empty(),
            "expected the full lift to beat the Pareto-only lift here"
        );
        assert!(!full.projection_holds());
        // Each missed point is genuinely 2-D dominated but 3-D
        // non-dominated: every (area, time) dominator tests worse.
        for &m in &missed {
            let p = &full.evaluated[m];
            let p2 = [p.area(), p.exec_time()];
            let dominators: Vec<_> = full
                .evaluated
                .iter()
                .filter(|q| dominates(&[q.area(), q.exec_time()], &p2))
                .collect();
            assert!(!dominators.is_empty(), "missed point must be 2-D dominated");
            for q in dominators {
                assert!(
                    q.test_cost().unwrap() > p.test_cost().unwrap(),
                    "a dominator that also tests better would 3-D dominate"
                );
            }
        }
    }

    #[test]
    fn fig8_full_agrees_with_the_two_underlying_sweeps() {
        let mut exp = Experiments::new(Scale::Fast);
        let fig = fig8_full(&mut exp);
        // This equation relies on the annotated models producing no
        // exact (area, time) ties on the fast space (a tied point can
        // be 3-D-dominated by its twin — see
        // `ExploreResult::design_front`); it is a property of this
        // fixed, deterministic data set.
        assert_eq!(fig.full_front, fig.design_front + fig.missed.len());
        assert_eq!(fig.projection_holds, fig.missed.is_empty());
        // The Pareto-only harness sees the same design front.
        let pareto_only = fig8(&mut exp);
        assert_eq!(pareto_only.points.len(), fig.design_front);
    }

    #[test]
    fn suite_comparison_moves_the_selection() {
        let cmp = compare_suites(Scale::Fast, &["paper".into(), "dsp".into()], None)
            .expect("both suites are registered");
        assert_eq!(cmp.rows.len(), 2);
        let paper = cmp.rows[0].selected.as_ref().expect("crypt is feasible");
        let dsp = cmp.rows[1].selected.as_ref().expect("dsp has MUL points");
        assert_ne!(
            paper.architecture.name, dsp.architecture.name,
            "the DSP-weighted suite must select a different optimum"
        );
        assert!(
            dsp.architecture
                .fus
                .iter()
                .any(|f| f.name.starts_with("mul")),
            "the dsp selection pays for a multiplier"
        );
        // MUL-less points are infeasible for the dsp suite, and the
        // breakdown blames its first MUL-bound member.
        assert!(cmp.rows[1].infeasible > 0);
        assert_eq!(
            cmp.rows[1].blocked.iter().sum::<usize>(),
            cmp.rows[1].infeasible
        );
        assert!(cmp.to_string().contains("dsp"));
        // Every member executes on its suite's selected machine (a
        // selected point is feasible for the whole suite), and the
        // simulator reproduces the analytic model exactly.
        for row in &cmp.rows {
            assert_eq!(row.cycle_deltas.len(), row.members.len());
            for (delta, (member, _)) in row.cycle_deltas.iter().zip(&row.members) {
                assert_eq!(*delta, Some(0), "{}: {member} drifted", row.suite);
            }
        }
    }

    #[test]
    fn unknown_suite_is_reported_by_name() {
        let err = match compare_suites(Scale::Fast, &["media".into()], None) {
            Err(name) => name,
            Ok(_) => panic!("unknown suite must be rejected"),
        };
        assert_eq!(err, "media");
    }

    #[test]
    fn fast_table1_favours_our_approach() {
        let mut exp = Experiments::new(Scale::Fast);
        let table = table1(&mut exp);
        let (fs, ours) = table.totals();
        assert!(fs > ours, "full scan {fs} must exceed ours {ours}");
        assert!(table.to_string().contains("fewer"));
    }
}
