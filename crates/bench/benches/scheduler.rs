//! Transport scheduler benchmarks: the crypt kernel on the Figure 9
//! machine, plus the operand/trigger bus-sharing ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tta_arch::template::TemplateBuilder;
use tta_arch::{Architecture, FuKind};
use tta_movec::schedule::Scheduler;
use tta_workloads::suite;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    let arch = Architecture::figure9();
    for rounds in [1usize, 4, 16] {
        let w = suite::crypt(rounds);
        group.bench_with_input(BenchmarkId::new("crypt", rounds), &w, |b, w| {
            b.iter(|| black_box(Scheduler::new(&arch).run(&w.dfg).unwrap().cycles));
        });
    }
    group.finish();
}

fn bench_bus_sharing_ablation(c: &mut Criterion) {
    // Eq. (10) in the throughput dimension: fewer buses serialise moves.
    let mut group = c.benchmark_group("scheduler_buses");
    let w = suite::crypt(2);
    for buses in [1usize, 2, 4] {
        let arch = TemplateBuilder::new(format!("b{buses}"), 16, buses)
            .fu(FuKind::Alu)
            .fu(FuKind::Cmp)
            .fu(FuKind::Immediate)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .rf(12, 1, 2)
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(buses), &arch, |b, arch| {
            b.iter(|| black_box(Scheduler::new(arch).run(&w.dfg).unwrap().cycles));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler, bench_bus_sharing_ablation);
criterion_main!(benches);
