//! Simulator throughput: executed cycles per run for every kernel on
//! the maximal fast-space machine, plus the fast-space sweep cost under
//! `CycleSource::Model` vs `CycleSource::Simulate`. `BENCH_sim.json` at
//! the repo root records one distilled release run of this bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tta_arch::template::TemplateSpace;
use tta_core::explore::{CycleSource, Exploration};
use tta_movec::schedule::Scheduler;
use tta_sim::{lower, SimOptions, Simulator};
use tta_workloads::suite;

fn lowered_options() -> SimOptions {
    SimOptions {
        allow_register_overflow: true,
        ..Default::default()
    }
}

fn bench_sim_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    let space = TemplateSpace::fast_default();
    let arch = space.point(space.len() - 1);
    let registry = suite::SuiteRegistry::standard();
    let members = registry
        .instantiate("all", &suite::SuiteParams::fast())
        .expect("the standard registry has an `all` suite");
    for w in members.into_iter().map(|m| m.workload) {
        let schedule = Scheduler::new(&arch)
            .run(&w.dfg)
            .expect("the maximal point schedules every kernel");
        let program = lower(&arch, &w.dfg, &schedule, &w.inputs, &w.mem).expect("schedules lower");
        // Stated once per kernel so a distilled BENCH_sim.json can turn
        // the mean time below into executed cycles per second.
        let cycles = Simulator::new(&arch)
            .options(lowered_options())
            .run(&program)
            .expect("lowered programs execute")
            .cycles;
        println!("sim/{}: {cycles} cycles per run", w.name);
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &program, |b, p| {
            b.iter(|| {
                black_box(
                    Simulator::new(&arch)
                        .options(lowered_options())
                        .run(p)
                        .unwrap()
                        .cycles,
                )
            });
        });
    }
    group.finish();
}

fn bench_sweep_cycle_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(2);
    let crypt = suite::crypt(1);
    for (label, source) in [
        ("model", CycleSource::Model),
        ("simulate", CycleSource::Simulate),
    ] {
        group.bench_function(BenchmarkId::new("fast-space", label), |b| {
            b.iter(|| {
                black_box(
                    Exploration::over(TemplateSpace::fast_default())
                        .workload(&crypt)
                        .cycle_source(source)
                        .parallel(true)
                        .run()
                        .evaluated
                        .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_kernels, bench_sweep_cycle_source);
criterion_main!(benches);
