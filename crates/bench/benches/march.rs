//! March-test benchmarks: algorithm cost scaling over register count
//! (the np input of eq. 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tta_dft::march::MarchAlgorithm;
use tta_dft::memory::MultiPortMemory;

fn bench_march(c: &mut Criterion) {
    let mut group = c.benchmark_group("march");
    for words in [8usize, 12, 32, 128] {
        for alg in [
            MarchAlgorithm::mats_plus(),
            MarchAlgorithm::march_cminus(),
            MarchAlgorithm::march_b(),
        ] {
            group.bench_with_input(
                BenchmarkId::new(alg.name().replace(' ', "_"), words),
                &words,
                |b, &words| {
                    b.iter(|| {
                        let mut mem = MultiPortMemory::new(words, 16, 1, 2);
                        black_box(alg.run(&mut mem).is_ok())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_march);
criterion_main!(benches);
