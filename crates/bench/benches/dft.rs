//! DfT benchmarks: scan insertion cost and the single- vs multi-chain
//! full-scan ablation the paper mentions ("in the case of multiple scan
//! chains, the total test cost will change").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tta_dft::scan::insert_scan;
use tta_dft::testtime::multi_chain_scan_cycles;
use tta_netlist::components;

fn bench_scan_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_insertion");
    for (name, nl) in [
        ("alu16", components::alu(16).netlist),
        ("rf8x16", components::register_file(16, 8, 1, 2).netlist),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(insert_scan(&nl).chain_length()));
        });
    }
    group.finish();
}

fn bench_multi_chain_ablation(c: &mut Criterion) {
    // Not a speed benchmark of our code but of the *modelled* test time:
    // report the cycle counts as throughput so the ablation shows up in
    // the bench report.
    let mut group = c.benchmark_group("full_scan_chains");
    let alu = components::alu(16);
    let np = 88usize;
    let ffs = alu.netlist.dff_count();
    for chains in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(chains),
            &chains,
            |b, &chains| {
                b.iter(|| black_box(multi_chain_scan_cycles(np, ffs, chains)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scan_insertion, bench_multi_chain_ablation);
criterion_main!(benches);
