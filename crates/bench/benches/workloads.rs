//! Workload sweep on the Figure 9 machine: scheduled trace cycles per
//! kernel — the per-workload view behind the exploration's throughput
//! axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tta_arch::template::TemplateBuilder;
use tta_arch::{Architecture, FuKind};
use tta_movec::schedule::Scheduler;
use tta_workloads::suite;

fn figure9_with_mul() -> Architecture {
    // Figure 9 plus a multiplier so MUL workloads schedule too.
    TemplateBuilder::new("figure9+mul", 16, 2)
        .fu(FuKind::Alu)
        .fu(FuKind::Cmp)
        .fu(FuKind::Mul)
        .fu(FuKind::LdSt)
        .fu(FuKind::Pc)
        .fu(FuKind::Immediate)
        .rf(8, 1, 2)
        .rf(12, 1, 2)
        .build()
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    let arch = figure9_with_mul();
    let registry = suite::SuiteRegistry::standard();
    let members = registry
        .instantiate("all", &suite::SuiteParams::fast())
        .expect("the standard registry has an `all` suite");
    for w in members.into_iter().map(|m| m.workload) {
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &w, |b, w| {
            b.iter(|| black_box(Scheduler::new(&arch).run(&w.dfg).unwrap().cycles));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
