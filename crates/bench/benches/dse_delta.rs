//! Scratch vs delta evaluation engines on the fast-space crypt sweep,
//! plus the Gray-code (neighbour) walk order. The two engines are
//! bit-identical (asserted in `crates/core/tests/delta.rs`); this bench
//! quantifies what the per-component memo arena and the batched cache
//! prefetch buy in wall-clock. `src/bin/bench_dse.rs` distils the same
//! comparison into the committed `BENCH_dse.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tta_arch::template::TemplateSpace;
use tta_core::explore::{EvalMode, Exploration};
use tta_core::ComponentDb;
use tta_workloads::suite;

fn bench_dse_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse_delta");
    group.sample_size(10);
    let workload = suite::crypt(1);
    // Share one database so the component annotations amortise; warm it
    // once up front so the first timed iteration is not an outlier.
    let db = ComponentDb::new();
    Exploration::over(TemplateSpace::fast_default())
        .workload(&workload)
        .with_db(&db)
        .run();
    let sweep = |mode: EvalMode, neighbour: bool| {
        let e = Exploration::over(TemplateSpace::fast_default())
            .workload(&workload)
            .with_db(&db)
            .eval_mode(mode);
        let result = if neighbour {
            e.strategy(tta_core::search::Exhaustive::neighbour()).run()
        } else {
            e.run()
        };
        result.pareto.len()
    };
    group.bench_function("fast_space_crypt1_scratch", |b| {
        b.iter(|| black_box(sweep(EvalMode::Scratch, false)));
    });
    group.bench_function("fast_space_crypt1_delta", |b| {
        b.iter(|| black_box(sweep(EvalMode::Delta, false)));
    });
    group.bench_function("fast_space_crypt1_delta_neighbour", |b| {
        b.iter(|| black_box(sweep(EvalMode::Delta, true)));
    });
    group.finish();
}

criterion_group!(benches, bench_dse_delta);
criterion_main!(benches);
