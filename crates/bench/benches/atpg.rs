//! ATPG engine benchmarks + the random-phase / compaction ablations
//! (design choices called out in DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tta_atpg::{Atpg, AtpgConfig};
use tta_netlist::components;

fn bench_atpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg");
    group.sample_size(10);
    for (name, nl) in [
        ("alu8", components::alu(8).netlist),
        ("cmp8", components::cmp(8).netlist),
        ("alu16", components::alu(16).netlist),
    ] {
        group.bench_function(name, |b| {
            let engine = Atpg::new(AtpgConfig::default());
            b.iter(|| black_box(engine.run(&nl).pattern_count()));
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg_ablation");
    group.sample_size(10);
    let nl = components::alu(8).netlist;
    group.bench_function("default", |b| {
        let engine = Atpg::new(AtpgConfig::default());
        b.iter(|| black_box(engine.run(&nl).pattern_count()));
    });
    group.bench_function("no_random_phase", |b| {
        let engine = Atpg::new(AtpgConfig::deterministic_only());
        b.iter(|| black_box(engine.run(&nl).pattern_count()));
    });
    group.bench_function("no_compaction", |b| {
        let engine = Atpg::new(AtpgConfig {
            compaction: false,
            ..AtpgConfig::default()
        });
        b.iter(|| black_box(engine.run(&nl).pattern_count()));
    });
    group.finish();
}

criterion_group!(benches, bench_atpg, bench_ablations);
criterion_main!(benches);
