//! Pareto filtering benchmarks on synthetic point clouds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tta_core::pareto::pareto_front;

fn clouds(n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n)
        .map(|_| (0..dims).map(|_| rng.random::<f64>()).collect())
        .collect()
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto");
    for (n, dims) in [(100usize, 2usize), (100, 3), (1000, 2), (1000, 3)] {
        let pts = clouds(n, dims);
        group.bench_with_input(BenchmarkId::new(format!("{dims}d"), n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_front(pts).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pareto);
criterion_main!(benches);
