//! Pareto filtering benchmarks on synthetic point clouds: the batch
//! `pareto_front` entry point (O(n log n) in 2-D, O(n²) reference
//! otherwise) versus the streaming `ParetoArchive` the budgeted search
//! strategies feed — the sweep's front-maintenance hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tta_core::pareto::{pareto_front, pareto_front_reference, ParetoArchive};

fn clouds(n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n)
        .map(|_| (0..dims).map(|_| rng.random::<f64>()).collect())
        .collect()
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto");
    for (n, dims) in [(100usize, 2usize), (100, 3), (1000, 2), (1000, 3)] {
        let pts = clouds(n, dims);
        group.bench_with_input(BenchmarkId::new(format!("{dims}d"), n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_front(pts).len()))
        });
    }
    group.finish();
}

/// Full-sweep front construction vs streaming maintenance on a 10k
/// 2-D cloud: `pareto_front` (fast path), the O(n²) reference it
/// replaced, and `ParetoArchive` inserts as evaluations arrive.
fn bench_front_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("front10k");
    group.sample_size(10);
    let pts = clouds(10_000, 2);
    group.bench_with_input(BenchmarkId::new("batch_fast", pts.len()), &pts, |b, pts| {
        b.iter(|| black_box(pareto_front(pts).len()))
    });
    group.bench_with_input(
        BenchmarkId::new("batch_reference", pts.len()),
        &pts,
        |b, pts| b.iter(|| black_box(pareto_front_reference(pts).len())),
    );
    group.bench_with_input(
        BenchmarkId::new("streaming_archive", pts.len()),
        &pts,
        |b, pts| {
            b.iter(|| {
                let mut archive = ParetoArchive::new();
                for (i, p) in pts.iter().enumerate() {
                    archive.try_insert(i, p);
                }
                black_box(archive.len())
            })
        },
    );
    group.finish();
}

/// The archive's insert-time dominance check at scale: 10⁵ streamed
/// candidates against a deliberately *large* standing front (1 000
/// mutually non-dominating members), where almost every offer is a
/// rejection. Without the cached-dominator early exit each rejection
/// re-scans the front until it happens to hit a dominator; with it,
/// consecutive rejections sharing a dominator cost O(1). The random
/// cloud keeps a tiny front and measures the mixed accept/reject path
/// for contrast.
fn bench_archive_100k(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive100k");
    group.sample_size(10);
    const FRONT: usize = 1_000;
    const OFFERS: usize = 100_000;
    // A staircase front: (i, FRONT - i) is mutually non-dominating.
    let front: Vec<Vec<f64>> = (0..FRONT)
        .map(|i| vec![i as f64, (FRONT - i) as f64])
        .collect();
    // Dominated candidates sweeping the staircase region by region —
    // the walk-order streaming shape where one member rejects runs of
    // consecutive offers (a Gray walk changes one knob at a time, so
    // neighbouring evaluations land near the same front member).
    let mut rng = StdRng::seed_from_u64(7);
    let dominated: Vec<Vec<f64>> = (0..OFFERS)
        .map(|offer| {
            let i = (offer * FRONT / OFFERS) as f64;
            vec![i + 1.0 + rng.random::<f64>(), (FRONT as f64 - i) + 1.0]
        })
        .collect();
    group.bench_function("dominated_stream", |b| {
        b.iter(|| {
            let mut archive = ParetoArchive::new();
            for (i, p) in front.iter().enumerate() {
                archive.try_insert(i, p);
            }
            for (i, p) in dominated.iter().enumerate() {
                archive.try_insert(FRONT + i, p);
            }
            black_box(archive.len())
        })
    });
    let cloud = clouds(OFFERS, 2);
    group.bench_function("random_stream", |b| {
        b.iter(|| {
            let mut archive = ParetoArchive::new();
            for (i, p) in cloud.iter().enumerate() {
                archive.try_insert(i, p);
            }
            black_box(archive.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pareto,
    bench_front_construction,
    bench_archive_100k
);
criterion_main!(benches);
