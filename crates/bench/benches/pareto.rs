//! Pareto filtering benchmarks on synthetic point clouds: the batch
//! `pareto_front` entry point (O(n log n) in 2-D, O(n²) reference
//! otherwise) versus the streaming `ParetoArchive` the budgeted search
//! strategies feed — the sweep's front-maintenance hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tta_core::pareto::{pareto_front, pareto_front_reference, ParetoArchive};

fn clouds(n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n)
        .map(|_| (0..dims).map(|_| rng.random::<f64>()).collect())
        .collect()
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto");
    for (n, dims) in [(100usize, 2usize), (100, 3), (1000, 2), (1000, 3)] {
        let pts = clouds(n, dims);
        group.bench_with_input(BenchmarkId::new(format!("{dims}d"), n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_front(pts).len()))
        });
    }
    group.finish();
}

/// Full-sweep front construction vs streaming maintenance on a 10k
/// 2-D cloud: `pareto_front` (fast path), the O(n²) reference it
/// replaced, and `ParetoArchive` inserts as evaluations arrive.
fn bench_front_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("front10k");
    group.sample_size(10);
    let pts = clouds(10_000, 2);
    group.bench_with_input(BenchmarkId::new("batch_fast", pts.len()), &pts, |b, pts| {
        b.iter(|| black_box(pareto_front(pts).len()))
    });
    group.bench_with_input(
        BenchmarkId::new("batch_reference", pts.len()),
        &pts,
        |b, pts| b.iter(|| black_box(pareto_front_reference(pts).len())),
    );
    group.bench_with_input(
        BenchmarkId::new("streaming_archive", pts.len()),
        &pts,
        |b, pts| {
            b.iter(|| {
                let mut archive = ParetoArchive::new();
                for (i, p) in pts.iter().enumerate() {
                    archive.try_insert(i, p);
                }
                black_box(archive.len())
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_pareto, bench_front_construction);
criterion_main!(benches);
