//! End-to-end design-space exploration benchmark (fast scale): sweep,
//! Pareto reduction and test-cost lifting, serial vs parallel.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tta_arch::template::TemplateSpace;
use tta_core::explore::Exploration;
use tta_core::ComponentDb;
use tta_workloads::suite;

fn bench_dse(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse");
    group.sample_size(10);
    let workload = suite::crypt(1);
    // Share one database so the component annotations amortise, as a
    // real sweep campaign would; warm it once up front.
    let db = ComponentDb::new();
    Exploration::over(TemplateSpace::fast_default())
        .workload(&workload)
        .with_db(&db)
        .run();
    group.bench_function("fast_space_crypt1_serial", |b| {
        b.iter(|| {
            let result = Exploration::over(TemplateSpace::fast_default())
                .workload(&workload)
                .with_db(&db)
                .run();
            black_box(result.pareto.len())
        });
    });
    group.bench_function("fast_space_crypt1_parallel", |b| {
        b.iter(|| {
            let result = Exploration::over(TemplateSpace::fast_default())
                .workload(&workload)
                .with_db(&db)
                .parallel(true)
                .run();
            black_box(result.pareto.len())
        });
    });
    group.bench_function("fast_space_crypt1_full_lift", |b| {
        // Full-lift overhead: every feasible point pays the test-cost
        // model on top of scheduling, and the streaming front is 3-D.
        b.iter(|| {
            let result = Exploration::over(TemplateSpace::fast_default())
                .workload(&workload)
                .with_db(&db)
                .lift(tta_core::explore::LiftMode::Full)
                .run();
            black_box(result.pareto.len())
        });
    });
    group.bench_function("fast_space_crypt1_random6", |b| {
        b.iter(|| {
            let result = Exploration::over(TemplateSpace::fast_default())
                .workload(&workload)
                .with_db(&db)
                .strategy(tta_core::search::RandomSample)
                .budget(6)
                .seed(42)
                .run();
            black_box(result.pareto.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
