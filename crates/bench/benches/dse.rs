//! End-to-end design-space exploration benchmark (fast scale): sweep,
//! Pareto reduction and test-cost lifting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tta_core::explore::{ExploreConfig, Explorer};
use tta_workloads::suite;

fn bench_dse(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse");
    group.sample_size(10);
    let workload = suite::crypt(1);
    group.bench_function("fast_space_crypt1", |b| {
        // Reuse one explorer so the component database amortises, as a
        // real sweep would.
        let mut explorer = Explorer::new(ExploreConfig::fast());
        explorer.run(&workload);
        b.iter(|| black_box(explorer.run(&workload).pareto2d.len()));
    });
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
