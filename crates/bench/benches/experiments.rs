//! Regenerates every table and figure of the paper (fast scale) under
//! Criterion timing — one bench per artefact, so `cargo bench` exercises
//! the complete evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tta_bench::{fig2, fig6, fig7, fig8, fig9, table1, Experiments, Scale};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig2", |b| {
        let mut exp = Experiments::new(Scale::Fast);
        exp.exploration();
        b.iter(|| black_box(fig2(&mut exp).front.len()));
    });
    group.bench_function("fig6", |b| {
        let mut exp = Experiments::new(Scale::Fast);
        b.iter(|| black_box(fig6(&mut exp).shared.1));
    });
    group.bench_function("fig7", |b| {
        b.iter(|| black_box(fig7().order.len()));
    });
    group.bench_function("fig8", |b| {
        let mut exp = Experiments::new(Scale::Fast);
        exp.exploration();
        b.iter(|| black_box(fig8(&mut exp).points.len()));
    });
    group.bench_function("fig9", |b| {
        let mut exp = Experiments::new(Scale::Fast);
        exp.exploration();
        b.iter(|| black_box(fig9(&mut exp).selected.area()));
    });
    group.bench_function("table1", |b| {
        let mut exp = Experiments::new(Scale::Fast);
        exp.exploration();
        b.iter(|| black_box(table1(&mut exp).totals()));
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
