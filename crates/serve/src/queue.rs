//! The daemon's job scheduler: a poison-tolerant priority queue.
//!
//! Ordering is deliberate and total: higher priority first, then
//! *smaller* budget first (an unbudgeted sweep is treated as infinite —
//! short interactive jobs slip past long batch sweeps of equal
//! priority), then FIFO by admission sequence so equal jobs can never
//! starve or reorder. Workers block on a condvar; [`Queue::close`]
//! wakes them all for shutdown. Every lock acquisition shrugs off
//! poisoning — a worker that panics mid-pop must not wedge the queue
//! for the rest of the daemon's life (the fault-injection suite pins
//! this).

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Scheduling key for one admitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rank {
    priority: i64,
    /// Stored inverted-by-comparison: smaller budgets rank higher.
    budget: usize,
    /// Admission sequence; smaller = earlier.
    seq: u64,
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.budget.cmp(&self.budget))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Admitted<T> {
    rank: Rank,
    job: T,
}

impl<T> PartialEq for Admitted<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
    }
}
impl<T> Eq for Admitted<T> {}
impl<T> PartialOrd for Admitted<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Admitted<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank.cmp(&other.rank)
    }
}

struct Inner<T> {
    heap: BinaryHeap<Admitted<T>>,
    next_seq: u64,
    closed: bool,
}

/// A blocking priority queue of admitted jobs.
pub struct Queue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Queue::new()
    }
}

impl<T> Queue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        Queue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a job. `budget` of `None` schedules as unbounded (last
    /// among equal priorities). Returns `false` (dropping the job) if
    /// the queue is closed.
    pub fn push(&self, job: T, priority: i64, budget: Option<usize>) -> bool {
        let mut inner = self.lock();
        if inner.closed {
            return false;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Admitted {
            rank: Rank {
                priority,
                budget: budget.unwrap_or(usize::MAX),
                seq,
            },
            job,
        });
        drop(inner);
        self.ready.notify_one();
        true
    }

    /// Blocks until a job is available (returning the best-ranked one)
    /// or the queue is closed and drained (returning `None` — the
    /// worker's signal to exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(a) = inner.heap.pop() {
                return Some(a.job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Takes a job without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.lock().heap.pop().map(|a| a.job)
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.lock().heap.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: refuses new jobs and wakes every blocked
    /// worker. Already-queued jobs still drain.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn orders_by_priority_then_budget_then_fifo() {
        let q = Queue::new();
        q.push("batch", 0, None);
        q.push("quick", 0, Some(8));
        q.push("urgent", 5, None);
        q.push("second-of-equals", 0, Some(8));
        // seq breaks the tie between the two budget-8 jobs: "quick"
        // was admitted first.
        assert_eq!(q.pop(), Some("urgent"));
        assert_eq!(q.pop(), Some("quick"));
        assert_eq!(q.pop(), Some("second-of-equals"));
        assert_eq!(q.pop(), Some("batch"));
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q: Arc<Queue<u32>> = Arc::new(Queue::new());
        q.push(1, 0, None);
        q.close();
        assert!(!q.push(2, 0, None), "closed queue must refuse jobs");
        assert_eq!(q.pop(), Some(1), "queued work drains after close");
        assert_eq!(q.pop(), None, "then workers are released");
    }

    #[test]
    fn blocked_workers_wake_on_push_and_close() {
        let q: Arc<Queue<u32>> = Arc::new(Queue::new());
        let popped: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || q.pop())
                })
                .collect();
            for i in 0..2 {
                q.push(i, 0, None);
            }
            q.close();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let got: Vec<_> = popped.into_iter().flatten().collect();
        assert_eq!(got.len(), 2, "two jobs served, two workers released");
    }
}
