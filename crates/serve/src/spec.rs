//! The job specification: every knob of an exploration sweep as plain,
//! wire-friendly data.
//!
//! A [`JobSpec`] is what `ttadse explore` builds from its flags, what
//! `--remote` posts to the daemon, and what the daemon validates and
//! queues. Its JSON form ([`JobSpec::to_json`] / [`JobSpec::from_json`])
//! is the one schema `docs/SERVE.md` documents: unknown fields are
//! rejected so a typoed knob fails loudly instead of silently sweeping
//! with defaults — the same philosophy as the CLI's flag parser.

use tta_core::explore::{CycleSource, EvalMode, FidelityMode, LiftMode};

use crate::json;
use crate::jsonparse::Json;

/// Output rendering selector (the CLI's `--format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable tables (the default).
    #[default]
    Table,
    /// One JSON document on stdout, byte-identical for identical
    /// results.
    Json,
    /// Comma-separated rows with a header line.
    Csv,
}

impl Format {
    /// Parses a format name.
    ///
    /// # Errors
    ///
    /// A usage message naming the accepted values.
    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "table" => Ok(Format::Table),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!(
                "unknown format {other:?} (expected table, json or csv)"
            )),
        }
    }

    /// The wire/flag name.
    pub fn label(self) -> &'static str {
        match self {
            Format::Table => "table",
            Format::Json => "json",
            Format::Csv => "csv",
        }
    }
}

/// Search-strategy selector (the CLI's `--strategy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Every template point, in enumeration order.
    #[default]
    Exhaustive,
    /// Every template point, in Gray-code neighbour order.
    Neighbour,
    /// Uniform random sampling (pair with a budget).
    Random,
    /// Restarted stochastic hill climbing.
    HillClimb,
}

impl Strategy {
    /// Parses a strategy name.
    ///
    /// # Errors
    ///
    /// A usage message naming the accepted values.
    pub fn parse(s: &str) -> Result<Strategy, String> {
        match s {
            "exhaustive" => Ok(Strategy::Exhaustive),
            "neighbour" => Ok(Strategy::Neighbour),
            "random" => Ok(Strategy::Random),
            "hillclimb" => Ok(Strategy::HillClimb),
            other => Err(format!(
                "unknown strategy {other:?} (expected exhaustive, neighbour, random or hillclimb)"
            )),
        }
    }

    /// The wire/flag name.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Neighbour => "neighbour",
            Strategy::Random => "random",
            Strategy::HillClimb => "hillclimb",
        }
    }
}

/// Test-cost-model selector (the CLI's `--test-model`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TestModel {
    /// The paper's functional test-cost functions, eqs. (11)–(14).
    #[default]
    Eq14,
    /// DfT scan-chain partitioning + shift time.
    Scan,
}

impl TestModel {
    /// Parses a test-model name.
    ///
    /// # Errors
    ///
    /// A usage message naming the accepted values.
    pub fn parse(s: &str) -> Result<TestModel, String> {
        match s {
            "eq14" => Ok(TestModel::Eq14),
            "scan" => Ok(TestModel::Scan),
            other => Err(format!(
                "unknown test model {other:?} (expected eq14 or scan)"
            )),
        }
    }

    /// The wire/flag name.
    pub fn label(self) -> &'static str {
        match self {
            TestModel::Eq14 => "eq14",
            TestModel::Scan => "scan",
        }
    }
}

/// Parses a lift-mode name (`pareto`/`full`).
///
/// # Errors
///
/// A usage message naming the accepted values.
pub fn lift_parse(s: &str) -> Result<LiftMode, String> {
    match s {
        "pareto" => Ok(LiftMode::ParetoOnly),
        "full" => Ok(LiftMode::Full),
        other => Err(format!("unknown lift {other:?} (expected pareto or full)")),
    }
}

/// Parses a cycle-source name (`model`/`simulate`).
///
/// # Errors
///
/// A usage message naming the accepted values.
pub fn cycles_parse(s: &str) -> Result<CycleSource, String> {
    match s {
        "model" => Ok(CycleSource::Model),
        "simulate" => Ok(CycleSource::Simulate),
        other => Err(format!(
            "unknown cycle source {other:?} (expected model or simulate)"
        )),
    }
}

fn cycles_label(c: CycleSource) -> &'static str {
    match c {
        CycleSource::Model => "model",
        CycleSource::Simulate => "simulate",
    }
}

/// Parses an eval-engine name (`delta`/`scratch`).
///
/// # Errors
///
/// A usage message naming the accepted values.
pub fn eval_parse(s: &str) -> Result<EvalMode, String> {
    match s {
        "delta" => Ok(EvalMode::Delta),
        "scratch" => Ok(EvalMode::Scratch),
        other => Err(format!(
            "unknown eval engine {other:?} (expected delta or scratch)"
        )),
    }
}

fn eval_label(e: EvalMode) -> &'static str {
    match e {
        EvalMode::Delta => "delta",
        EvalMode::Scratch => "scratch",
    }
}

/// Parses a fidelity name (`table`/`netlist`).
///
/// # Errors
///
/// A usage message naming the accepted values.
pub fn fidelity_parse(s: &str) -> Result<FidelityMode, String> {
    match s {
        "table" => Ok(FidelityMode::Table),
        "netlist" => Ok(FidelityMode::Netlist),
        other => Err(format!(
            "unknown fidelity {other:?} (expected table or netlist)"
        )),
    }
}

/// One sweep job, fully specified. [`Default`] is exactly the CLI's
/// default `ttadse explore` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Template space name (`paper`/`fast`/`tiny`/`huge`); `None`
    /// follows `fast` (the `--fast`/`--paper` shorthand).
    pub space: Option<String>,
    /// The `--fast` shorthand: reduced 8-bit space and workload sizing.
    pub fast: bool,
    /// `name[:weight]` workload (or suite) specs, the CLI's
    /// `--workload` items.
    pub workloads: Vec<String>,
    /// A named weighted suite (the CLI's `--suite`).
    pub suite: Option<String>,
    /// Crypt Feistel rounds per trace (`--rounds`).
    pub rounds: Option<usize>,
    /// Search strategy.
    pub strategy: Strategy,
    /// Evaluation budget (`--budget`); must be ≥ 1 when given.
    pub budget: Option<usize>,
    /// Seed for the stochastic strategies (`--seed`).
    pub seed: Option<u64>,
    /// Test-axis lift mode (`--lift`).
    pub lift: LiftMode,
    /// Test-cost model (`--test-model`).
    pub test_model: TestModel,
    /// Cycle-count source (`--cycles`).
    pub cycles: CycleSource,
    /// Evaluation engine (`--eval`).
    pub eval: EvalMode,
    /// Area/clock axis source (`--fidelity`): back-annotated component
    /// tables, or per-point gate-level netlist elaboration.
    pub fidelity: FidelityMode,
    /// Output rendering (`--format`).
    pub format: Format,
    /// Whether to sweep on worker threads (`--parallel`/`--serial`).
    pub parallel: bool,
    /// Pinned worker count (`--threads`).
    pub threads: Option<usize>,
    /// Interconnect override: bus area per bit \[GE\] (`--bus-area`).
    pub bus_area: Option<f64>,
    /// Interconnect override: clock penalty per bus (`--bus-delay`).
    pub bus_delay: Option<f64>,
    /// Interconnect override: area per instruction bit (`--control-area`).
    pub control_area: Option<f64>,
    /// Queue priority (higher runs first; `--priority`, daemon only).
    pub priority: i64,
    /// Fault-injection hook for the daemon's test harness: `None` in
    /// real use; `"panic"` makes the worker panic mid-job so the fault
    /// suite can assert per-job degradation. Any other value is
    /// rejected at validation time.
    pub fault: Option<String>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            space: None,
            fast: false,
            workloads: Vec::new(),
            suite: None,
            rounds: None,
            strategy: Strategy::default(),
            budget: None,
            seed: None,
            lift: LiftMode::default(),
            test_model: TestModel::default(),
            cycles: CycleSource::default(),
            eval: EvalMode::default(),
            fidelity: FidelityMode::default(),
            format: Format::default(),
            parallel: true,
            threads: None,
            bus_area: None,
            bus_delay: None,
            control_area: None,
            priority: 0,
            fault: None,
        }
    }
}

fn opt_str(v: &Option<String>) -> String {
    v.as_deref().map_or_else(|| "null".into(), json::string)
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), json::int)
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), json::number)
}

impl JobSpec {
    /// Renders the spec as its canonical JSON document (the exact
    /// schema [`JobSpec::from_json`] accepts, and the wire body of
    /// `POST /run`).
    pub fn to_json(&self) -> String {
        json::object([
            ("space", opt_str(&self.space)),
            ("fast", json::boolean(self.fast)),
            (
                "workloads",
                json::array(self.workloads.iter().map(|w| json::string(w))),
            ),
            ("suite", opt_str(&self.suite)),
            ("rounds", opt_u64(self.rounds.map(|r| r as u64))),
            ("strategy", json::string(self.strategy.label())),
            ("budget", opt_u64(self.budget.map(|b| b as u64))),
            ("seed", opt_u64(self.seed)),
            ("lift", json::string(self.lift.label())),
            ("test_model", json::string(self.test_model.label())),
            ("cycles", json::string(cycles_label(self.cycles))),
            ("eval", json::string(eval_label(self.eval))),
            ("fidelity", json::string(self.fidelity.label())),
            ("format", json::string(self.format.label())),
            ("parallel", json::boolean(self.parallel)),
            ("threads", opt_u64(self.threads.map(|t| t as u64))),
            ("bus_area", opt_f64(self.bus_area)),
            ("bus_delay", opt_f64(self.bus_delay)),
            ("control_area", opt_f64(self.control_area)),
            ("priority", self.priority.to_string()),
            ("fault", opt_str(&self.fault)),
        ])
    }

    /// Parses and validates a spec document. Every field is optional
    /// (absent → the [`Default`] value); unknown fields and ill-typed
    /// values are errors.
    ///
    /// # Errors
    ///
    /// A usage-class message describing the first offending field.
    pub fn from_json(text: &str) -> Result<JobSpec, String> {
        let doc = Json::parse(text).map_err(|e| format!("bad job spec JSON: {e}"))?;
        let Json::Obj(map) = &doc else {
            return Err("job spec must be a JSON object".into());
        };
        const KNOWN: &[&str] = &[
            "space",
            "fast",
            "workloads",
            "suite",
            "rounds",
            "strategy",
            "budget",
            "seed",
            "lift",
            "test_model",
            "cycles",
            "eval",
            "fidelity",
            "format",
            "parallel",
            "threads",
            "bus_area",
            "bus_delay",
            "control_area",
            "priority",
            "fault",
        ];
        for key in map.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!("unknown job spec field {key:?}"));
            }
        }
        let defaults = JobSpec::default();
        let mut workloads = Vec::new();
        if let Some(v) = field(&doc, "workloads") {
            let items = v
                .as_arr()
                .ok_or_else(|| "field \"workloads\" must be an array".to_string())?;
            for item in items {
                workloads.push(
                    item.as_str()
                        .ok_or_else(|| "workload entries must be strings".to_string())?
                        .to_string(),
                );
            }
        }
        let priority = match field(&doc, "priority") {
            None => defaults.priority,
            Some(v) => {
                let raw = v
                    .as_f64()
                    .ok_or_else(|| "field \"priority\" must be a number".to_string())?;
                if raw.fract() != 0.0 || raw.abs() > 9_007_199_254_740_992.0 {
                    return Err("field \"priority\" must be an integer".into());
                }
                #[allow(clippy::cast_possible_truncation)]
                {
                    raw as i64
                }
            }
        };
        let spec = JobSpec {
            space: field_opt_string(&doc, "space")?,
            fast: field_opt_bool(&doc, "fast")?.unwrap_or(defaults.fast),
            workloads,
            suite: field_opt_string(&doc, "suite")?,
            rounds: field_opt_usize(&doc, "rounds")?,
            strategy: field_opt_string(&doc, "strategy")?
                .map_or(Ok(defaults.strategy), |s| Strategy::parse(&s))?,
            budget: field_opt_usize(&doc, "budget")?,
            seed: field_opt_u64(&doc, "seed")?,
            lift: field_opt_string(&doc, "lift")?.map_or(Ok(defaults.lift), |s| lift_parse(&s))?,
            test_model: field_opt_string(&doc, "test_model")?
                .map_or(Ok(defaults.test_model), |s| TestModel::parse(&s))?,
            cycles: field_opt_string(&doc, "cycles")?
                .map_or(Ok(defaults.cycles), |s| cycles_parse(&s))?,
            eval: field_opt_string(&doc, "eval")?.map_or(Ok(defaults.eval), |s| eval_parse(&s))?,
            fidelity: field_opt_string(&doc, "fidelity")?
                .map_or(Ok(defaults.fidelity), |s| fidelity_parse(&s))?,
            format: field_opt_string(&doc, "format")?
                .map_or(Ok(defaults.format), |s| Format::parse(&s))?,
            parallel: field_opt_bool(&doc, "parallel")?.unwrap_or(defaults.parallel),
            threads: field_opt_usize(&doc, "threads")?,
            bus_area: field_opt_f64(&doc, "bus_area")?,
            bus_delay: field_opt_f64(&doc, "bus_delay")?,
            control_area: field_opt_f64(&doc, "control_area")?,
            priority,
            fault: field_opt_string(&doc, "fault")?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-field checks shared by the CLI and the daemon.
    ///
    /// # Errors
    ///
    /// A usage-class message for a zero budget or an unknown fault tag.
    pub fn validate(&self) -> Result<(), String> {
        if self.budget == Some(0) {
            return Err("budget must be at least 1 (0 would evaluate nothing)".into());
        }
        if let Some(fault) = &self.fault {
            if fault != "panic" {
                return Err(format!(
                    "unknown fault {fault:?} (the only supported injection is \"panic\")"
                ));
            }
        }
        Ok(())
    }
}

fn field<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    doc.get(key).filter(|v| !v.is_null())
}

fn field_opt_string(doc: &Json, key: &str) -> Result<Option<String>, String> {
    field(doc, key)
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field {key:?} must be a string"))
        })
        .transpose()
}

fn field_opt_bool(doc: &Json, key: &str) -> Result<Option<bool>, String> {
    field(doc, key)
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| format!("field {key:?} must be a boolean"))
        })
        .transpose()
}

fn field_opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    field(doc, key)
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
        })
        .transpose()
}

fn field_opt_usize(doc: &Json, key: &str) -> Result<Option<usize>, String> {
    Ok(field_opt_u64(doc, key)?.map(|v| v as usize))
}

fn field_opt_f64(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    field(doc, key)
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| format!("field {key:?} must be a number"))
        })
        .transpose()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_roundtrips() {
        let spec = JobSpec::default();
        let parsed = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn full_spec_roundtrips() {
        let spec = JobSpec {
            space: Some("tiny".into()),
            fast: true,
            workloads: vec!["crypt:2".into(), "fir".into()],
            suite: Some("dsp".into()),
            rounds: Some(3),
            strategy: Strategy::HillClimb,
            budget: Some(100),
            seed: Some(7),
            lift: LiftMode::Full,
            test_model: TestModel::Scan,
            cycles: CycleSource::Simulate,
            eval: EvalMode::Scratch,
            fidelity: FidelityMode::Netlist,
            format: Format::Csv,
            parallel: false,
            threads: Some(2),
            bus_area: Some(6.5),
            bus_delay: Some(0.25),
            control_area: Some(1.0),
            priority: -3,
            fault: Some("panic".into()),
        };
        let parsed = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn empty_object_is_the_default_spec() {
        assert_eq!(JobSpec::from_json("{}").unwrap(), JobSpec::default());
    }

    #[test]
    fn unknown_fields_and_bad_values_fail_loudly() {
        assert!(JobSpec::from_json("{\"spcae\":\"tiny\"}")
            .unwrap_err()
            .contains("spcae"));
        assert!(JobSpec::from_json("{\"budget\":0}").is_err());
        assert!(JobSpec::from_json("{\"budget\":1.5}").is_err());
        assert!(JobSpec::from_json("{\"strategy\":\"dfs\"}").is_err());
        assert!(JobSpec::from_json("{\"fidelity\":\"rtl\"}").is_err());
        assert!(JobSpec::from_json("{\"fault\":\"segfault\"}").is_err());
        assert!(JobSpec::from_json("[1,2]").is_err());
        assert!(JobSpec::from_json("not json at all").is_err());
    }
}
