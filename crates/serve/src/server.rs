//! The sweep daemon: one warm cache, a worker pool, streamed jobs.
//!
//! A [`Server`] owns one process-wide [`SweepCache`] (sharded internally
//! — see `tta_core::cache`) that every job warms for the next, a
//! [`Queue`] scheduling admitted jobs by priority/budget/FIFO, and a
//! small worker pool that runs each job under `catch_unwind` so a
//! panicking job (or the fault suite's injected `"panic"`) fails alone:
//! the queue keeps draining, the cache stays consistent, and later jobs
//! succeed.
//!
//! ## Endpoints
//!
//! | method & path            | behaviour                                   |
//! |--------------------------|---------------------------------------------|
//! | `GET /healthz`           | liveness + queue/cache counters             |
//! | `POST /run`              | submit a job spec; streams NDJSON events    |
//! | `GET /jobs`              | job table snapshot                          |
//! | `POST /jobs/<id>/cancel` | cooperative cancel (stops within one chunk) |
//! | `POST /jobs/<id>/resume` | re-run a cancelled job from its checkpoint  |
//! | `POST /shutdown`         | graceful shutdown (also `SIGTERM`)          |
//!
//! `POST /run` answers `200` with `Transfer-Encoding: chunked` and one
//! JSON event per line: `queued`, `started`, `progress` (one per
//! evaluated chunk, carrying the live delta-engine counters), then
//! exactly one of `done` (with the fully rendered stdout document
//! embedded as a JSON string) or `error`. Invalid specs never reach the
//! queue — they answer `400` immediately. A client that disconnects
//! mid-stream cancels its job cooperatively; the job checkpoints and
//! stays resumable.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use tta_core::cache::SweepCache;
use tta_core::explore::{CancelToken, SweepProgress};
use tta_core::search::SearchCheckpoint;
use tta_core::DeltaStats;

use crate::exec::{self, JobOutput, PreparedJob};
use crate::http::{
    parse_error_status, read_request, write_error, write_response, ChunkedWriter, Request,
};
use crate::json;
use crate::queue::Queue;
use crate::spec::JobSpec;

/// Process-wide flag a `SIGTERM`/`SIGINT` handler flips; the accept
/// loop polls it alongside the `/shutdown` flag.
static TERMINATED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_terminate(_signum: i32) {
    TERMINATED.store(true, Ordering::Release);
}

/// Installs the graceful-shutdown signal handler for `SIGTERM` and
/// `SIGINT`. Idempotent; only the daemon binary calls this (tests stop
/// servers via `/shutdown`).
pub fn install_signal_handlers() {
    // The container has no libc crate; the two-argument signal(2) ABI
    // is stable enough to declare by hand. 15 = SIGTERM, 2 = SIGINT.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_terminate as *const () as usize;
    unsafe {
        signal(15, handler);
        signal(2, handler);
    }
}

/// Lifecycle of one admitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed(String),
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }
}

/// The server-side record of a job, kept after completion so cancelled
/// jobs can be resumed and `GET /jobs` can report history.
struct JobRecord {
    spec: JobSpec,
    state: JobState,
    cancel: CancelToken,
    checkpoint: Option<SearchCheckpoint>,
    evaluations: usize,
    front: usize,
}

/// One queue entry: everything a worker needs to run a job and stream
/// its events back to the waiting connection handler.
struct QueuedJob {
    id: u64,
    prepared: PreparedJob,
    resume: Option<SearchCheckpoint>,
    cancel: CancelToken,
    events: mpsc::Sender<Event>,
}

/// Worker→handler messages; the handler turns each into one NDJSON
/// line on the wire.
enum Event {
    Started,
    Progress(SweepProgress),
    Finished(Box<JobOutput>),
    Failed(String),
}

struct ServerState {
    cache: SweepCache,
    queue: Queue<QueuedJob>,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl ServerState {
    fn jobs(&self) -> MutexGuard<'_, HashMap<u64, JobRecord>> {
        // Poison tolerance everywhere a panicking worker might have
        // held a guard: one wedged job must never wedge the daemon.
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || TERMINATED.load(Ordering::Acquire)
    }
}

/// The daemon. [`Server::bind`] claims the socket (so callers learn the
/// ephemeral port before any client races in); [`Server::run`] serves
/// until `/shutdown` or a signal, then drains gracefully.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, port 0 for ephemeral) and
    /// starts `workers` job workers over `cache`.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(addr: &str, workers: usize, cache: SweepCache) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            cache,
            queue: Queue::new(),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        Ok(Server {
            listener,
            state,
            workers,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until shutdown is requested, then drains: the queue
    /// closes, running jobs are cancelled cooperatively, workers are
    /// joined, and the warm cache is flushed one final time.
    ///
    /// # Errors
    ///
    /// A final cache-flush failure (connection-level errors are
    /// per-connection, never fatal to the daemon).
    pub fn run(self) -> std::io::Result<()> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.state.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &state)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
            handlers.retain(|h| !h.is_finished());
        }
        // Graceful drain: no new jobs, cancel whatever is running (the
        // cancel is cooperative — each job checkpoints within a chunk),
        // then wait for workers and in-flight connections.
        self.state.queue.close();
        for record in self.state.jobs().values() {
            if record.state == JobState::Running {
                record.cancel.cancel();
            }
        }
        for w in self.workers {
            let _ = w.join();
        }
        for h in handlers {
            let _ = h.join();
        }
        self.state.cache.flush()
    }
}

/// Runs jobs off the queue until it closes. Each job executes under
/// `catch_unwind`: a panic marks that job failed and the loop continues
/// — the poisoned worker never takes the daemon down with it.
fn worker_loop(state: &ServerState) {
    while let Some(job) = state.queue.pop() {
        if let Some(r) = state.jobs().get_mut(&job.id) {
            r.state = JobState::Running;
        }
        let _ = job.events.send(Event::Started);
        let events = job.events.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut observer = |p: &SweepProgress| {
                let _ = events.send(Event::Progress(p.clone()));
            };
            job.prepared.run(
                Some(&state.cache),
                Some(job.cancel.clone()),
                Some(&mut observer),
                job.resume.clone(),
            )
        }));
        let mut jobs = state.jobs();
        match outcome {
            Ok(out) => {
                if let Some(r) = jobs.get_mut(&job.id) {
                    r.state = if out.cancelled {
                        JobState::Cancelled
                    } else {
                        JobState::Done
                    };
                    r.checkpoint = out.checkpoint.clone();
                    r.evaluations = out.evaluations;
                    r.front = out.front;
                }
                drop(jobs);
                let _ = job.events.send(Event::Finished(Box::new(out)));
            }
            Err(panic) => {
                // `&*panic` reaches the payload itself; a plain `&panic`
                // would coerce the Box into `dyn Any` and the downcasts
                // below would never match.
                let msg = panic_message(&*panic);
                if let Some(r) = jobs.get_mut(&job.id) {
                    r.state = JobState::Failed(msg.clone());
                }
                drop(jobs);
                let _ = job.events.send(Event::Failed(msg));
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked".into()
    }
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let request = match read_request(&mut reader) {
        Ok(r) => r,
        Err(None) => return,
        Err(Some(e)) => {
            let (status, reason) = parse_error_status(&e);
            let _ = write_error(&mut writer, status, reason, &e.to_string());
            return;
        }
    };
    let _ = route(&request, &mut writer, state);
}

fn route(req: &Request, w: &mut TcpStream, state: &ServerState) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let body = json::object([
                ("ok", json::boolean(true)),
                ("queued", json::int(state.queue.len() as u64)),
                ("jobs", json::int(state.jobs().len() as u64)),
                ("cache_entries", json::int(state.cache.len() as u64)),
            ]);
            write_json(w, &body)
        }
        ("GET", "/jobs") => {
            let jobs = state.jobs();
            let mut ids: Vec<_> = jobs.keys().copied().collect();
            ids.sort_unstable();
            let body = json::array(ids.iter().map(|id| {
                let r = &jobs[id];
                json::object([
                    ("job", json::int(*id)),
                    ("state", json::string(r.state.label())),
                    ("evaluations", json::int(r.evaluations as u64)),
                    ("front", json::int(r.front as u64)),
                    ("resumable", json::boolean(r.checkpoint.is_some())),
                ])
            }));
            write_json(w, &body)
        }
        ("POST", "/run") => run_job(req, w, state, None),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::Release);
            write_json(w, &json::object([("shutting_down", json::boolean(true))]))
        }
        ("POST", path) => {
            if let Some(id) = path
                .strip_prefix("/jobs/")
                .and_then(|rest| rest.strip_suffix("/cancel"))
                .and_then(|id| id.parse::<u64>().ok())
            {
                return cancel_job(id, w, state);
            }
            if let Some(id) = path
                .strip_prefix("/jobs/")
                .and_then(|rest| rest.strip_suffix("/resume"))
                .and_then(|id| id.parse::<u64>().ok())
            {
                return resume_job(id, req, w, state);
            }
            write_error(w, 404, "Not Found", &format!("no route for {path}"))
        }
        (method, path) => write_error(
            w,
            404,
            "Not Found",
            &format!("no route for {method} {path}"),
        ),
    }
}

fn write_json(w: &mut TcpStream, body: &str) -> std::io::Result<()> {
    let mut framed = body.to_string();
    framed.push('\n');
    write_response(w, 200, "OK", "application/json", framed.as_bytes())
}

fn cancel_job(id: u64, w: &mut TcpStream, state: &ServerState) -> std::io::Result<()> {
    let jobs = state.jobs();
    match jobs.get(&id) {
        None => {
            drop(jobs);
            write_error(w, 404, "Not Found", &format!("no job {id}"))
        }
        Some(r) => {
            r.cancel.cancel();
            let was = r.state.label();
            drop(jobs);
            write_json(
                w,
                &json::object([
                    ("job", json::int(id)),
                    ("cancelled", json::boolean(true)),
                    ("state", json::string(was)),
                ]),
            )
        }
    }
}

fn resume_job(
    id: u64,
    req: &Request,
    w: &mut TcpStream,
    state: &ServerState,
) -> std::io::Result<()> {
    let jobs = state.jobs();
    let Some(r) = jobs.get(&id) else {
        drop(jobs);
        return write_error(w, 404, "Not Found", &format!("no job {id}"));
    };
    let Some(checkpoint) = r.checkpoint.clone() else {
        let state_label = r.state.label();
        drop(jobs);
        return write_error(
            w,
            409,
            "Conflict",
            &format!("job {id} is {state_label} and has no checkpoint to resume from"),
        );
    };
    let spec = r.spec.clone();
    drop(jobs);
    run_job(req, w, state, Some((spec, checkpoint)))
}

/// Admits and streams one job. `resume_from` re-runs a stored spec from
/// its checkpoint (the `/jobs/<id>/resume` path) instead of parsing a
/// spec from the request body.
fn run_job(
    req: &Request,
    w: &mut TcpStream,
    state: &ServerState,
    resume_from: Option<(JobSpec, SearchCheckpoint)>,
) -> std::io::Result<()> {
    let (spec, checkpoint) = match resume_from {
        Some((spec, cp)) => (spec, Some(cp)),
        None => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(s) if !s.trim().is_empty() => s,
                _ => {
                    return write_error(w, 400, "Bad Request", "expected a JSON job spec body");
                }
            };
            match JobSpec::from_json(body) {
                Ok(spec) => (spec, None),
                Err(e) => return write_error(w, 400, "Bad Request", &e),
            }
        }
    };
    // Validation runs *before* queueing: a bad spec answers 400 here
    // and the queue never sees it.
    let prepared = match exec::prepare(&spec) {
        Ok(p) => p,
        Err(e) => return write_error(w, 400, "Bad Request", &e),
    };
    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    state.jobs().insert(
        id,
        JobRecord {
            spec: spec.clone(),
            state: JobState::Queued,
            cancel: cancel.clone(),
            checkpoint: None,
            evaluations: 0,
            front: 0,
        },
    );
    let admitted = state.queue.push(
        QueuedJob {
            id,
            prepared,
            resume: checkpoint,
            cancel: cancel.clone(),
            events: tx,
        },
        spec.priority,
        spec.budget,
    );
    if !admitted {
        state.jobs().remove(&id);
        return write_error(w, 503, "Service Unavailable", "daemon is shutting down");
    }
    let mut out = ChunkedWriter::begin(w.try_clone()?, "application/x-ndjson")?;
    let mut line = json::object([("event", json::string("queued")), ("job", json::int(id))]);
    line.push('\n');
    let mut client_gone = out.chunk(line.as_bytes()).is_err();
    // Drain events until the job reaches a terminal state. If the
    // client hangs up mid-stream, cancel the job cooperatively but keep
    // draining so the record still lands in a terminal state — the
    // checkpoint stays resumable.
    while let Ok(event) = rx.recv() {
        let (line, terminal) = render_event(id, &event);
        if !client_gone && out.chunk(line.as_bytes()).is_err() {
            client_gone = true;
            cancel.cancel();
        }
        if terminal {
            break;
        }
    }
    if !client_gone {
        let _ = out.finish();
    }
    Ok(())
}

/// Renders one event as an NDJSON line; the bool marks terminal events.
fn render_event(id: u64, event: &Event) -> (String, bool) {
    let (mut line, terminal) = match event {
        Event::Started => (
            json::object([("event", json::string("started")), ("job", json::int(id))]),
            false,
        ),
        Event::Progress(p) => (
            json::object([
                ("event", json::string("progress")),
                ("job", json::int(id)),
                ("round", json::int(p.round as u64)),
                ("visited", json::int(p.visited as u64)),
                ("feasible", json::int(p.feasible as u64)),
                ("infeasible", json::int(p.infeasible as u64)),
                ("front", json::int(p.front as u64)),
                ("space_points", json::int(p.space_len as u64)),
                ("delta", delta_json(p.delta.as_ref())),
            ]),
            false,
        ),
        Event::Finished(out) => (
            json::object([
                ("event", json::string("done")),
                ("job", json::int(id)),
                ("evaluations", json::int(out.evaluations as u64)),
                ("front", json::int(out.front as u64)),
                ("cancelled", json::boolean(out.cancelled)),
                ("cache", json::string(out.cache)),
                (
                    "flush_failure",
                    out.flush_failure
                        .as_deref()
                        .map_or_else(|| "null".into(), json::string),
                ),
                ("delta", delta_json(out.delta.as_ref())),
                ("output", json::string(&out.output)),
            ]),
            true,
        ),
        Event::Failed(msg) => (
            json::object([
                ("event", json::string("error")),
                ("job", json::int(id)),
                ("error", json::string(msg)),
            ]),
            true,
        ),
    };
    line.push('\n');
    (line, terminal)
}

/// Delta-engine counters as a JSON value (`null` under scratch eval).
/// On the wire the arena counters are fair game — NDJSON events are
/// telemetry, not the byte-stable stdout document.
fn delta_json(delta: Option<&DeltaStats>) -> String {
    delta.map_or_else(
        || "null".into(),
        |d| {
            json::object([
                ("fold_carries", json::int(d.fold_carries)),
                ("scratch_fallbacks", json::int(d.scratch_fallbacks)),
                ("arena_hits", json::int(d.arena_hits)),
                ("arena_misses", json::int(d.arena_misses)),
                ("arena_evictions", json::int(d.arena_evictions)),
            ])
        },
    )
}
