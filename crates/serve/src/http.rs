//! A deliberately small HTTP/1.1 subset for the serve daemon.
//!
//! The container has no HTTP stack, and the protocol surface the
//! daemon needs is tiny: framed requests with `Content-Length` bodies,
//! plain responses, and `Transfer-Encoding: chunked` responses for
//! streaming job events. Hand-rolling that subset keeps the whole wire
//! layer auditable and — like the hand-rolled JSON in [`crate::json`] —
//! byte-deterministic.
//!
//! Hard limits protect the daemon from hostile or broken clients: the
//! request head is capped at 16 KiB and bodies at 1 MiB; anything over
//! (or malformed, or truncated) parses to an error the server answers
//! with a clean 4xx before the job queue is ever involved — the
//! fault-injection suite drives exactly these paths.

use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted request-head size (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request-body size.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request: method, path, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token, e.g. `GET`.
    pub method: String,
    /// Origin-form path, e.g. `/jobs/3/cancel`.
    pub path: String,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed; maps onto a 4xx answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed before a full request was read.
    Truncated,
    /// The bytes were not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// The head or body exceeded its cap.
    TooLarge(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "truncated request"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::TooLarge(m) => write!(f, "request too large: {m}"),
        }
    }
}

/// The status code a [`ParseError`] answers with.
pub fn parse_error_status(e: &ParseError) -> (u16, &'static str) {
    match e {
        ParseError::Truncated | ParseError::Malformed(_) => (400, "Bad Request"),
        ParseError::TooLarge(_) => (413, "Payload Too Large"),
    }
}

/// Reads one request off `stream`. `Err(None)` means the peer closed
/// cleanly before sending anything (not worth answering).
///
/// # Errors
///
/// [`ParseError`] for truncated, malformed or oversized requests.
pub fn read_request(stream: &mut BufReader<impl Read>) -> Result<Request, Option<ParseError>> {
    let mut line = String::new();
    match read_crlf_line(stream, &mut line) {
        Ok(0) => return Err(None),
        Ok(_) => {}
        Err(e) => return Err(Some(e)),
    }
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(Some(ParseError::Malformed(format!(
                "bad request line {line:?}"
            ))))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(Some(ParseError::Malformed(format!(
            "unsupported version {version:?}"
        ))));
    }
    let method = method.to_string();
    let path = path.to_string();
    let mut head_bytes = line.len();
    let mut content_length: usize = 0;
    loop {
        line.clear();
        match read_crlf_line(stream, &mut line) {
            Ok(0) => return Err(Some(ParseError::Truncated)),
            Ok(n) => head_bytes += n,
            Err(e) => return Err(Some(e)),
        }
        if line.is_empty() {
            break;
        }
        if head_bytes > MAX_HEAD {
            return Err(Some(ParseError::TooLarge(format!(
                "request head exceeds {MAX_HEAD} bytes"
            ))));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(Some(ParseError::Malformed(format!(
                "header without colon: {line:?}"
            ))));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| {
                Some(ParseError::Malformed(format!(
                    "bad content-length {:?}",
                    value.trim()
                )))
            })?;
        }
    }
    if content_length > MAX_BODY {
        return Err(Some(ParseError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY}"
        ))));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|_| Some(ParseError::Truncated))?;
    Ok(Request { method, path, body })
}

/// Reads one CRLF-terminated line (CRLF stripped) into `out`, returning
/// the number of raw bytes consumed (0 at clean EOF).
fn read_crlf_line(
    stream: &mut BufReader<impl Read>,
    out: &mut String,
) -> Result<usize, ParseError> {
    let mut raw = Vec::new();
    let n = stream
        .read_until(b'\n', &mut raw)
        .map_err(|e| ParseError::Malformed(format!("read failed: {e}")))?;
    if n == 0 {
        return Ok(0);
    }
    if raw.len() > MAX_HEAD {
        return Err(ParseError::TooLarge(format!(
            "header line exceeds {MAX_HEAD} bytes"
        )));
    }
    if !raw.ends_with(b"\n") {
        return Err(ParseError::Truncated);
    }
    raw.pop();
    if raw.ends_with(b"\r") {
        raw.pop();
    }
    let line = String::from_utf8(raw)
        .map_err(|_| ParseError::Malformed("non-utf8 header bytes".into()))?;
    out.push_str(&line);
    Ok(n)
}

/// Writes a complete (non-streaming) response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON error body `{"error": ...}` with the given status.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_error(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    message: &str,
) -> std::io::Result<()> {
    let body = format!("{{\"error\":{}}}\n", crate::json::string(message));
    write_response(stream, status, reason, "application/json", body.as_bytes())
}

/// A `Transfer-Encoding: chunked` response writer: one chunk per
/// streamed event line, flushed eagerly so clients see progress live.
pub struct ChunkedWriter<W: Write> {
    stream: W,
    finished: bool,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the streaming response head and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn begin(mut stream: W, content_type: &str) -> std::io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        Ok(ChunkedWriter {
            stream,
            finished: false,
        })
    }

    /// Sends one chunk. A write failure here is how the daemon learns
    /// the client hung up mid-stream.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (e.g. peer disconnect).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.finished = true;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed response head as the thin client sees it.
#[derive(Debug)]
pub struct ResponseHead {
    /// Numeric status code.
    pub status: u16,
    /// Whether the body is chunk-framed.
    pub chunked: bool,
    /// `Content-Length` when present.
    pub content_length: Option<usize>,
}

/// Reads a response head (status line + headers).
///
/// # Errors
///
/// An [`std::io::Error`] describing the malformed or truncated head.
pub fn read_response_head(stream: &mut BufReader<impl Read>) -> std::io::Result<ResponseHead> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let mut line = String::new();
    read_crlf_line(stream, &mut line).map_err(|e| bad(e.to_string()))?;
    let status = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {line:?}")))?;
    let mut head = ResponseHead {
        status,
        chunked: false,
        content_length: None,
    };
    loop {
        line.clear();
        match read_crlf_line(stream, &mut line).map_err(|e| bad(e.to_string()))? {
            0 => return Err(bad("truncated response head".into())),
            _ if line.is_empty() => break,
            _ => {}
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("transfer-encoding")
                && value.eq_ignore_ascii_case("chunked")
            {
                head.chunked = true;
            } else if name.eq_ignore_ascii_case("content-length") {
                head.content_length = value.parse().ok();
            }
        }
    }
    Ok(head)
}

/// Reads a chunk-framed body to completion, returning the payload.
///
/// # Errors
///
/// An [`std::io::Error`] for malformed framing or early EOF.
pub fn read_chunked_body(stream: &mut BufReader<impl Read>) -> std::io::Result<Vec<u8>> {
    let mut out = Vec::new();
    while read_chunk_into(stream, &mut out)? > 0 {}
    Ok(out)
}

/// Reads one chunk into `out`, returning its size (0 = final chunk).
///
/// # Errors
///
/// An [`std::io::Error`] for malformed framing or early EOF.
pub fn read_chunk_into(
    stream: &mut BufReader<impl Read>,
    out: &mut Vec<u8>,
) -> std::io::Result<usize> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let mut line = String::new();
    if read_crlf_line(stream, &mut line).map_err(|e| bad(e.to_string()))? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "stream ended mid-body (no terminating chunk)",
        ));
    }
    let size = usize::from_str_radix(line.trim(), 16)
        .map_err(|_| bad(format!("bad chunk size {line:?}")))?;
    let mut payload = vec![0u8; size + 2];
    stream.read_exact(&mut payload)?;
    if &payload[size..] != b"\r\n" {
        return Err(bad("chunk missing CRLF terminator".into()));
    }
    payload.truncate(size);
    out.extend_from_slice(&payload);
    Ok(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, Option<ParseError>> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_framed_post() {
        let req = parse(b"POST /run HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_truncated_and_malformed_requests() {
        assert!(matches!(parse(b""), Err(None)), "clean close");
        assert!(matches!(
            parse(b"POST /run HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"),
            Err(Some(ParseError::Truncated))
        ));
        assert!(matches!(
            parse(b"POST /run HTTP/1.1\r\nContent-Leng"),
            Err(Some(ParseError::Truncated))
        ));
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(Some(ParseError::Malformed(_)))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/9.9\r\n\r\n"),
            Err(Some(ParseError::Malformed(_)))
        ));
        assert!(matches!(
            parse(b"POST /run HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(Some(ParseError::Malformed(_)))
        ));
    }

    #[test]
    fn caps_oversized_requests() {
        let huge = format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(Some(ParseError::TooLarge(_)))
        ));
        let mut long_head = String::from("GET / HTTP/1.1\r\n");
        long_head.push_str(&"X-Pad: y\r\n".repeat(MAX_HEAD / 8));
        long_head.push_str("\r\n");
        assert!(matches!(
            parse(long_head.as_bytes()),
            Err(Some(ParseError::TooLarge(_)))
        ));
    }

    #[test]
    fn chunked_roundtrip() {
        let mut wire = Vec::new();
        let mut w = ChunkedWriter::begin(&mut wire, "application/x-ndjson").unwrap();
        w.chunk(b"{\"event\":\"queued\"}\n").unwrap();
        w.chunk(b"{\"event\":\"done\"}\n").unwrap();
        w.finish().unwrap();

        let mut r = BufReader::new(wire.as_slice());
        let head = read_response_head(&mut r).unwrap();
        assert_eq!(head.status, 200);
        assert!(head.chunked);
        let body = read_chunked_body(&mut r).unwrap();
        assert_eq!(body, b"{\"event\":\"queued\"}\n{\"event\":\"done\"}\n");
    }

    #[test]
    fn plain_response_roundtrip() {
        let mut wire = Vec::new();
        write_error(&mut wire, 400, "Bad Request", "nope").unwrap();
        let mut r = BufReader::new(wire.as_slice());
        let head = read_response_head(&mut r).unwrap();
        assert_eq!(head.status, 400);
        assert!(!head.chunked);
        let mut body = vec![0u8; head.content_length.unwrap()];
        r.read_exact(&mut body).unwrap();
        assert_eq!(body, b"{\"error\":\"nope\"}\n");
    }
}
