//! Minimal deterministic JSON rendering.
//!
//! The container has no serde, and the output contract is stronger than
//! serde's anyway: *byte-identical* output for identical results (the
//! warm-vs-cold cache acceptance check literally `diff`s two runs, and
//! the serve daemon's remote output must match a local run byte for
//! byte). So values are rendered by hand with a fixed field order,
//! `\u{...}`-free minimal escaping, and Rust's shortest-roundtrip float
//! formatting (identical bit pattern ⇒ identical text). The inverse
//! direction — parsing job specs off the wire — lives in
//! [`crate::jsonparse`].

use std::fmt::Write;

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON value: shortest-roundtrip decimal for
/// finite values, `null` for NaN/∞ (JSON has no non-finite numbers).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // Rust may print a bare exponent form for extreme values; JSON
        // accepts it, but normalise the one illegal case `inf`-free.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".into()
    }
}

/// Renders an integer count as a JSON number.
pub fn int(v: u64) -> String {
    v.to_string()
}

/// Renders a `bool` as a JSON literal.
pub fn boolean(v: bool) -> String {
    String::from(if v { "true" } else { "false" })
}

/// Renders an optional `f64` (`None` → `null`).
pub fn opt_number(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), number)
}

/// Joins already-rendered JSON values into an array literal.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Joins rendered `"key": value` pairs into an object literal; keys are
/// escaped here, values must already be valid JSON.
pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&string(k));
        out.push(':');
        out.push_str(&v);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(opt_number(None), "null");
    }

    #[test]
    fn composes_objects_and_arrays() {
        let obj = object([("a", number(1.0)), ("b", array([string("x")]))]);
        assert_eq!(obj, "{\"a\":1.0,\"b\":[\"x\"]}");
    }
}
