//! The thin `--remote` client: submit a spec, stream events, emit the
//! daemon's rendered output verbatim.
//!
//! The client never renders anything itself — the `done` event carries
//! the complete stdout document the daemon produced via the same
//! [`crate::exec`] path a local run uses, so writing it through
//! untouched is what makes `ttadse explore --remote URL` byte-identical
//! to `ttadse explore`. Progress events become human-readable stderr
//! lines (stderr carries telemetry everywhere in this workspace; stdout
//! is the deterministic document).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

use crate::http::{read_chunk_into, read_response_head};
use crate::jsonparse::Json;
use crate::spec::JobSpec;

/// What a finished remote job reported besides its stdout document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteSummary {
    /// The daemon-assigned job id.
    pub job: u64,
    /// Points evaluated server-side.
    pub evaluations: u64,
    /// Pareto-front size.
    pub front: u64,
    /// Whether the job was cancelled (output is the partial render).
    pub cancelled: bool,
    /// The daemon's per-job cache outcome label.
    pub cache: String,
    /// The daemon's cache-flush error, if flushing failed.
    pub flush_failure: Option<String>,
}

/// Splits an `http://host:port` (or bare `host:port`) URL into the
/// address to connect to.
///
/// # Errors
///
/// A usage message for unsupported schemes or a missing port.
pub fn server_addr(url: &str) -> Result<&str, String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    if rest.starts_with("https://") || (url.contains("://") && !url.starts_with("http://")) {
        return Err(format!(
            "unsupported URL {url:?}: only http:// is supported"
        ));
    }
    let addr = rest.split('/').next().unwrap_or("");
    if addr.is_empty() || !addr.contains(':') {
        return Err(format!("remote URL {url:?} must include host:port"));
    }
    Ok(addr)
}

/// Submits `spec` to the daemon at `url` and streams the job: progress
/// events to `err`, the final rendered document to `out` — verbatim,
/// byte-identical to a local run.
///
/// # Errors
///
/// Connection failures, protocol violations, HTTP error answers
/// (`{"error": ...}` bodies are unwrapped), and server-side job
/// failures, all as displayable strings.
pub fn run_remote(
    url: &str,
    spec: &JobSpec,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<RemoteSummary, String> {
    let addr = server_addr(url)?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let body = spec.to_json();
    {
        let mut w = &stream;
        write!(
            w,
            "POST /run HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .and_then(|()| w.write_all(body.as_bytes()))
        .and_then(|()| w.flush())
        .map_err(|e| format!("request to {addr} failed: {e}"))?;
    }
    let mut reader = BufReader::new(&stream);
    let head =
        read_response_head(&mut reader).map_err(|e| format!("bad response from {addr}: {e}"))?;
    if head.status != 200 {
        return Err(error_body(&mut reader, &head, addr));
    }
    if !head.chunked {
        return Err(format!("response from {addr} is not a chunked stream"));
    }
    stream_events(&mut reader, out, err).map_err(|e| format!("stream from {addr} failed: {e}"))?
}

/// Reads an HTTP error body and extracts its `{"error": ...}` message.
fn error_body(
    reader: &mut BufReader<&TcpStream>,
    head: &crate::http::ResponseHead,
    addr: &str,
) -> String {
    let mut body = Vec::new();
    if head.chunked {
        if let Ok(b) = crate::http::read_chunked_body(reader) {
            body = b;
        }
    } else if let Some(n) = head.content_length {
        body = vec![0u8; n];
        let _ = reader.read_exact(&mut body);
    }
    let text = String::from_utf8_lossy(&body);
    let message = Json::parse(text.trim())
        .ok()
        .and_then(|j| j.get("error").and_then(Json::as_str).map(String::from))
        .unwrap_or_else(|| text.trim().to_string());
    format!("server at {addr} answered {}: {message}", head.status)
}

/// Drains the NDJSON event stream. Chunk boundaries need not align
/// with line boundaries, so lines are re-framed from a rolling buffer.
fn stream_events(
    reader: &mut BufReader<&TcpStream>,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<Result<RemoteSummary, String>> {
    let mut buffer: Vec<u8> = Vec::new();
    let mut scanned = 0usize;
    loop {
        let n = read_chunk_into(reader, &mut buffer)?;
        while let Some(nl) = buffer[scanned..].iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buffer.drain(..scanned + nl + 1).collect();
            scanned = 0;
            let line = String::from_utf8_lossy(&line);
            match handle_event(line.trim(), err)? {
                EventOutcome::Continue => {}
                EventOutcome::Done(summary, output) => {
                    out.write_all(output.as_bytes())?;
                    out.flush()?;
                    return Ok(Ok(summary));
                }
                EventOutcome::Failed(message) => return Ok(Err(message)),
            }
        }
        scanned = buffer.len();
        if n == 0 {
            return Ok(Err("stream ended without a terminal event".into()));
        }
    }
}

enum EventOutcome {
    Continue,
    Done(RemoteSummary, String),
    Failed(String),
}

fn handle_event(line: &str, err: &mut dyn Write) -> std::io::Result<EventOutcome> {
    if line.is_empty() {
        return Ok(EventOutcome::Continue);
    }
    let Ok(event) = Json::parse(line) else {
        return Ok(EventOutcome::Failed(format!(
            "unparsable event from server: {line:?}"
        )));
    };
    let kind = event.get("event").and_then(Json::as_str).unwrap_or("");
    let job = event.get("job").and_then(Json::as_u64).unwrap_or(0);
    match kind {
        "queued" => writeln!(err, "remote job {job}: queued")?,
        "started" => writeln!(err, "remote job {job}: started")?,
        "progress" => {
            let visited = event.get("visited").and_then(Json::as_u64).unwrap_or(0);
            let space = event
                .get("space_points")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let front = event.get("front").and_then(Json::as_u64).unwrap_or(0);
            write!(
                err,
                "remote job {job}: visited {visited}/{space}, front {front}"
            )?;
            if let Some(delta) = event.get("delta").filter(|d| !d.is_null()) {
                let carries = delta
                    .get("fold_carries")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let refolds = delta
                    .get("scratch_fallbacks")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                write!(err, " (delta: {carries} carries, {refolds} refolds)")?;
            }
            writeln!(err)?;
        }
        "done" => {
            let Some(output) = event.get("output").and_then(Json::as_str) else {
                return Ok(EventOutcome::Failed("done event without output".into()));
            };
            let summary = RemoteSummary {
                job,
                evaluations: event.get("evaluations").and_then(Json::as_u64).unwrap_or(0),
                front: event.get("front").and_then(Json::as_u64).unwrap_or(0),
                cancelled: event
                    .get("cancelled")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                cache: event
                    .get("cache")
                    .and_then(Json::as_str)
                    .unwrap_or("none")
                    .to_string(),
                flush_failure: event
                    .get("flush_failure")
                    .and_then(Json::as_str)
                    .map(String::from),
            };
            return Ok(EventOutcome::Done(summary, output.to_string()));
        }
        "error" => {
            let message = event
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server-side failure")
                .to_string();
            return Ok(EventOutcome::Failed(format!(
                "remote job {job} failed: {message}"
            )));
        }
        other => writeln!(err, "remote job {job}: ignoring unknown event {other:?}")?,
    }
    Ok(EventOutcome::Continue)
}

/// Sends `POST path` with an empty body and returns the JSON answer —
/// the helper behind cancel/resume/shutdown control calls and tests.
///
/// # Errors
///
/// Connection/protocol failures and non-200 answers, as displayable
/// strings.
pub fn control(url: &str, path: &str) -> Result<Json, String> {
    let addr = server_addr(url)?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    {
        let mut w = &stream;
        write!(
            w,
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        )
        .and_then(|()| w.flush())
        .map_err(|e| format!("request to {addr} failed: {e}"))?;
    }
    let mut reader = BufReader::new(&stream);
    let head =
        read_response_head(&mut reader).map_err(|e| format!("bad response from {addr}: {e}"))?;
    if head.status != 200 {
        return Err(error_body(&mut reader, &head, addr));
    }
    let mut body = vec![0u8; head.content_length.unwrap_or(0)];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short response from {addr}: {e}"))?;
    Json::parse(String::from_utf8_lossy(&body).trim())
        .map_err(|e| format!("unparsable answer from {addr}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_forms_resolve_to_addresses() {
        assert_eq!(
            server_addr("http://127.0.0.1:7878").unwrap(),
            "127.0.0.1:7878"
        );
        assert_eq!(server_addr("127.0.0.1:7878").unwrap(), "127.0.0.1:7878");
        assert_eq!(server_addr("http://[::1]:7878/").unwrap(), "[::1]:7878");
        assert!(server_addr("https://secure:443").is_err());
        assert!(server_addr("ftp://x:1").is_err());
        assert!(server_addr("http://portless").is_err());
    }
}
