//! Minimal JSON *parsing*, the inverse of [`crate::json`].
//!
//! The daemon accepts job specs and the client consumes event streams,
//! both as JSON, and the container has no serde — so this is a small
//! recursive-descent parser over the full JSON grammar: all escape
//! sequences including `\uXXXX` surrogate pairs, a recursion-depth
//! limit so a hostile request cannot blow the stack, and precise error
//! messages (fault-injection tests assert that malformed specs are
//! rejected with a clean HTTP error, not a wedged connection).

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys keep a sorted map — the daemon's
/// spec schema has no duplicate keys, and sorted iteration keeps
/// error listings deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Duplicate keys are rejected at parse time.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON document (trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer (rejects
    /// fractions, negatives and anything above 2^53 where `f64` loses
    /// integers).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&v) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(v as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected byte {other:#04x} at byte {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate object key {key:?}"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape consumed its input
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("unescaped control byte at {}", self.pos))
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim;
                    // the input is a &str, so they are already valid.
                    let start = self.pos;
                    let mut end = self.pos + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid utf-8".to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    /// Reads the 4 hex digits after `\u` (cursor already past the `u`),
    /// combining a leading surrogate with its `\uXXXX` trailer.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // A high surrogate must be followed by an escaped low one.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| "bad surrogate pair".into());
                }
            }
            return Err("lone high surrogate".into());
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err("lone low surrogate".into());
        }
        char::from_u32(first).ok_or_else(|| "bad \\u escape".into())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(digits).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"s":"x\n\"y\""}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert!(v.get("b").unwrap().get("c").unwrap().is_null());
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn roundtrips_the_renderer() {
        // Whatever crate::json renders, this parser reads back.
        let rendered = crate::json::object([
            ("text", crate::json::string("tab\there \"quoted\" \\ done")),
            ("n", crate::json::number(1.5)),
            ("flag", crate::json::boolean(false)),
            ("list", crate::json::array([crate::json::int(7)])),
        ]);
        let v = Json::parse(&rendered).unwrap();
        assert_eq!(
            v.get("text").unwrap().as_str(),
            Some("tab\there \"quoted\" \\ done")
        );
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            v.get("list").unwrap().as_arr().unwrap()[0].as_u64(),
            Some(7)
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀")
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "01e",
            "\"\\x\"",
            "{\"a\":1}x",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_protects_the_stack() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn integer_accessor_is_exact() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("42.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
