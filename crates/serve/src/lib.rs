//! Sweep-as-a-service for the TTA design-space explorer.
//!
//! This crate turns the one-shot `ttadse explore` sweep into a
//! long-running service while *guaranteeing* the remote path cannot
//! drift from the local one:
//!
//! - [`spec`] — the wire-level [`spec::JobSpec`]: one JSON object per
//!   job, round-tripping exactly the knobs `ttadse explore` accepts.
//! - [`exec`] — the shared executor. The local CLI and the daemon's
//!   workers both call [`exec::prepare`] → [`exec::PreparedJob::run`]
//!   and emit [`exec::JobOutput::output`] verbatim, so `--remote`
//!   output is byte-identical to a local run by construction.
//! - [`json`] / [`jsonparse`] — deterministic hand-rolled JSON in both
//!   directions (the container has no serde, and the byte-identity
//!   contract is stronger than serde's guarantees anyway).
//! - [`http`] — a deliberately small HTTP/1.1 subset: framed requests,
//!   plain and chunked responses, nothing a hand audit can't cover.
//! - [`queue`] — the budget/priority job scheduler the worker pool
//!   drains.
//! - [`server`] — the daemon: shared warm [`tta_core::cache::SweepCache`]
//!   behind sharded locks, worker pool with per-job panic isolation,
//!   NDJSON progress streaming, cancel/resume, graceful SIGTERM.
//! - [`client`] — the thin `ttadse explore --remote URL` client.
//!
//! The protocol is documented in `docs/SERVE.md`, which is doc-tested
//! below so its embedded examples cannot rot.

#![warn(missing_docs)]

pub mod client;
pub mod exec;
pub mod http;
pub mod json;
pub mod jsonparse;
pub mod queue;
pub mod server;
pub mod spec;

#[cfg(doctest)]
mod serve_guide {
    #![doc = include_str!("../../../docs/SERVE.md")]
}
