//! The shared sweep executor: resolve a [`JobSpec`], run it, render it.
//!
//! `ttadse explore` (local) and the serve daemon's workers run jobs
//! through the *same* [`prepare`] → [`PreparedJob::run`] pipeline, and
//! both emit the string [`JobOutput::output`] verbatim — which is how
//! `--remote` output is byte-identical to a local run *by construction*
//! rather than by parallel maintenance of two render paths.
//!
//! Validation ([`prepare`]) is deliberately split from execution: the
//! daemon rejects an unresolvable spec with a clean HTTP error before
//! the job ever reaches the queue, while the sweep itself can only fail
//! by being cancelled (or by the injected test fault).

use std::io::Write;

use tta_arch::template::TemplateSpace;
use tta_core::cache::SweepCache;
use tta_core::explore::{
    CacheStatus, CancelToken, Exploration, ExploreResult, FidelityMode, LiftMode, SweepProgress,
};
use tta_core::models::{InterconnectModel, ScanTestCostModel};
use tta_core::report::TextTable;
use tta_core::search::SearchCheckpoint;
use tta_core::{ComponentDb, DeltaStats};
use tta_workloads::{SuiteParams, SuiteRegistry, WeightedWorkload};

use crate::json;
use crate::spec::{Format, JobSpec, Strategy, TestModel};

/// Splits a `name[:weight]` workload item into its parts.
///
/// # Errors
///
/// A usage message for an unparsable or non-positive weight.
pub fn parse_workload_spec(spec: &str) -> Result<(&str, f64), String> {
    let (name, weight) = match spec.split_once(':') {
        None => (spec, 1.0),
        Some((name, raw)) => {
            let weight: f64 = raw
                .parse()
                .map_err(|_| format!("workload weight {raw:?} in {spec:?} does not parse"))?;
            (name, weight)
        }
    };
    if !weight.is_finite() || weight <= 0.0 {
        return Err(format!(
            "workload weight in {spec:?} must be finite and > 0"
        ));
    }
    Ok((name, weight))
}

fn space_of(spec: &JobSpec) -> Result<TemplateSpace, String> {
    // `fast` is the scale shorthand the figure subcommands use; let it
    // pick the space here too, but an explicit space name always wins.
    let name = match &spec.space {
        Some(name) => name.as_str(),
        None if spec.fast => "fast",
        None => "paper",
    };
    match name {
        "paper" => Ok(TemplateSpace::paper_default()),
        "fast" => Ok(TemplateSpace::fast_default()),
        "tiny" => Ok(TemplateSpace::tiny()),
        "huge" => Ok(TemplateSpace::huge()),
        other => Err(format!(
            "unknown space {other:?} (expected paper, fast, tiny or huge)"
        )),
    }
}

/// Workload sizing for a scale, with the spec's `rounds` overriding the
/// crypt trace length.
fn suite_params(spec: &JobSpec, paper_scale: bool) -> SuiteParams {
    let mut params = if paper_scale {
        SuiteParams::paper()
    } else {
        SuiteParams::fast()
    };
    if let Some(rounds) = spec.rounds {
        params.crypt_rounds = rounds;
    }
    params
}

/// Registry names of the members of `suite_name`, when it names a
/// registered suite.
fn suite_member_names<'r>(registry: &'r SuiteRegistry, suite_name: &str) -> Option<Vec<&'r str>> {
    registry
        .suites()
        .iter()
        .find(|s| s.name == suite_name)
        .map(|s| s.members.iter().map(|(n, _)| n.as_str()).collect())
}

/// Resolves the spec's `suite` and every `workloads` item against the
/// standard registry. The candidate lists in error messages are derived
/// from the registry, so a newly registered workload can never drift
/// out of the help text.
fn workloads_of(
    registry: &SuiteRegistry,
    spec: &JobSpec,
    paper_scale: bool,
) -> Result<Vec<WeightedWorkload>, String> {
    let params = suite_params(spec, paper_scale);
    let mut out: Vec<WeightedWorkload> = Vec::new();
    if let Some(name) = &spec.suite {
        out.extend(registry.instantiate(name, &params).ok_or_else(|| {
            format!(
                "unknown suite {name:?} (expected {})",
                registry.suite_names().join(", ")
            )
        })?);
    }
    // Repeats of the same *explicit* workload are rejected — as is an
    // explicit workload that a requested suite already includes: the
    // user almost certainly meant one weight, and silently compounding
    // (`fft:2 fft:3` acting as a single heavier member, or a dsp suite
    // plus `fft:2` scheduling fft twice) mis-scales the exec-time axis
    // with no diagnostic. Scaling a *suite* in workload position stays
    // multiplicative per member by design — `dsp:2` means "the dsp
    // suite, every member twice as heavy". `in_suite` is pre-scanned so
    // the rejection is order-independent.
    let mut in_suite: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    let suite_specs = spec.suite.iter().map(|s| s.as_str()).chain(
        spec.workloads
            .iter()
            .filter_map(|s| parse_workload_spec(s).ok().map(|(n, _)| n)),
    );
    for suite_name in suite_specs {
        if let Some(members) = suite_member_names(registry, suite_name) {
            for member in members {
                in_suite.entry(member).or_insert(suite_name);
            }
        }
    }
    let mut explicit_seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for item in &spec.workloads {
        let (name, weight) = parse_workload_spec(item)?;
        if let Some(w) = registry.build(name, &params) {
            if !explicit_seen.insert(name) {
                return Err(format!(
                    "workload {name:?} appears more than once; \
                     give it a single name:weight spec instead of repeating it"
                ));
            }
            if let Some(suite) = in_suite.get(name) {
                return Err(format!(
                    "workload {name:?} is already included by suite {suite:?}; \
                     scale the suite ({suite}:W) or list its members explicitly \
                     instead of adding the workload twice"
                ));
            }
            out.push(WeightedWorkload {
                workload: w,
                weight,
            });
        } else if let Some(members) = registry.instantiate(name, &params) {
            // A suite name in workload position (e.g. the historical
            // `all`); a `:weight` scales every member. A *repeated*
            // suite name would duplicate every member with compounding
            // weights — rejected like a repeated workload.
            if !explicit_seen.insert(name) {
                return Err(format!(
                    "suite {name:?} appears more than once; \
                     give it a single name:weight spec instead of repeating it"
                ));
            }
            if spec.suite.as_deref() == Some(name) {
                return Err(format!(
                    "suite {name:?} was already requested; \
                     scaling it again would double every member"
                ));
            }
            out.extend(members.into_iter().map(|mut m| {
                m.weight *= weight;
                m
            }));
        } else {
            return Err(format!(
                "unknown workload {name:?} (expected a workload: {}; or a suite: {})",
                registry.workload_names().join(", "),
                registry.suite_names().join(", ")
            ));
        }
    }
    if out.is_empty() {
        // The historical default: the paper's application.
        out.extend(
            registry
                .instantiate("paper", &params)
                .expect("the standard registry has a `paper` suite"),
        );
    }
    Ok(out)
}

/// A validated, resolved job, ready to run any number of times.
#[derive(Debug)]
pub struct PreparedJob {
    spec: JobSpec,
    space: TemplateSpace,
    workloads: Vec<WeightedWorkload>,
}

/// Everything a finished (or cancelled) job reports besides its exit:
/// the rendered stdout document plus the telemetry the CLI prints to
/// stderr and the daemon streams as its `done` event.
#[derive(Debug)]
pub struct JobOutput {
    /// The rendered stdout document — emitted *verbatim* by both the
    /// local CLI and the remote client, which is the whole
    /// byte-identity story.
    pub output: String,
    /// Points evaluated (== the checkpointed observations when
    /// cancelled).
    pub evaluations: usize,
    /// Pareto-front size.
    pub front: usize,
    /// Whether the job was cancelled before finishing.
    pub cancelled: bool,
    /// The resume checkpoint of a cancelled job.
    pub checkpoint: Option<SearchCheckpoint>,
    /// Delta-engine counters (live telemetry while running, final here).
    pub delta: Option<DeltaStats>,
    /// Per-job cache outcome, as a wire-stable label (`none`,
    /// `bypassed`, `flushed`, `flush-failed`).
    pub cache: &'static str,
    /// The flush error, when `cache` is `flush-failed`.
    pub flush_failure: Option<String>,
}

/// Wire-stable label for a job's [`CacheStatus`].
fn cache_label(status: &CacheStatus) -> &'static str {
    match status {
        CacheStatus::NotAttached => "none",
        CacheStatus::Bypassed => "bypassed",
        CacheStatus::Flushed => "flushed",
        CacheStatus::FlushFailed(_) => "flush-failed",
    }
}

/// Validates `spec` and resolves its space and workloads.
///
/// # Errors
///
/// A usage-class message (unknown space/workload/suite, bad weight,
/// zero budget, unknown fault tag).
pub fn prepare(spec: &JobSpec) -> Result<PreparedJob, String> {
    spec.validate()?;
    let space = space_of(spec)?;
    let paper_scale = space.width == 16;
    let registry = SuiteRegistry::standard();
    let workloads = workloads_of(&registry, spec, paper_scale)?;
    Ok(PreparedJob {
        spec: spec.clone(),
        space: space_of(spec)?,
        workloads,
    })
}

impl PreparedJob {
    /// Number of template points the resolved space holds.
    pub fn space_points(&self) -> usize {
        self.space.len()
    }

    /// Number of resolved workloads.
    pub fn workload_count(&self) -> usize {
        self.workloads.len()
    }

    /// The validated spec this job was prepared from.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Runs the sweep: an optional shared cache, an optional cancel
    /// token (checked between chunks), an optional per-chunk progress
    /// observer, and an optional checkpoint to resume from.
    ///
    /// The injected `"panic"` fault (see [`JobSpec::fault`]) fires
    /// here, before any evaluation — the daemon's workers run jobs
    /// under `catch_unwind` and the fault suite asserts a panicking job
    /// degrades alone.
    pub fn run(
        &self,
        cache: Option<&SweepCache>,
        cancel: Option<CancelToken>,
        mut progress: Option<&mut dyn FnMut(&SweepProgress)>,
        resume: Option<SearchCheckpoint>,
    ) -> JobOutput {
        assert!(
            self.spec.fault.is_none(),
            "fault injection: panic requested by the job spec"
        );
        let spec = &self.spec;
        let mut interconnect = InterconnectModel::paper();
        if let Some(v) = spec.bus_area {
            interconnect.bus_area_per_bit = v;
        }
        if let Some(v) = spec.bus_delay {
            interconnect.bus_delay_penalty = v;
        }
        if let Some(v) = spec.control_area {
            interconnect.control_area_per_instr_bit = v;
        }
        let db = ComponentDb::new();
        let mut e = Exploration::over(self.space.clone())
            .suite(&self.workloads)
            .with_db(&db)
            .interconnect(interconnect)
            .lift(spec.lift)
            // `cycles` and `eval` are deliberately NOT echoed in any
            // output format: CI `cmp`s a model run against a simulate
            // run (and a delta run against a scratch run) to assert
            // each engine reproduces its oracle byte-identically. The
            // one sanctioned exception is the `search.delta` fold-carry
            // object (and its table footer line), present only under
            // the delta engine — those `cmp`s strip it first. Arena
            // counters stay off stdout entirely: they depend on thread
            // interleaving.
            .cycle_source(spec.cycles)
            .eval_mode(spec.eval)
            .fidelity(spec.fidelity)
            .parallel(spec.parallel);
        if spec.test_model == TestModel::Scan {
            e = e.test_cost_model(ScanTestCostModel::default());
        }
        e = match spec.strategy {
            Strategy::Exhaustive => e.strategy(tta_core::search::Exhaustive),
            Strategy::Neighbour => e.strategy(tta_core::search::Exhaustive::neighbour()),
            Strategy::Random => e.strategy(tta_core::search::RandomSample),
            Strategy::HillClimb => e.strategy(tta_core::search::HillClimb::default()),
        };
        if let Some(b) = spec.budget {
            e = e.budget(b);
        }
        if let Some(s) = spec.seed {
            e = e.seed(s);
        }
        if let Some(n) = spec.threads {
            e = e.threads(n);
        }
        if let Some(c) = cache {
            e = e.cache(c);
        }
        if let Some(token) = cancel {
            e = e.cancel_token(token);
        }
        if let Some(observer) = progress.as_mut() {
            e = e.progress(|p| observer(p));
        }
        if let Some(checkpoint) = resume {
            e = e.resume_search(checkpoint);
        }
        let result = e.run();
        let mut output = Vec::new();
        render_explore(&result, spec.test_model, spec.format, &mut output)
            .expect("rendering into a Vec cannot fail");
        let flush_failure = match &result.cache_status {
            CacheStatus::FlushFailed(msg) => Some(msg.clone()),
            _ => None,
        };
        JobOutput {
            output: String::from_utf8(output).expect("rendered output is utf-8"),
            evaluations: result.search.evaluations,
            front: result.pareto.len(),
            cancelled: result.cancelled,
            checkpoint: result.checkpoint.clone(),
            delta: result.delta,
            cache: cache_label(&result.cache_status),
            flush_failure,
        }
    }
}

/// JSON object for one Pareto-front member, including its per-workload
/// cycle breakdown (in the result's `workloads` order). Shared with the
/// CLI's figure subcommands.
pub fn front_point_json(e: &tta_core::explore::EvaluatedArch) -> String {
    json::object([
        ("architecture", json::string(&e.architecture.name)),
        ("area", json::number(e.area())),
        ("exec_time", json::number(e.exec_time())),
        ("test_cost", json::opt_number(e.test_cost())),
        ("cycles", json::int(e.cycles)),
        (
            "workload_cycles",
            json::array(e.workload_cycles.iter().map(|&c| json::int(c))),
        ),
    ])
}

/// Renders an exploration result in the requested format. This is the
/// single render path: the local CLI and the daemon both call it, so
/// their stdout bytes cannot drift apart.
///
/// # Errors
///
/// Propagates write failures from `out` (infallible for in-memory
/// buffers).
pub fn render_explore(
    result: &ExploreResult,
    test_model: TestModel,
    format: Format,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    let s = &result.search;
    match format {
        Format::Table => {
            writeln!(
                out,
                "strategy {}: visited {} of {} template points{}{}",
                s.strategy,
                s.evaluations,
                s.space_len,
                s.budget.map_or(String::new(), |b| format!(" (budget {b})")),
                s.seed.map_or(String::new(), |v| format!(" (seed {v})")),
            )?;
            if result.lift == LiftMode::Full {
                writeln!(
                    out,
                    "lift full: test axis ({}) swept as a third objective; \
                     the front below is the true 3-D front",
                    test_model.label()
                )?;
            }
            if result.fidelity == FidelityMode::Netlist {
                writeln!(
                    out,
                    "fidelity netlist: area/clock axes from per-point gate-level \
                     elaboration (loaded STA), not the component tables"
                )?;
            }
            writeln!(
                out,
                "explored {} feasible points ({} infeasible) over [{}]; {} on the Pareto front",
                result.evaluated.len(),
                result.infeasible,
                result.workloads.join(", "),
                result.pareto.len()
            )?;
            let mut t = TextTable::new(["architecture", "area [GE]", "exec time", "test cost"]);
            let mut front = result.pareto_points();
            front.sort_by(|a, b| a.area().total_cmp(&b.area()));
            for e in front {
                t.row([
                    e.architecture.name.clone(),
                    format!("{:.0}", e.area()),
                    format!("{:.0}", e.exec_time()),
                    e.test_cost().map_or("-".into(), |c| format!("{c:.0}")),
                ]);
            }
            writeln!(out, "{t}")?;
            writeln!(out, "per-workload breakdown:")?;
            let mut b = TextTable::new(["workload", "weight", "blocked", "cycles@selected"]);
            for row in result.workload_breakdown() {
                b.row([
                    row.name.to_string(),
                    format!("{}", row.weight),
                    row.blocked.to_string(),
                    row.selected_cycles.map_or("-".into(), |c| c.to_string()),
                ]);
            }
            writeln!(out, "{b}")?;
            let best = result.try_select_equal_weights();
            if let Some(best) = best {
                writeln!(out, "selected (equal-weight Euclid): {}", best.architecture)?;
            }
            if let Some(d) = &result.delta {
                writeln!(
                    out,
                    "delta engine: {} fold carries, {} scratch refolds",
                    d.fold_carries, d.scratch_fallbacks
                )?;
            }
        }
        Format::Json => {
            let mut front = result.pareto_points();
            front.sort_by(|a, b| a.area().total_cmp(&b.area()));
            let selected = result.try_select_equal_weights();
            let doc = json::object([
                ("command", json::string("explore")),
                ("lift", json::string(result.lift.label())),
                ("fidelity", json::string(result.fidelity.label())),
                ("test_model", json::string(test_model.label())),
                ("search", {
                    let mut fields = vec![
                        ("strategy", json::string(&s.strategy)),
                        (
                            "budget",
                            s.budget
                                .map_or_else(|| "null".into(), |b| json::int(b as u64)),
                        ),
                        ("seed", s.seed.map_or_else(|| "null".into(), json::int)),
                        ("space_points", json::int(s.space_len as u64)),
                        ("evaluations", json::int(s.evaluations as u64)),
                    ];
                    // Fold-carry accounting for the incremental engine —
                    // deterministic per run (it is computed in a serial
                    // pre-pass), absent under scratch eval. The
                    // scratch-vs-delta byte-identity checks strip it.
                    if let Some(d) = &result.delta {
                        fields.push((
                            "delta",
                            json::object([
                                ("fold_carries", json::int(d.fold_carries)),
                                ("scratch_fallbacks", json::int(d.scratch_fallbacks)),
                            ]),
                        ));
                    }
                    json::object(fields)
                }),
                (
                    "workloads",
                    json::array(result.workload_breakdown().iter().map(|b| {
                        json::object([
                            ("name", json::string(b.name)),
                            ("weight", json::number(b.weight)),
                            ("blocked", json::int(b.blocked as u64)),
                            (
                                "selected_cycles",
                                b.selected_cycles.map_or_else(|| "null".into(), json::int),
                            ),
                        ])
                    })),
                ),
                ("evaluated", json::int(result.evaluated.len() as u64)),
                ("infeasible", json::int(result.infeasible as u64)),
                (
                    "front",
                    json::array(front.iter().map(|e| front_point_json(e))),
                ),
                (
                    "selected",
                    selected.map_or_else(|| "null".into(), front_point_json),
                ),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            // Strategy metadata rides along as a comment line, so a
            // sampled front in a results directory is never mistaken
            // for an exhaustive one.
            writeln!(
                out,
                "# strategy={} budget={} seed={} space_points={} evaluations={} lift={} fidelity={} test_model={}",
                s.strategy,
                s.budget.map_or("none".into(), |b| b.to_string()),
                s.seed.map_or("none".into(), |v| v.to_string()),
                s.space_len,
                s.evaluations,
                result.lift.label(),
                result.fidelity.label(),
                test_model.label(),
            )?;
            for b in result.workload_breakdown() {
                writeln!(
                    out,
                    "# workload={} weight={} blocked={}",
                    b.name, b.weight, b.blocked
                )?;
            }
            write!(
                out,
                "architecture,area,exec_time,cycles,spills,on_front,test_cost"
            )?;
            for name in &result.workloads {
                write!(out, ",cycles:{name}")?;
            }
            writeln!(out)?;
            for (i, e) in result.evaluated.iter().enumerate() {
                write!(
                    out,
                    "{},{},{},{},{},{},{}",
                    e.architecture.name,
                    e.area(),
                    e.exec_time(),
                    e.cycles,
                    e.spills,
                    u8::from(result.is_on_front(i)),
                    e.test_cost().map_or(String::new(), |c| c.to_string()),
                )?;
                for c in &e.workload_cycles {
                    write!(out, ",{c}")?;
                }
                writeln!(out)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> JobSpec {
        JobSpec {
            space: Some("tiny".into()),
            workloads: vec!["crypt".into()],
            format: Format::Json,
            ..JobSpec::default()
        }
    }

    #[test]
    fn prepare_validates_and_run_renders() {
        let job = prepare(&tiny_spec()).unwrap();
        assert!(job.space_points() > 0);
        assert_eq!(job.workload_count(), 1);
        let out = job.run(None, None, None, None);
        assert!(!out.cancelled);
        assert!(out.output.starts_with('{'));
        assert!(out.output.contains("\"command\":\"explore\""));
        assert_eq!(out.cache, "none");
    }

    #[test]
    fn bad_specs_fail_at_prepare_time() {
        for (mutate, needle) in [
            (
                Box::new(|s: &mut JobSpec| s.space = Some("galaxy".into()))
                    as Box<dyn Fn(&mut JobSpec)>,
                "unknown space",
            ),
            (
                Box::new(|s: &mut JobSpec| s.workloads = vec!["nope".into()]),
                "unknown workload",
            ),
            (
                Box::new(|s: &mut JobSpec| s.workloads = vec!["crypt:-1".into()]),
                "must be finite and > 0",
            ),
            (
                Box::new(|s: &mut JobSpec| s.suite = Some("nope".into())),
                "unknown suite",
            ),
            (
                Box::new(|s: &mut JobSpec| s.budget = Some(0)),
                "budget must be at least 1",
            ),
            (
                Box::new(|s: &mut JobSpec| s.fault = Some("segfault".into())),
                "unknown fault",
            ),
        ] {
            let mut spec = tiny_spec();
            mutate(&mut spec);
            let err = prepare(&spec).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn runs_are_deterministic_and_cache_is_reported() {
        let spec = tiny_spec();
        let job = prepare(&spec).unwrap();
        let cache = SweepCache::in_memory();
        let cold = job.run(Some(&cache), None, None, None);
        let warm = job.run(Some(&cache), None, None, None);
        assert_eq!(cold.output, warm.output, "warm must be byte-identical");
        assert_eq!(cold.cache, "flushed");
        assert!(cache.hits() > 0);
    }

    #[test]
    #[should_panic(expected = "fault injection")]
    fn the_panic_fault_fires_in_run() {
        let mut spec = tiny_spec();
        spec.fault = Some("panic".into());
        // prepare() rejects it; build a PreparedJob around validation
        // the way the daemon never would, to pin where the panic fires.
        let job = PreparedJob {
            spec,
            space: TemplateSpace::tiny(),
            workloads: Vec::new(),
        };
        let _ = job.run(None, None, None, None);
    }
}
