//! Concurrency stress: randomized mixes of overlapping jobs, all in
//! flight at once against one shared warm-cache daemon. Every job's
//! stdout document must be bit-identical to its own serial, cacheless
//! run (modulo the sanctioned `search.delta` counters) — concurrency,
//! queue scheduling, and cache sharing may never leak between jobs —
//! and every job must report its [`CacheStatus`] outcome.
//!
//! [`CacheStatus`]: tta_core::explore::CacheStatus

mod common;

use proptest::prelude::*;

use common::{local_output, start, strip_delta, tiny_spec};
use tta_core::cache::SweepCache;
use tta_serve::client::run_remote;
use tta_serve::spec::{Format, JobSpec, Strategy};

/// One randomized job: the space/strategy pairing from `choice`, the
/// search `seed`, the evaluation `budget`, and a queue priority.
fn spec_of(choice: u64, seed: u64, budget: usize) -> JobSpec {
    let (space, strategy) = match choice % 4 {
        0 => ("tiny", Strategy::Exhaustive),
        1 => ("tiny", Strategy::Neighbour),
        2 => ("fast", Strategy::Random),
        _ => ("fast", Strategy::HillClimb),
    };
    JobSpec {
        space: Some(space.into()),
        workloads: vec!["crypt".into()],
        strategy,
        seed: match strategy {
            Strategy::Random | Strategy::HillClimb => Some(seed),
            _ => None,
        },
        budget: match strategy {
            Strategy::Exhaustive => None,
            _ => Some(budget),
        },
        format: Format::Json,
        priority: (choice % 3) as i64 - 1,
        ..JobSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn concurrent_overlapping_jobs_match_their_serial_runs(
        choices in proptest::collection::vec((0u64..4, 0u64..1_000, 3usize..12), 6..9),
    ) {
        let specs: Vec<JobSpec> = choices
            .iter()
            .map(|&(choice, seed, budget)| spec_of(choice, seed, budget))
            .collect();
        // The oracle: each spec run serially, in-process, cacheless.
        let wants: Vec<String> = specs
            .iter()
            .map(|s| strip_delta(&local_output(s)))
            .collect();
        // The system under stress: every spec at once, three workers,
        // one shared cache the overlapping spaces keep warming.
        let daemon = start(3, SweepCache::in_memory());
        let addr = daemon.addr.clone();
        std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .zip(&wants)
                .enumerate()
                .map(|(i, (spec, want))| {
                    let addr = &addr;
                    scope.spawn(move || {
                        let (mut out, mut err) = (Vec::new(), Vec::new());
                        let summary = run_remote(addr, spec, &mut out, &mut err)
                            .expect("remote run succeeds under load");
                        let got = strip_delta(&String::from_utf8(out).expect("utf-8"));
                        assert_eq!(
                            got, **want,
                            "client {i} ({spec:?}) drifted from its serial run"
                        );
                        assert!(!summary.cancelled, "client {i} was not cancelled");
                        assert_eq!(
                            summary.cache, "flushed",
                            "client {i} must report its cache outcome"
                        );
                        summary.job
                    })
                })
                .collect();
            let mut jobs: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            jobs.sort_unstable();
            jobs.dedup();
            prop_assert_eq!(jobs.len(), specs.len(), "every client ran its own job");
            Ok(())
        })?;
        daemon.stop().expect("clean shutdown");
    }

    #[test]
    fn repeated_identical_jobs_stay_deterministic_as_the_cache_warms(
        knobs in (0u64..4, 0u64..1_000, 3usize..12),
    ) {
        // The same spec hammered concurrently AND repeatedly: cache
        // state at admission time differs per round, bytes may not.
        let (choice, seed, budget) = knobs;
        let spec = spec_of(choice, seed, budget);
        let want = strip_delta(&local_output(&spec));
        let daemon = start(2, SweepCache::in_memory());
        let addr = daemon.addr.clone();
        for _round in 0..2 {
            std::thread::scope(|scope| {
                for _client in 0..3 {
                    let (addr, spec, want) = (&addr, &spec, &want);
                    scope.spawn(move || {
                        let (mut out, mut err) = (Vec::new(), Vec::new());
                        run_remote(addr, spec, &mut out, &mut err).expect("remote run");
                        let got = strip_delta(&String::from_utf8(out).expect("utf-8"));
                        assert_eq!(&got, want, "warm rounds must not drift");
                    });
                }
            });
        }
        daemon.stop().expect("clean shutdown");
    }
}

/// Not a property, but the anchor the properties lean on: the shared
/// harness oracle itself is stable across invocations.
#[test]
fn the_serial_oracle_is_reproducible() {
    let spec = tiny_spec();
    assert_eq!(local_output(&spec), local_output(&spec));
}
