//! End-to-end daemon tests: a real listener on an ephemeral port, real
//! TCP clients, and the headline contract — remote output is
//! byte-identical to a local run, across spaces, strategies, formats
//! and lift modes, for one client or many concurrent ones.

mod common;

use common::{http_get, local_output, start, strip_delta, tiny_spec};
use tta_core::cache::SweepCache;
use tta_serve::client::{control, run_remote};
use tta_serve::jsonparse::Json;
use tta_serve::spec::{Format, JobSpec, Strategy, TestModel};

/// One remote run against `addr`, returning (stdout document, stderr
/// transcript, summary).
fn remote(addr: &str, spec: &JobSpec) -> (String, String, tta_serve::client::RemoteSummary) {
    let mut out = Vec::new();
    let mut err = Vec::new();
    let summary = run_remote(addr, spec, &mut out, &mut err).expect("remote run succeeds");
    (
        String::from_utf8(out).expect("stdout utf-8"),
        String::from_utf8(err).expect("stderr utf-8"),
        summary,
    )
}

#[test]
fn remote_output_is_byte_identical_to_local_across_specs() {
    // The matrix the issue asks for: different spaces, strategies,
    // formats, lift modes and test models — each remote document must
    // equal the local render byte for byte.
    let specs: Vec<JobSpec> = vec![
        tiny_spec(),
        JobSpec {
            format: Format::Table,
            ..tiny_spec()
        },
        JobSpec {
            format: Format::Csv,
            ..tiny_spec()
        },
        JobSpec {
            strategy: Strategy::Neighbour,
            budget: Some(5),
            ..tiny_spec()
        },
        JobSpec {
            strategy: Strategy::Random,
            seed: Some(42),
            budget: Some(4),
            ..tiny_spec()
        },
        JobSpec {
            lift: tta_core::explore::LiftMode::Full,
            ..tiny_spec()
        },
        JobSpec {
            test_model: TestModel::Scan,
            ..tiny_spec()
        },
        JobSpec {
            space: Some("fast".into()),
            workloads: vec!["crypt".into()],
            strategy: Strategy::HillClimb,
            seed: Some(7),
            budget: Some(12),
            format: Format::Json,
            ..JobSpec::default()
        },
    ];
    for spec in &specs {
        // A fresh daemon per spec: its first job runs against a cold
        // cache, so even the delta fold-carry counters (the one
        // warm-cache-sensitive field) must match the local run exactly.
        let daemon = start(2, SweepCache::in_memory());
        let want = local_output(spec);
        let (got, stderr, summary) = remote(&daemon.addr, spec);
        assert_eq!(
            got, want,
            "remote bytes must equal local bytes for {spec:?}"
        );
        assert!(!summary.cancelled);
        assert_eq!(summary.cache, "flushed", "daemon cache is always warm");
        assert!(
            stderr.contains(&format!("remote job {}: started", summary.job)),
            "stderr should narrate the stream: {stderr}"
        );
        daemon.stop().expect("clean shutdown");
    }
}

#[test]
fn warm_daemon_cache_changes_no_byte_beyond_the_sanctioned_delta_stats() {
    // One daemon, the same job three times: later runs hit the warm
    // cache, which legitimately shrinks the `search.delta` fold-carry
    // object (the repo's one sanctioned stdout observability field —
    // CI strips it with sed before its cmp). Everything else must be
    // byte-identical.
    let spec = tiny_spec();
    let want = strip_delta(&local_output(&spec));
    let daemon = start(1, SweepCache::in_memory());
    for round in 0..3 {
        let (got, _, summary) = remote(&daemon.addr, &spec);
        assert_eq!(
            strip_delta(&got),
            want,
            "round {round} drifted beyond the delta stats"
        );
        assert_eq!(summary.cache, "flushed");
    }
    daemon.stop().expect("clean shutdown");
}

#[test]
fn concurrent_clients_all_get_identical_bytes() {
    // Two distinct specs, four clients each, all in flight at once on
    // a two-worker daemon sharing one warm cache. Every client must
    // read exactly the local document for its spec (modulo the
    // sanctioned warm-cache delta stats) — concurrency and cache
    // sharing may never leak between jobs.
    let spec_a = tiny_spec();
    let spec_b = JobSpec {
        strategy: Strategy::Neighbour,
        lift: tta_core::explore::LiftMode::Full,
        ..tiny_spec()
    };
    let want_a = strip_delta(&local_output(&spec_a));
    let want_b = strip_delta(&local_output(&spec_b));
    let daemon = start(2, SweepCache::in_memory());
    let addr = daemon.addr.clone();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..8 {
            let addr = &addr;
            let (spec, want) = if i % 2 == 0 {
                (&spec_a, &want_a)
            } else {
                (&spec_b, &want_b)
            };
            handles.push(scope.spawn(move || {
                let (got, _, summary) = remote(addr, spec);
                assert_eq!(strip_delta(&got), *want, "client {i} saw different bytes");
                summary.job
            }));
        }
        let mut jobs: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        jobs.sort_unstable();
        jobs.dedup();
        assert_eq!(jobs.len(), 8, "every client ran its own job");
    });
    daemon.stop().expect("clean shutdown");
}

#[test]
fn health_and_job_table_endpoints_answer_json() {
    let daemon = start(1, SweepCache::in_memory());
    let health = control(&daemon.addr, "/healthz");
    // control() posts; healthz is a GET — use the raw client path via
    // a plain GET request instead.
    assert!(health.is_err(), "POST /healthz is not a route");

    let (_, _, summary) = remote(&daemon.addr, &tiny_spec());
    let jobs = http_get(&daemon.addr, "/jobs");
    let arr = jobs.as_arr().expect("jobs is an array");
    assert_eq!(arr.len(), 1);
    assert_eq!(arr[0].get("job").and_then(Json::as_u64), Some(summary.job));
    assert_eq!(
        arr[0].get("state").and_then(Json::as_str),
        Some("done"),
        "{jobs:?}"
    );
    assert_eq!(arr[0].get("resumable").and_then(Json::as_bool), Some(false));

    let health = http_get(&daemon.addr, "/healthz");
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        health.get("cache_entries").and_then(Json::as_u64).unwrap() > 0,
        "the finished job warmed the cache: {health:?}"
    );
    daemon.stop().expect("clean shutdown");
}
