//! Fault injection against a live daemon: truncated requests, garbage
//! specs, panicking workers, cancellation mid-batch, clients vanishing
//! mid-stream. The contract under test is *per-job* degradation — one
//! broken job or client must never wedge the queue, corrupt the shared
//! cache, or take the daemon down.

mod common;

use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use common::{http_get, local_output, start, tiny_spec};
use tta_core::cache::{SweepCache, CACHE_FILE_NAME};
use tta_serve::client::{control, run_remote};
use tta_serve::jsonparse::Json;
use tta_serve::spec::{Format, JobSpec, Strategy};

/// A job slow enough (thousands of points sampled from the huge space,
/// several seconds in a debug build) that cancel/disconnect reliably
/// lands mid-sweep, yet small enough that resuming it to completion
/// stays in test-suite territory.
fn long_spec() -> JobSpec {
    JobSpec {
        space: Some("huge".into()),
        workloads: vec!["crypt".into()],
        strategy: Strategy::Random,
        seed: Some(11),
        budget: Some(8_000),
        format: Format::Json,
        ..JobSpec::default()
    }
}

/// Sends a raw POST and returns the whole wire answer as text.
fn raw_post(addr: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut answer = String::new();
    BufReader::new(&stream)
        .read_to_string(&mut answer)
        .expect("read answer");
    answer
}

/// Polls `GET /jobs` until job `id` reports `want` (or times out).
fn wait_for_state(addr: &str, id: u64, want: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        let jobs = http_get(addr, "/jobs");
        let found = jobs.as_arr().is_some_and(|arr| {
            arr.iter().any(|j| {
                j.get("job").and_then(Json::as_u64) == Some(id)
                    && j.get("state").and_then(Json::as_str) == Some(want)
            })
        });
        if found {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ttadse-faults-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn truncated_requests_answer_400_and_the_daemon_stays_healthy() {
    let daemon = start(1, SweepCache::in_memory());

    // Head cut off mid-line: the parser sees EOF inside the request
    // line and answers 400 (half-close keeps our read side open).
    {
        let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
        stream.write_all(b"POST /run HT").expect("partial head");
        stream.shutdown(Shutdown::Write).expect("half-close");
        let mut answer = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut answer)
            .expect("read answer");
        assert!(
            answer.starts_with("HTTP/1.1 400"),
            "truncated head should answer 400: {answer:?}"
        );
    }

    // Body shorter than its Content-Length.
    {
        let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
        stream
            .write_all(b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n{\"spa")
            .expect("partial body");
        stream.shutdown(Shutdown::Write).expect("half-close");
        let mut answer = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut answer)
            .expect("read answer");
        assert!(
            answer.starts_with("HTTP/1.1 400"),
            "truncated body should answer 400: {answer:?}"
        );
    }

    // A head past the 16 KiB limit answers 413. The server may close
    // while we are still writing, so the send is best-effort.
    {
        let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
        let giant = format!(
            "POST /run HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(20 * 1024)
        );
        let _ = stream.write_all(giant.as_bytes());
        let mut answer = String::new();
        let _ = BufReader::new(&stream).read_to_string(&mut answer);
        assert!(
            answer.starts_with("HTTP/1.1 413"),
            "oversized head should answer 413: {answer:?}"
        );
    }

    // None of it left a mark: healthy, no job records, and a real job
    // still runs to completion.
    let health = http_get(&daemon.addr, "/healthz");
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        http_get(&daemon.addr, "/jobs").as_arr().map(<[Json]>::len),
        Some(0)
    );
    let (mut out, mut err) = (Vec::new(), Vec::new());
    run_remote(&daemon.addr, &tiny_spec(), &mut out, &mut err).expect("daemon still serves jobs");
    daemon.stop().expect("clean shutdown");
}

#[test]
fn malformed_specs_answer_400_and_never_reach_the_queue() {
    let daemon = start(1, SweepCache::in_memory());
    let bad_bodies = [
        "",                       // empty body
        "{not json",              // unparsable
        "{\"space\": 7}",         // ill-typed field
        "{\"bogus\": 1}",         // unknown field
        "{\"space\": \"nope\"}",  // unresolvable space
        "{\"budget\": 0}",        // invalid value
        "{\"fault\": \"quake\"}", // unknown fault kind
    ];
    for body in bad_bodies {
        let answer = raw_post(&daemon.addr, "/run", body);
        assert!(
            answer.starts_with("HTTP/1.1 400"),
            "{body:?} should answer 400: {answer:?}"
        );
        assert!(answer.contains("\"error\""), "{answer:?}");
    }

    // Control-path errors are equally contained: unknown job, resume
    // without a checkpoint, unknown route.
    let e = control(&daemon.addr, "/jobs/99/cancel").expect_err("no such job");
    assert!(e.contains("404"), "{e}");
    let e = control(&daemon.addr, "/nope").expect_err("no such route");
    assert!(e.contains("404"), "{e}");

    // Not one of those attempts became a job record.
    assert_eq!(
        http_get(&daemon.addr, "/jobs").as_arr().map(<[Json]>::len),
        Some(0),
        "rejected specs must never be admitted"
    );
    daemon.stop().expect("clean shutdown");
}

#[test]
fn a_poisoned_worker_fails_alone_and_the_queue_keeps_draining() {
    // A single worker makes the point sharper: the very thread that
    // just panicked must pick up and finish the next job.
    let daemon = start(1, SweepCache::in_memory());

    let faulty = JobSpec {
        fault: Some("panic".into()),
        ..tiny_spec()
    };
    let (mut out, mut err) = (Vec::new(), Vec::new());
    let failure =
        run_remote(&daemon.addr, &faulty, &mut out, &mut err).expect_err("the fault fires");
    assert!(failure.contains("fault injection"), "{failure}");
    assert!(out.is_empty(), "a failed job must not emit a document");

    let jobs = http_get(&daemon.addr, "/jobs");
    let arr = jobs.as_arr().expect("jobs array");
    assert_eq!(arr[0].get("state").and_then(Json::as_str), Some("failed"));
    assert_eq!(
        arr[0].get("resumable").and_then(Json::as_bool),
        Some(false),
        "a job that panicked before evaluating has nothing to resume"
    );

    // The clean follow-up runs on the same worker thread against a
    // still-cold cache (the panic fired before any evaluation), so its
    // bytes equal the local run exactly.
    let spec = tiny_spec();
    let want = local_output(&spec);
    let (mut out, mut err) = (Vec::new(), Vec::new());
    let summary = run_remote(&daemon.addr, &spec, &mut out, &mut err)
        .expect("the queue drains past the poisoned job");
    assert_eq!(String::from_utf8(out).expect("utf-8"), want);
    assert!(!summary.cancelled);
    assert_eq!(
        http_get(&daemon.addr, "/healthz")
            .get("ok")
            .and_then(Json::as_bool),
        Some(true)
    );
    daemon.stop().expect("clean shutdown");
}

#[test]
fn cancel_mid_batch_checkpoints_the_job_and_resume_completes_it() {
    let daemon = start(2, SweepCache::in_memory());
    let spec = long_spec();
    let budget = spec.budget.expect("long spec has a budget");
    let addr = daemon.addr.clone();
    let client = std::thread::spawn(move || {
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let summary = run_remote(&addr, &spec, &mut out, &mut err)
            .expect("a cancelled job still streams its partial document");
        (summary, out.len())
    });

    assert!(
        wait_for_state(&daemon.addr, 1, "running", Duration::from_secs(30)),
        "job 1 should start"
    );
    let answer = control(&daemon.addr, "/jobs/1/cancel").expect("cancel accepted");
    assert_eq!(answer.get("cancelled").and_then(Json::as_bool), Some(true));

    let (summary, document_len) = client.join().expect("client thread");
    assert!(summary.cancelled, "the done event reports the cancellation");
    assert!(document_len > 0, "the partial render still streams");
    assert!(
        summary.evaluations < budget as u64,
        "cancel landed mid-sweep: {} of {budget}",
        summary.evaluations
    );

    let jobs = http_get(&daemon.addr, "/jobs");
    let record = &jobs.as_arr().expect("jobs array")[0];
    assert_eq!(
        record.get("state").and_then(Json::as_str),
        Some("cancelled")
    );
    assert_eq!(
        record.get("resumable").and_then(Json::as_bool),
        Some(true),
        "a cancelled job keeps its checkpoint"
    );

    // Resume re-runs the stored spec from the checkpoint as a new job
    // and streams it the same way /run does.
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    write!(
        stream,
        "POST /jobs/1/resume HTTP/1.1\r\nHost: {}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        daemon.addr
    )
    .expect("send resume");
    let mut reader = BufReader::new(&stream);
    let head = tta_serve::http::read_response_head(&mut reader).expect("resume head");
    assert_eq!(head.status, 200);
    assert!(head.chunked, "resume streams NDJSON like /run");
    let body = tta_serve::http::read_chunked_body(&mut reader).expect("resume stream");
    let text = String::from_utf8_lossy(&body);
    let done = text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .expect("terminal event");
    let done = Json::parse(done).expect("done event json");
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(done.get("cancelled").and_then(Json::as_bool), Some(false));
    assert!(
        done.get("evaluations").and_then(Json::as_u64).unwrap() >= summary.evaluations,
        "the resumed run carries the checkpointed observations forward"
    );
    daemon.stop().expect("clean shutdown");
}

#[test]
fn a_client_vanishing_mid_stream_cancels_its_job_cooperatively() {
    let daemon = start(1, SweepCache::in_memory());
    let body = long_spec().to_json();
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    write!(
        stream,
        "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        daemon.addr,
        body.len()
    )
    .expect("submit long job");
    // Read just enough to know the stream started, then vanish. The
    // daemon notices the broken pipe on its next progress chunk and
    // cancels the job cooperatively.
    let mut first = [0u8; 64];
    let _ = stream.read(&mut first);
    drop(stream);

    assert!(
        wait_for_state(&daemon.addr, 1, "cancelled", Duration::from_secs(30)),
        "the orphaned job should land in the cancelled state"
    );
    let jobs = http_get(&daemon.addr, "/jobs");
    let record = &jobs.as_arr().expect("jobs array")[0];
    assert_eq!(
        record.get("resumable").and_then(Json::as_bool),
        Some(true),
        "the orphaned job checkpointed before stopping"
    );

    // The daemon shrugged it off: healthy, and a fresh client gets a
    // complete run.
    let (mut out, mut err) = (Vec::new(), Vec::new());
    let summary = run_remote(&daemon.addr, &tiny_spec(), &mut out, &mut err)
        .expect("daemon still serves jobs");
    assert!(!summary.cancelled);
    daemon.stop().expect("clean shutdown");
}

#[test]
fn faulted_daemons_flush_byte_identical_cache_files() {
    // Two dir-backed daemons run the same real job; one of them also
    // absorbs a panicking job first. The injected panic fires before
    // any evaluation, so the fault contributes nothing to the cache —
    // after graceful shutdown both flushed files must match byte for
    // byte. Any drift would mean a failing job corrupted shared state.
    let clean_dir = scratch_dir("clean");
    let fault_dir = scratch_dir("fault");
    let clean = start(1, SweepCache::open(&clean_dir).expect("open clean cache"));
    let faulted = start(1, SweepCache::open(&fault_dir).expect("open faulted cache"));

    let faulty = JobSpec {
        fault: Some("panic".into()),
        ..tiny_spec()
    };
    let (mut out, mut err) = (Vec::new(), Vec::new());
    run_remote(&faulted.addr, &faulty, &mut out, &mut err).expect_err("the fault fires");

    let spec = tiny_spec();
    for daemon in [&clean, &faulted] {
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let summary =
            run_remote(&daemon.addr, &spec, &mut out, &mut err).expect("the real job runs");
        assert_eq!(summary.cache, "flushed");
    }

    clean.stop().expect("clean daemon shutdown");
    faulted.stop().expect("faulted daemon shutdown");

    let clean_bytes = std::fs::read(clean_dir.join(CACHE_FILE_NAME)).expect("clean cache file");
    let fault_bytes = std::fs::read(fault_dir.join(CACHE_FILE_NAME)).expect("faulted cache file");
    assert!(!clean_bytes.is_empty(), "the job populated the cache");
    assert_eq!(
        clean_bytes, fault_bytes,
        "a failing job must not perturb the flushed cache"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&fault_dir);
}
