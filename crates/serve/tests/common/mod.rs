//! Shared harness for the serve integration suites: an in-process
//! daemon on an ephemeral port, stopped via `POST /shutdown`.

// Each integration binary uses a different subset of this harness.
#![allow(dead_code)]

use tta_core::cache::SweepCache;
use tta_serve::client::control;
use tta_serve::server::Server;
use tta_serve::spec::JobSpec;

/// A running in-process daemon; dropping it without [`Daemon::stop`]
/// leaks the serve thread (tests should always stop).
pub struct Daemon {
    /// `host:port` of the bound listener.
    pub addr: String,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

/// Boots a daemon on `127.0.0.1:0` with `workers` workers over `cache`.
pub fn start(workers: usize, cache: SweepCache) -> Daemon {
    let server = Server::bind("127.0.0.1:0", workers, cache).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run());
    Daemon { addr, handle }
}

impl Daemon {
    /// Graceful shutdown: `POST /shutdown`, then join the serve thread
    /// and propagate its final cache-flush result.
    pub fn stop(self) -> std::io::Result<()> {
        control(&self.addr, "/shutdown").expect("shutdown accepted");
        self.handle.join().expect("serve thread joins cleanly")
    }
}

/// The standard quick job the suites submit: the tiny space, one
/// workload, JSON output.
pub fn tiny_spec() -> JobSpec {
    JobSpec {
        space: Some("tiny".into()),
        workloads: vec!["crypt".into()],
        format: tta_serve::spec::Format::Json,
        ..JobSpec::default()
    }
}

/// What a local (in-process, cacheless) run of `spec` prints — the
/// byte-identity oracle for every remote comparison.
pub fn local_output(spec: &JobSpec) -> String {
    tta_serve::exec::prepare(spec)
        .expect("spec resolves")
        .run(None, None, None, None)
        .output
}

/// Removes the sanctioned `"delta":{...}` object from a JSON document
/// and the `delta engine:` footer from a table one. These counters
/// report per-run incremental work, which a warm cache legitimately
/// shrinks — the one stdout field exempt from byte identity (CI strips
/// it with `sed` before its own `cmp`).
pub fn strip_delta(s: &str) -> String {
    let s = match s.find(",\"delta\":{") {
        None => s.to_string(),
        Some(start) => {
            let end = start + s[start..].find('}').expect("delta object closes") + 1;
            format!("{}{}", &s[..start], &s[end..])
        }
    };
    s.lines()
        .filter(|line| !line.starts_with("delta engine:"))
        .map(|line| format!("{line}\n"))
        .collect()
}

/// Minimal raw GET helper (the thin client only POSTs).
pub fn http_get(addr: &str, path: &str) -> tta_serve::jsonparse::Json {
    use std::io::{BufReader, Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut reader = BufReader::new(&stream);
    let head = tta_serve::http::read_response_head(&mut reader).expect("response head");
    assert_eq!(head.status, 200, "GET {path}");
    let mut body = vec![0u8; head.content_length.expect("framed body")];
    reader.read_exact(&mut body).expect("body");
    tta_serve::jsonparse::Json::parse(String::from_utf8_lossy(&body).trim()).expect("json body")
}
