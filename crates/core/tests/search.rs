//! Integration tests of the strategy-pluggable sweep: exhaustive
//! equivalence, budgeted/seeded determinism, guided search, the
//! try_run error path, and strategy-separated cache namespaces.

use tta_arch::template::TemplateSpace;
use tta_core::cache::SweepCache;
use tta_core::explore::{Exploration, ExploreError, ExploreResult};
use tta_core::pareto::is_pareto_set;
use tta_core::search::{Exhaustive, HillClimb, RandomSample};
use tta_core::ComponentDb;
use tta_workloads::suite;

fn assert_bit_identical(a: &ExploreResult, b: &ExploreResult) {
    assert_eq!(a.evaluated.len(), b.evaluated.len());
    for (x, y) in a.evaluated.iter().zip(&b.evaluated) {
        assert_eq!(x.architecture, y.architecture);
        assert_eq!(x.objectives, y.objectives);
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.spills, y.spills);
    }
    assert_eq!(a.pareto, b.pareto);
    assert_eq!(a.infeasible, b.infeasible);
}

/// The front of `result` is non-dominated within its evaluated set.
fn front_is_pareto(result: &ExploreResult) -> bool {
    let pts: Vec<Vec<f64>> = result
        .evaluated
        .iter()
        .map(|e| vec![e.area(), e.exec_time()])
        .collect();
    is_pareto_set(&pts, &result.pareto)
}

#[test]
fn explicit_exhaustive_is_bit_identical_to_the_default() {
    let w = suite::crypt(1);
    let db = ComponentDb::new();
    let classic = Exploration::over(TemplateSpace::fast_default())
        .workload(&w)
        .with_db(&db)
        .run();
    let explicit = Exploration::over(TemplateSpace::fast_default())
        .workload(&w)
        .with_db(&db)
        .strategy(Exhaustive)
        .run();
    assert_bit_identical(&classic, &explicit);
    assert_eq!(classic.search.strategy, "exhaustive");
    assert_eq!(classic.search.evaluations, classic.search.space_len);
    assert!(classic.search.exhausted_space());
}

#[test]
fn random_sample_is_deterministic_per_seed_and_respects_budget() {
    let w = suite::checksum32();
    let db = ComponentDb::new();
    let run = |seed| {
        Exploration::over(TemplateSpace::fast_default())
            .workload(&w)
            .with_db(&db)
            .strategy(RandomSample)
            .budget(5)
            .seed(seed)
            .run()
    };
    let a = run(42);
    let b = run(42);
    assert_bit_identical(&a, &b);
    assert!(a.search.evaluations <= 5, "{}", a.search.evaluations);
    assert_eq!(a.evaluated.len() + a.infeasible, a.search.evaluations);
    assert!(front_is_pareto(&a));
    assert_eq!(a.search.strategy, "random");
    assert_eq!(a.search.budget, Some(5));
    assert_eq!(a.search.seed, Some(42));

    let c = run(7);
    let names = |r: &ExploreResult| -> Vec<String> {
        r.evaluated
            .iter()
            .map(|e| e.architecture.name.clone())
            .collect()
    };
    assert_ne!(names(&a), names(&c), "different seeds sample differently");
}

#[test]
fn random_sample_with_ample_budget_covers_the_space() {
    let w = suite::checksum32();
    let db = ComponentDb::new();
    let space = TemplateSpace::tiny();
    let exhaustive = Exploration::over(space.clone())
        .workload(&w)
        .with_db(&db)
        .run();
    let sampled = Exploration::over(space)
        .workload(&w)
        .with_db(&db)
        .strategy(RandomSample)
        .seed(1)
        .run();
    assert_bit_identical(&exhaustive, &sampled);
}

#[test]
fn hillclimb_is_deterministic_and_yields_a_valid_front() {
    let w = suite::checksum32();
    let db = ComponentDb::new();
    let run = || {
        Exploration::over(TemplateSpace::fast_default())
            .workload(&w)
            .with_db(&db)
            .strategy(HillClimb::with_batch(4))
            .budget(8)
            .seed(3)
            .run()
    };
    let a = run();
    let b = run();
    assert_bit_identical(&a, &b);
    assert!(a.search.evaluations <= 8);
    assert!(a.search.rounds >= 2, "guided search iterates in batches");
    assert!(front_is_pareto(&a));
    assert!(!a.pareto.is_empty());
}

#[test]
fn hillclimb_terminates_when_it_exhausts_a_small_space() {
    let w = suite::checksum32();
    let db = ComponentDb::new();
    let result = Exploration::over(TemplateSpace::tiny())
        .workload(&w)
        .with_db(&db)
        .strategy(HillClimb::default())
        .seed(0)
        .run();
    // No budget: the climber must stop on its own, having covered the
    // tiny space (its random restarts visit everything).
    assert_eq!(result.search.evaluations, result.search.space_len);
    assert!(front_is_pareto(&result));
}

#[test]
fn exhaustive_budget_truncates_in_enumeration_order() {
    let w = suite::checksum32();
    let db = ComponentDb::new();
    let space = TemplateSpace::fast_default();
    let full = Exploration::over(space.clone())
        .workload(&w)
        .with_db(&db)
        .run();
    let budgeted = Exploration::over(space)
        .workload(&w)
        .with_db(&db)
        .budget(3)
        .run();
    assert_eq!(budgeted.search.evaluations, 3);
    for (b, f) in budgeted.evaluated.iter().zip(&full.evaluated) {
        assert_eq!(b.architecture.name, f.architecture.name);
        assert_eq!(b.cycles, f.cycles);
    }
    assert!(front_is_pareto(&budgeted));
}

#[test]
fn try_run_reports_missing_workloads() {
    let err = Exploration::over(TemplateSpace::tiny())
        .try_run()
        .expect_err("no workload configured");
    assert_eq!(err, ExploreError::EmptyWorkloads);
    assert!(err.to_string().contains("at least one workload"));
}

#[test]
#[should_panic(expected = "at least one workload")]
fn run_still_panics_on_missing_workloads() {
    let _ = Exploration::over(TemplateSpace::tiny()).run();
}

#[test]
fn sampled_runs_use_a_separate_cache_namespace() {
    let w = suite::checksum32();
    let db = ComponentDb::new();
    let cache = SweepCache::in_memory();
    // Warm the cache exhaustively…
    Exploration::over(TemplateSpace::tiny())
        .workload(&w)
        .with_db(&db)
        .cache(&cache)
        .run();
    let after_exhaustive = cache.len();
    assert!(after_exhaustive > 0);
    // …then a budgeted random run must not *hit* those entries (its
    // content addresses carry the strategy salt), only add new ones.
    let h0 = cache.hits();
    let sampled = Exploration::over(TemplateSpace::tiny())
        .workload(&w)
        .with_db(&db)
        .cache(&cache)
        .strategy(RandomSample)
        .budget(2)
        .seed(9)
        .run();
    assert_eq!(cache.hits(), h0, "no cross-strategy hits");
    assert!(cache.len() > after_exhaustive);

    // A warm re-run of the same sampled sweep is all hits and
    // bit-identical.
    let m0 = cache.misses();
    let warm = Exploration::over(TemplateSpace::tiny())
        .workload(&w)
        .with_db(&db)
        .cache(&cache)
        .strategy(RandomSample)
        .budget(2)
        .seed(9)
        .run();
    assert_eq!(cache.misses(), m0, "warm sampled run misses nothing");
    assert_bit_identical(&sampled, &warm);
}
