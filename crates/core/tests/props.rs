//! Property-based tests of the exploration mathematics: Pareto
//! invariants, normalisation bounds, norm behaviour and test-cost
//! monotonicity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tta_arch::template::TemplateSpace;
use tta_core::explore::Exploration;
use tta_core::norm::{normalize, select, Norm, Weights};
use tta_core::pareto::{
    dominates, is_pareto_set, pareto_front, pareto_front_reference, ParetoArchive,
};
use tta_core::testcost::{ftfu_ratio, ftrf};
use tta_core::ComponentDb;

fn cloud(dims: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(0.0f64..1000.0, dims..=dims),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn front_is_mutually_nondominating(pts in cloud(2)) {
        let front = pareto_front(&pts);
        prop_assert!(is_pareto_set(&pts, &front));
        for &i in &front {
            for &j in &front {
                prop_assert!(i == j || !dominates(&pts[i], &pts[j]));
            }
        }
    }

    #[test]
    fn every_dropped_point_is_dominated(pts in cloud(3)) {
        let front = pareto_front(&pts);
        for (i, p) in pts.iter().enumerate() {
            if !front.contains(&i) {
                prop_assert!(
                    pts.iter().any(|q| dominates(q, p)),
                    "point {} dropped but undominated", i
                );
            }
        }
    }

    #[test]
    fn fast_2d_front_matches_the_reference(pts in cloud(2)) {
        // `pareto_front` takes the O(n log n) sort-and-scan path for
        // 2-D input; it must agree with the O(n²) oracle exactly,
        // indices and order included.
        prop_assert_eq!(pareto_front(&pts), pareto_front_reference(&pts));
    }

    #[test]
    fn fast_2d_front_survives_duplicates(pts in cloud(2), dup in 0usize..60) {
        // Force coordinate collisions: append a copy of one point.
        let mut pts = pts;
        let copy = pts[dup % pts.len()].clone();
        pts.push(copy);
        prop_assert_eq!(pareto_front(&pts), pareto_front_reference(&pts));
    }

    #[test]
    fn archive_matches_front_for_any_insertion_order(pts in cloud(3), seed in 0u64..1000) {
        // Shuffle the insertion order; the streaming archive must end
        // on exactly the batch front, whatever the order.
        let mut order: Vec<usize> = (0..pts.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..(i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut archive = ParetoArchive::new();
        for &i in &order {
            let joined = archive.try_insert(i, &pts[i]);
            // An accepted point is non-dominated among those offered
            // so far; a rejected one is dominated by a current member.
            prop_assert_eq!(
                joined,
                !order.iter()
                    .take_while(|&&j| j != i)
                    .chain(std::iter::once(&i))
                    .any(|&j| dominates(&pts[j], &pts[i]))
            );
        }
        prop_assert_eq!(archive.ids(), pareto_front(&pts));
        prop_assert_eq!(archive.offered(), pts.len());
    }

    #[test]
    fn archive_matches_front_in_2d_too(pts in cloud(2)) {
        let mut archive = ParetoArchive::new();
        for (i, p) in pts.iter().enumerate() {
            archive.try_insert(i, p);
        }
        prop_assert_eq!(archive.ids(), pareto_front(&pts));
    }

    #[test]
    fn front_of_front_is_identity(pts in cloud(3)) {
        let front = pareto_front(&pts);
        let front_pts: Vec<Vec<f64>> = front.iter().map(|&i| pts[i].clone()).collect();
        let again = pareto_front(&front_pts);
        prop_assert_eq!(again.len(), front_pts.len());
    }

    #[test]
    fn normalisation_stays_in_unit_box(pts in cloud(3)) {
        for p in normalize(&pts) {
            for x in p {
                prop_assert!((0.0..=1.0).contains(&x), "{x}");
            }
        }
    }

    #[test]
    fn selection_is_on_the_input_set(pts in cloud(3)) {
        let i = select(&pts, &Weights::equal(3), Norm::Euclidean);
        prop_assert!(i < pts.len());
    }

    #[test]
    fn selection_has_minimal_norm(pts in cloud(2)) {
        // Nothing — dominated or not — may beat the selected point's
        // weighted norm; in particular any dominator ties at best.
        let i = select(&pts, &Weights::equal(2), Norm::Euclidean);
        let normed = normalize(&pts);
        let ni = Norm::Euclidean.eval(&normed[i]);
        for (j, q) in normed.iter().enumerate() {
            let nq = Norm::Euclidean.eval(q);
            let ok = ni <= nq + 1e-12;
            prop_assert!(ok, "point {} has smaller norm than the selection", j);
            if dominates(&pts[j], &pts[i]) {
                // Dominators never have a *larger* norm after
                // normalisation, so equality must hold.
                let tied = (ni - nq).abs() < 1e-9;
                prop_assert!(tied, "dominator {} should tie in norm", j);
            }
        }
    }

    #[test]
    fn ftfu_ratio_monotone_in_scarcity(np in 1usize..500, cd in 3u32..6, nconn in 1usize..8) {
        let mut last = f64::INFINITY;
        for nb in 1..=8usize {
            let v = ftfu_ratio(np, cd, nconn, nb);
            prop_assert!(v <= last, "cost must fall as buses grow");
            last = v;
        }
        // Floor: with plenty of buses the ratio term vanishes.
        prop_assert_eq!(ftfu_ratio(np, cd, nconn, nconn), np as f64 * f64::from(cd));
    }

    #[test]
    fn ftrf_port_parallelism_never_hurts(np in 1usize..500, cd in 3u32..5, nb in 1usize..5) {
        // Adding a second read port (within bus capacity) never raises
        // the cost.
        let one = ftrf(np, cd, 1, 1, nb);
        let two = ftrf(np, cd, 1, 2, nb);
        prop_assert!(two <= one, "{two} > {one}");
    }

    #[test]
    fn lifting_a_front_with_any_axis_preserves_nondomination(pts in cloud(2), seed in 0u64..1000) {
        // The pipeline's Figure-8 step: take the 2-D front, append a
        // third axis (any values at all), and the lifted points must all
        // stay Pareto-optimal — so the 2-D→3-D lift never needs a
        // re-filter and the projection property holds by construction.
        let front = pareto_front(&pts);
        let lifted: Vec<Vec<f64>> = front
            .iter()
            .enumerate()
            .map(|(k, &i)| {
                let extra = ((seed + k as u64) % 977) as f64;
                vec![pts[i][0], pts[i][1], extra]
            })
            .collect();
        prop_assert_eq!(pareto_front(&lifted).len(), lifted.len());
    }
}

/// A randomised tiny template space: every draw is a valid space whose
/// exploration finishes quickly at width 4.
fn tiny_space(buses: Vec<usize>, alus: Vec<usize>, regs: usize) -> TemplateSpace {
    TemplateSpace {
        width: 4,
        buses,
        clusters: vec![1],
        alus,
        cmps: vec![1],
        muls: vec![0],
        imms: vec![1],
        pipes: vec![1],
        rf_banks: vec![1],
        rf_sets: vec![vec![(regs, 1, 2)]],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_sweep_equals_serial_on_random_spaces(
        nbuses in 1usize..4,
        nalus in 1usize..3,
        regs in 2usize..9,
        threads in 2usize..9,
    ) {
        let space = tiny_space(
            (1..=nbuses).collect(),
            (1..=nalus).collect(),
            regs,
        );
        let w = tta_workloads::suite::checksum32();
        let db = ComponentDb::new();
        let serial = Exploration::over(space.clone())
            .workload(&w)
            .with_db(&db)
            .run();
        let parallel = Exploration::over(space)
            .workload(&w)
            .with_db(&db)
            .parallel(true)
            .threads(threads)
            .run();
        // Identical evaluated set…
        prop_assert_eq!(serial.evaluated.len(), parallel.evaluated.len());
        for (a, b) in serial.evaluated.iter().zip(&parallel.evaluated) {
            prop_assert_eq!(&a.architecture.name, &b.architecture.name);
            prop_assert_eq!(&a.objectives, &b.objectives);
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.spills, b.spills);
        }
        // …identical front…
        prop_assert_eq!(&serial.pareto, &parallel.pareto);
        prop_assert_eq!(serial.infeasible, parallel.infeasible);
        // …identical selection.
        if !serial.pareto.is_empty() {
            prop_assert_eq!(
                &serial.select_equal_weights().architecture.name,
                &parallel.select_equal_weights().architecture.name
            );
        }
    }
}
