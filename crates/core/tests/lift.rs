//! Lift-mode contracts: `LiftMode::ParetoOnly` (the default) is
//! bit-identical to the pre-lift-mode engine — objectives, front
//! indices and cache entries, including entries written by the previous
//! release's v2 cache files — while `LiftMode::Full` maintains a true
//! 3-D front that is a superset of the lifted 2-D one. Plus the
//! cache-flush failure path: a sweep that cannot persist reports it
//! through `CacheStatus` instead of silently claiming success.

use std::collections::HashSet;
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;
use tta_arch::template::TemplateSpace;
use tta_core::cache::{SweepCache, CACHE_FILE_NAME, LEGACY_CACHE_FILE_NAME};
use tta_core::explore::{CacheStatus, Exploration, ExploreResult, LiftMode, Objective};
use tta_core::models::{Eq14TestCostModel, ScanTestCostModel, TestCostModel};
use tta_core::pareto::pareto_front;
use tta_core::ComponentDb;
use tta_workloads::suite;

fn db() -> &'static ComponentDb {
    static DB: OnceLock<ComponentDb> = OnceLock::new();
    DB.get_or_init(ComponentDb::new)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ttadse-lift-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run(
    space: TemplateSpace,
    lift: LiftMode,
    scan: bool,
    parallel: bool,
    cache: Option<&SweepCache>,
) -> ExploreResult {
    let w = suite::crypt(1);
    let mut e = Exploration::over(space)
        .workload(&w)
        .with_db(db())
        .lift(lift)
        .parallel(parallel);
    if scan {
        e = e.test_cost_model(ScanTestCostModel::new());
    }
    if let Some(c) = cache {
        e = e.cache(c);
    }
    e.run()
}

fn assert_bit_identical(a: &ExploreResult, b: &ExploreResult) {
    assert_eq!(a.evaluated.len(), b.evaluated.len());
    assert_eq!(a.infeasible, b.infeasible);
    assert_eq!(a.pareto, b.pareto);
    for (x, y) in a.evaluated.iter().zip(&b.evaluated) {
        assert_eq!(x.architecture.name, y.architecture.name);
        assert_eq!(x.objectives.axes(), y.objectives.axes());
        let xb: Vec<u64> = x.objectives.values().iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = y.objectives.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "objective bits differ for {}", x.architecture.name);
    }
}

/// The default mode reproduces the pre-PR engine exactly: the front is
/// the 2-D `pareto_front` of the sweep axes, and the lifted test costs
/// are bit-for-bit what the test model returns for those points alone.
#[test]
fn pareto_only_is_bit_identical_to_the_reference_pipeline() {
    let result = run(
        TemplateSpace::fast_default(),
        LiftMode::ParetoOnly,
        false,
        true,
        None,
    );
    assert_eq!(result.lift, LiftMode::ParetoOnly);
    assert_eq!(result.cache_status, CacheStatus::NotAttached);

    // Front = the batch 2-D oracle over the evaluated points.
    let pts2d: Vec<Vec<f64>> = result
        .evaluated
        .iter()
        .map(|e| vec![e.area(), e.exec_time()])
        .collect();
    assert_eq!(result.pareto, pareto_front(&pts2d));
    assert_eq!(result.pareto, result.design_front());

    // Test axis present exactly on the front, with the model's exact
    // bits.
    for (i, e) in result.evaluated.iter().enumerate() {
        assert_eq!(e.test_cost().is_some(), result.is_on_front(i));
        if let Some(tc) = e.test_cost() {
            let fresh = Eq14TestCostModel.test_cost(&e.architecture, db()).total;
            assert_eq!(tc.to_bits(), fresh.to_bits());
        }
    }
}

/// A cache file in the previous release's v2 dialect (v2 name, v2
/// header, no inline test fields) answers a ParetoOnly sweep with zero
/// misses and bit-identical results: the content addresses survived
/// the v3 format bump.
#[test]
fn pre_v3_cache_files_hit_bit_identically() {
    let dir = tmpdir("v2-upgrade");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let cold = run(
        TemplateSpace::tiny(),
        LiftMode::ParetoOnly,
        false,
        false,
        Some(&cache),
    );
    assert_eq!(cold.cache_status, CacheStatus::Flushed);

    // Downgrade the flushed v3 file to the v2 dialect the previous
    // release wrote. ParetoOnly entries carry no inline test fields, so
    // only the header differs.
    let v3 = fs::read_to_string(dir.join(CACHE_FILE_NAME)).expect("flushed");
    assert!(
        !v3.contains(" T "),
        "ParetoOnly entries must match the v2 line grammar:\n{v3}"
    );
    let v2 = v3.replace("ttadse-sweep-cache 3", "ttadse-sweep-cache 2");
    fs::write(dir.join(LEGACY_CACHE_FILE_NAME), v2).unwrap();
    fs::remove_file(dir.join(CACHE_FILE_NAME)).unwrap();

    let legacy = SweepCache::open(&dir).expect("reopen");
    assert!(!legacy.is_empty(), "the v2 file must load");
    let warm = run(
        TemplateSpace::tiny(),
        LiftMode::ParetoOnly,
        false,
        false,
        Some(&legacy),
    );
    assert_eq!(legacy.misses(), 0, "every v2 entry must hit");
    assert_bit_identical(&cold, &warm);
    let _ = fs::remove_dir_all(&dir);
}

/// A v2-dialect cache under a *full* sweep: the scheduling payload is
/// reused (no eval re-evaluation) and only the missing per-point test
/// totals recompute; results are bit-identical to a cold full sweep.
#[test]
fn full_sweep_upgrades_v2_entries_by_recomputing_only_the_test_axis() {
    let dir = tmpdir("v2-full");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let cold = run(
        TemplateSpace::tiny(),
        LiftMode::Full,
        false,
        false,
        Some(&cache),
    );
    // Downgrade: strip the inline test pairs and the v3 header.
    let v3 = fs::read_to_string(dir.join(CACHE_FILE_NAME)).expect("flushed");
    let v2: String = v3
        .replace("ttadse-sweep-cache 3", "ttadse-sweep-cache 2")
        .lines()
        .map(|l| match l.find(" T ") {
            Some(i) if l.starts_with("E ") => &l[..i],
            _ => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    fs::write(dir.join(LEGACY_CACHE_FILE_NAME), v2).unwrap();
    fs::remove_file(dir.join(CACHE_FILE_NAME)).unwrap();

    let legacy = SweepCache::open(&dir).expect("reopen");
    let upgraded = run(
        TemplateSpace::tiny(),
        LiftMode::Full,
        false,
        false,
        Some(&legacy),
    );
    assert_eq!(legacy.misses(), 0, "scheduling entries must all hit");
    assert_bit_identical(&cold, &upgraded);
    // The upgrade is persisted: a third run needs no recomputation at
    // all (pre-warm planning sees complete entries).
    let third_cache = SweepCache::open(&dir).expect("reopen again");
    let third = run(
        TemplateSpace::tiny(),
        LiftMode::Full,
        false,
        true,
        Some(&third_cache),
    );
    assert_bit_identical(&cold, &third);
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any threading mode and either test model: the full 3-D
    /// front is a superset of the design front, the 2-D projection of
    /// the evaluation set is bit-identical between modes, and a warm
    /// full-lift cache run is bit-identical to its cold one.
    #[test]
    fn full_mode_contracts(parallel in proptest::bool::ANY, scan in proptest::bool::ANY) {
        let dir = tmpdir(&format!("full-prop-{parallel}-{scan}"));
        let cache = SweepCache::open(&dir).expect("temp dir is writable");
        let space = TemplateSpace::fast_default;

        let pareto_only = run(space(), LiftMode::ParetoOnly, scan, parallel, None);
        let full = run(space(), LiftMode::Full, scan, parallel, Some(&cache));
        prop_assert_eq!(full.lift, LiftMode::Full);

        // Same evaluation set, bit-identical sweep axes.
        prop_assert_eq!(pareto_only.evaluated.len(), full.evaluated.len());
        for (p, f) in pareto_only.evaluated.iter().zip(&full.evaluated) {
            prop_assert_eq!(&p.architecture.name, &f.architecture.name);
            prop_assert_eq!(p.area().to_bits(), f.area().to_bits());
            prop_assert_eq!(p.exec_time().to_bits(), f.exec_time().to_bits());
            // Full mode costs every point on the test axis.
            prop_assert_eq!(
                f.objectives.axes(),
                &[Objective::Area, Objective::ExecTime, Objective::TestCost]
            );
        }

        // Superset-or-equal: every design-front point survives in 3-D,
        // and the design front is exactly the ParetoOnly front.
        let design: HashSet<usize> = full.design_front().into_iter().collect();
        let po: HashSet<usize> = pareto_only.pareto.iter().copied().collect();
        prop_assert_eq!(&design, &po);
        let full_front: HashSet<usize> = full.pareto.iter().copied().collect();
        prop_assert!(design.is_subset(&full_front));

        // Warm full-lift run: zero misses, bit-identical.
        let warm_cache = SweepCache::open(&dir).expect("reopen");
        let warm = run(space(), LiftMode::Full, scan, !parallel, Some(&warm_cache));
        prop_assert_eq!(warm_cache.misses(), 0, "warm full run must not evaluate");
        assert_bit_identical(&full, &warm);

        // And a ParetoOnly run shares the same eval entries (its test
        // lifts are keyed separately, so only those may miss).
        let shared_cache = SweepCache::open(&dir).expect("reopen for pareto");
        let shared = run(space(), LiftMode::ParetoOnly, scan, parallel, Some(&shared_cache));
        assert_bit_identical(&pareto_only, &shared);
        let evals = shared.evaluated.len() + shared.infeasible;
        prop_assert!(
            shared_cache.hits() >= evals as u64,
            "every sweep evaluation must hit entries written by the full run"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A sweep whose cache cannot flush completes correctly and says so —
/// `CacheStatus::FlushFailed` instead of a silent `let _ =`.
#[test]
fn unflushable_cache_is_reported_not_swallowed() {
    let dir = tmpdir("unflushable");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    // Wedge a directory where the cache file must land: the atomic
    // rename fails even when running as root (chmod would not).
    fs::create_dir_all(cache.path()).unwrap();

    let result = run(
        TemplateSpace::tiny(),
        LiftMode::ParetoOnly,
        false,
        false,
        Some(&cache),
    );
    match &result.cache_status {
        CacheStatus::FlushFailed(msg) => assert!(!msg.is_empty()),
        other => panic!("expected FlushFailed, got {other:?}"),
    }
    // The sweep itself lost nothing.
    let clean = run(
        TemplateSpace::tiny(),
        LiftMode::ParetoOnly,
        false,
        false,
        None,
    );
    assert_bit_identical(&clean, &result);
    let _ = fs::remove_dir_all(&dir);
}
