//! Integration tests of the persistent sweep cache: warm-cache runs are
//! bit-identical to cold ones (property-tested over workload/parallelism
//! variations), corrupt or version-mismatched cache files degrade to a
//! clean re-evaluation, and unfingerprintable models opt out safely.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;
use tta_arch::template::TemplateSpace;
use tta_arch::Architecture;
use tta_core::cache::{SweepCache, CACHE_FILE_NAME};
use tta_core::explore::{Exploration, ExploreResult};
use tta_core::models::AreaModel;
use tta_core::ComponentDb;
use tta_workloads::suite;

/// One shared annotation database so the many small sweeps below pay
/// for the 8-bit component library once.
fn db() -> &'static ComponentDb {
    static DB: OnceLock<ComponentDb> = OnceLock::new();
    DB.get_or_init(ComponentDb::new)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ttadse-cache-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run_tiny(rounds: usize, parallel: bool, cache: Option<&SweepCache>) -> ExploreResult {
    let w = suite::crypt(rounds);
    let mut e = Exploration::over(TemplateSpace::tiny())
        .workload(&w)
        .with_db(db())
        .parallel(parallel);
    if let Some(c) = cache {
        e = e.cache(c);
    }
    e.run()
}

/// Bit-exact comparison of two exploration results.
fn assert_bit_identical(a: &ExploreResult, b: &ExploreResult) {
    assert_eq!(a.evaluated.len(), b.evaluated.len());
    assert_eq!(a.infeasible, b.infeasible);
    assert_eq!(a.pareto, b.pareto);
    assert_eq!(a.workloads, b.workloads);
    for (x, y) in a.evaluated.iter().zip(&b.evaluated) {
        assert_eq!(x.architecture.name, y.architecture.name);
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.workload_cycles, y.workload_cycles);
        assert_eq!(x.spills, y.spills);
        assert_eq!(x.objectives.axes(), y.objectives.axes());
        let xb: Vec<u64> = x.objectives.values().iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = y.objectives.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "objective bits differ for {}", x.architecture.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline property: for any workload size and threading mode,
    /// a warm-cache run is bit-identical to the cold run that filled the
    /// cache — and answers entirely from it.
    #[test]
    fn warm_cache_is_bit_identical_to_cold(rounds in 1usize..3, parallel in proptest::bool::ANY) {
        let dir = tmpdir(&format!("prop-{rounds}-{parallel}"));
        let cache = SweepCache::open(&dir).expect("temp dir is writable");
        let cold = run_tiny(rounds, parallel, Some(&cache));
        prop_assert!(cache.misses() > 0, "cold run must evaluate");

        // A fresh handle reloads purely from disk.
        let warm_cache = SweepCache::open(&dir).expect("reopen");
        let warm = run_tiny(rounds, parallel, Some(&warm_cache));
        prop_assert!(warm_cache.misses() == 0, "warm run must not evaluate");
        prop_assert!(warm_cache.hits() > 0);
        assert_bit_identical(&cold, &warm);

        // And the serial/parallel invariant still holds through the cache.
        let flipped = run_tiny(rounds, !parallel, Some(&warm_cache));
        assert_bit_identical(&cold, &flipped);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupt_cache_degrades_to_clean_reevaluation() {
    let dir = tmpdir("corrupt");
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join(CACHE_FILE_NAME),
        "ttadse-sweep-cache 1\nE not-hex F bogus\ngarbage line\n",
    )
    .unwrap();
    let cache = SweepCache::open(&dir).expect("open ignores corruption");
    assert!(cache.is_empty(), "corrupt file must load as empty");
    let with_cache = run_tiny(1, false, Some(&cache));
    let without = run_tiny(1, false, None);
    assert_bit_identical(&with_cache, &without);
    // The re-evaluation replaced the corrupt file with a valid one.
    let reloaded = SweepCache::open(&dir).expect("reopen");
    assert!(!reloaded.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_degrades_to_clean_reevaluation() {
    let dir = tmpdir("version");
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join(CACHE_FILE_NAME),
        "ttadse-sweep-cache 999\nE 0000000000000001 I\n",
    )
    .unwrap();
    let cache = SweepCache::open(&dir).expect("open ignores future versions");
    assert!(cache.is_empty());
    let with_cache = run_tiny(1, false, Some(&cache));
    let without = run_tiny(1, false, None);
    assert_bit_identical(&with_cache, &without);
    let _ = fs::remove_dir_all(&dir);
}

/// Number of sweep-evaluation (`E`) entries in the flushed cache file.
fn eval_entries(cache: &SweepCache) -> usize {
    fs::read_to_string(cache.path())
        .expect("flushed")
        .lines()
        .filter(|l| l.starts_with("E "))
        .count()
}

#[test]
fn changed_workload_misses_instead_of_serving_stale_results() {
    let dir = tmpdir("stale");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let first = run_tiny(1, false, Some(&cache));
    let n1 = eval_entries(&cache);
    assert_eq!(n1, first.evaluated.len() + first.infeasible);
    // Two crypt rounds are a different trace: every point gets a fresh
    // evaluation entry instead of a stale hit. (Test-cost lifts *are*
    // shared — they depend on the architecture, not the workload.)
    let second = run_tiny(2, false, Some(&cache));
    assert_eq!(
        eval_entries(&cache),
        n1 + second.evaluated.len() + second.infeasible,
        "each workload suite owns its evaluation entries"
    );
    let _ = fs::remove_dir_all(&dir);
}

fn run_weighted(weights: (f64, f64), parallel: bool, cache: Option<&SweepCache>) -> ExploreResult {
    let a = suite::crypt(1);
    let b = suite::checksum32();
    let mut e = Exploration::over(TemplateSpace::tiny())
        .workload_weighted(&a, weights.0)
        .workload_weighted(&b, weights.1)
        .with_db(db())
        .parallel(parallel);
    if let Some(c) = cache {
        e = e.cache(c);
    }
    e.run()
}

#[test]
fn weighted_suites_are_warm_cold_bit_identical() {
    let dir = tmpdir("weighted");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let cold = run_weighted((3.0, 0.5), false, Some(&cache));
    assert!(cache.misses() > 0, "cold run must evaluate");

    let warm_cache = SweepCache::open(&dir).expect("reopen");
    let warm = run_weighted((3.0, 0.5), true, Some(&warm_cache));
    assert_eq!(warm_cache.misses(), 0, "warm run must not evaluate");
    assert_bit_identical(&cold, &warm);
    // Per-workload feasibility blame replays from the cache too.
    assert_eq!(cold.blocked, warm.blocked);
    for (x, y) in cold.evaluated.iter().zip(&warm.evaluated) {
        assert_eq!(x.weighted_cycles.to_bits(), y.weighted_cycles.to_bits());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_blocked_index_degrades_to_clean_reevaluation() {
    // A well-formed cache line whose blocked-workload payload is out of
    // range for the suite must be re-evaluated, not trusted (it would
    // otherwise index past the per-workload accounting).
    let run = |cache: Option<&SweepCache>| {
        // dct8 needs a MUL and tiny() has none: every point is
        // infeasible with the workload itself to blame, so the cache
        // holds `I 0` entries we can point out of range.
        let w = suite::dct8();
        let mut e = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(db());
        if let Some(c) = cache {
            e = e.cache(c);
        }
        e.run()
    };
    let dir = tmpdir("badblocked");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let clean = run(Some(&cache));
    assert!(clean.infeasible > 0 && clean.blocked == vec![clean.infeasible]);
    let text = fs::read_to_string(cache.path()).expect("flushed");
    assert!(text.contains(" I 0"), "expected blamed entries:\n{text}");
    fs::write(cache.path(), text.replace(" I 0", " I 7")).unwrap();

    let reopened = SweepCache::open(&dir).expect("reopen");
    let replayed = run(Some(&reopened));
    assert_bit_identical(&clean, &replayed);
    assert_eq!(clean.blocked, replayed.blocked);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn reweighting_a_suite_misses_instead_of_serving_stale_results() {
    let dir = tmpdir("reweight");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let first = run_weighted((1.0, 1.0), false, Some(&cache));
    let n1 = eval_entries(&cache);
    // Same workloads, different weights: the exec-time axis changes, so
    // the content address must change with it.
    let second = run_weighted((1.0, 4.0), false, Some(&cache));
    assert_eq!(
        eval_entries(&cache),
        n1 + second.evaluated.len() + second.infeasible,
        "each weighting owns its evaluation entries"
    );
    for (x, y) in first.evaluated.iter().zip(&second.evaluated) {
        assert_eq!(x.workload_cycles, y.workload_cycles);
        assert!(y.exec_time() > x.exec_time(), "upweighting slows the axis");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unfingerprintable_model_bypasses_the_eval_cache() {
    struct FlatArea;
    impl AreaModel for FlatArea {
        fn area(&self, _: &Architecture, _: &ComponentDb) -> f64 {
            42.0
        }
        // No fingerprint() override: the default None opts out.
    }
    let dir = tmpdir("optout");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let w = suite::crypt(1);
    let first = Exploration::over(TemplateSpace::tiny())
        .workload(&w)
        .with_db(db())
        .area_model(FlatArea)
        .cache(&cache)
        .run();
    // Evaluations must not be cached (the area model is opaque); the
    // default test-cost model is fingerprintable, so lifts still are —
    // and that is sound, because a lift depends only on the
    // architecture, the test model and the annotation engines.
    let text = fs::read_to_string(cache.path()).expect("flushed");
    assert!(
        !text.lines().any(|l| l.starts_with("E ")),
        "no eval entries for an unfingerprintable model:\n{text}"
    );
    assert_eq!(
        text.lines().filter(|l| l.starts_with("T ")).count(),
        first.pareto.len(),
        "test lifts are still content-addressable"
    );
    // A second run is correct (and still flat-area).
    let second = Exploration::over(TemplateSpace::tiny())
        .workload(&w)
        .with_db(db())
        .area_model(FlatArea)
        .cache(&cache)
        .run();
    assert_bit_identical(&first, &second);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cold_sweep_reads_the_cache_once_per_chunk_not_per_point() {
    // Regression guard for the batched-prefetch path: the sweep loop
    // must issue ONE cache read per 64-point chunk (plus one per front
    // point for the test-cost lift), never one per point.
    let dir = tmpdir("reads");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let space = TemplateSpace::fast_default();
    let points = space.len();
    let w = suite::crypt(1);
    let result = Exploration::over(space)
        .workload(&w)
        .with_db(db())
        .cache(&cache)
        .run();
    let chunks = points.div_ceil(64) as u64;
    let lifts = result.pareto.len() as u64;
    assert_eq!(
        cache.reads(),
        chunks + lifts,
        "expected one batched read per chunk ({chunks}) plus one lift \
         probe per front point ({lifts}), for {points} points"
    );
    assert!(
        cache.reads() < points as u64,
        "reads must not scale per-point"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cross_space_points_share_entries() {
    // tiny() is a subset of fast_default(): a fast-space sweep must
    // pre-populate every tiny-space point.
    let dir = tmpdir("subset");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let w = suite::crypt(1);
    Exploration::over(TemplateSpace::fast_default())
        .workload(&w)
        .with_db(db())
        .cache(&cache)
        .run();
    let n = eval_entries(&cache);
    let h0 = cache.hits();
    run_tiny(1, false, Some(&cache));
    assert!(
        cache.hits() > h0,
        "tiny points were cached by the fast sweep"
    );
    assert_eq!(
        eval_entries(&cache),
        n,
        "no tiny point should re-evaluate (its front may still lift fresh test entries)"
    );
    let _ = fs::remove_dir_all(&dir);
}
