//! Differential tests of the incremental (delta) evaluation engine.
//!
//! The headline guarantee of [`tta_core::explore::EvalMode`]: `Delta`
//! is **bit-identical** to `Scratch` — objectives, Pareto front,
//! blocked accounting, cache addresses, even the flushed cache file —
//! across spaces, strategies, seeds, lift modes, cycle sources and test
//! models. These tests enforce it on exact `f64` bit patterns, plus the
//! memo-arena staleness guarantees: a primed (deliberately wrong)
//! record is served while the database fingerprint matches, and never
//! survives a fingerprint change.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;
use tta_arch::template::TemplateSpace;
use tta_arch::Architecture;
use tta_atpg::AtpgConfig;
use tta_core::explore::{CycleSource, EvalMode, Exploration, ExploreResult, LiftMode};
use tta_core::models::{AnnotatedAreaModel, AreaModel, InterconnectModel, ScanTestCostModel};
use tta_core::search::{
    Exhaustive, HillClimb, RandomSample, SearchContext, SearchStrategy, WalkOrder,
};
use tta_core::{ComponentDb, ComponentKey, DeltaEvaluator, SweepCache};
use tta_dft::march::MarchAlgorithm;
use tta_workloads::suite;

/// One shared annotation database so the many sweeps below pay for the
/// 8-bit component library once.
fn db() -> &'static ComponentDb {
    static DB: OnceLock<ComponentDb> = OnceLock::new();
    DB.get_or_init(ComponentDb::new)
}

/// A small *hierarchical* space: every PR-8 knob class (interconnect
/// clustering, per-FU pipelining, RF banking) takes more than one value,
/// so the carried-fold retract/apply pairs see cluster-, pipe- and
/// bank-dependent component keys — 64 points, cheap enough to sweep
/// exhaustively against the oracle.
fn hier_space() -> TemplateSpace {
    TemplateSpace {
        width: 8,
        buses: vec![1, 2],
        clusters: vec![1, 2],
        alus: vec![1, 2],
        cmps: vec![1],
        muls: vec![0, 1],
        imms: vec![1],
        pipes: vec![1, 2],
        rf_banks: vec![1, 2],
        rf_sets: vec![vec![(8, 1, 2)]],
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ttadse-delta-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Bit-exact comparison of two exploration results, including the front
/// and the per-workload feasibility blame.
fn assert_bit_identical(a: &ExploreResult, b: &ExploreResult) {
    assert_eq!(a.evaluated.len(), b.evaluated.len());
    assert_eq!(a.infeasible, b.infeasible);
    assert_eq!(a.pareto, b.pareto);
    assert_eq!(a.blocked, b.blocked);
    for (x, y) in a.evaluated.iter().zip(&b.evaluated) {
        assert_eq!(x.architecture.name, y.architecture.name);
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.workload_cycles, y.workload_cycles);
        assert_eq!(x.spills, y.spills);
        assert_eq!(x.objectives.axes(), y.objectives.axes());
        let xb: Vec<u64> = x.objectives.values().iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = y.objectives.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "objective bits differ for {}", x.architecture.name);
    }
}

/// Builds the sweep both ways and checks bit-identity.
fn assert_modes_agree(build: impl Fn(EvalMode) -> Exploration<'static>) {
    let scratch = build(EvalMode::Scratch).run();
    let delta = build(EvalMode::Delta).run();
    assert_bit_identical(&scratch, &delta);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Delta == scratch, bit for bit, over random strategies, seeds,
    /// budgets, lift modes and threading.
    #[test]
    fn delta_equals_scratch_across_strategies(
        strategy in 0usize..4,
        seed in 0u64..1000,
        budget in 4usize..24,
        full_lift in proptest::bool::ANY,
        parallel in proptest::bool::ANY,
    ) {
        let build = move |mode: EvalMode| {
            let w = suite::crypt(1);
            let lift = if full_lift { LiftMode::Full } else { LiftMode::ParetoOnly };
            let e = Exploration::over(TemplateSpace::fast_default())
                .workload(&w)
                .with_db(db())
                .lift(lift)
                .parallel(parallel)
                .eval_mode(mode)
                .seed(seed);
            match strategy {
                0 => e.strategy(Exhaustive),
                1 => e.strategy(Exhaustive::neighbour()),
                2 => e.strategy(RandomSample).budget(budget),
                _ => e.strategy(HillClimb::default()).budget(budget),
            }
        };
        let scratch = build(EvalMode::Scratch).run();
        let delta = build(EvalMode::Delta).run();
        assert_bit_identical(&scratch, &delta);
    }
}

#[test]
fn delta_equals_scratch_on_weighted_suites_and_simulated_cycles() {
    let a = suite::crypt(1);
    let b = suite::checksum32();
    assert_modes_agree(|mode| {
        Exploration::over(TemplateSpace::tiny())
            .workload_weighted(&a, 2.5)
            .workload_weighted(&b, 0.5)
            .with_db(db())
            .cycle_source(CycleSource::Simulate)
            .eval_mode(mode)
    });
}

#[test]
fn delta_equals_scratch_under_a_custom_test_model() {
    // ScanTestCostModel is a *custom* model slot: the delta path must
    // leave it untouched (only defaults are wrapped) and still match
    // scratch bit-for-bit on the remaining default axes.
    assert_modes_agree(|mode| {
        let w = suite::crypt(1);
        Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(db())
            .test_cost_model(ScanTestCostModel::with_chains(2))
            .lift(LiftMode::Full)
            .eval_mode(mode)
    });
}

/// The two modes share one cache namespace: same addresses, same
/// entries, byte-identical flushed files — and a warm delta run answers
/// entirely from a scratch run's cache (and vice versa).
#[test]
fn delta_and_scratch_share_byte_identical_cache_files() {
    let w = suite::crypt(1);
    let run = |mode: EvalMode, cache: &SweepCache| {
        Exploration::over(TemplateSpace::fast_default())
            .workload(&w)
            .with_db(db())
            .cache(cache)
            .eval_mode(mode)
            .run()
    };
    let dir_s = tmpdir("scratch");
    let dir_d = tmpdir("delta");
    let cache_s = SweepCache::open(&dir_s).expect("temp dir is writable");
    let cache_d = SweepCache::open(&dir_d).expect("temp dir is writable");
    let scratch = run(EvalMode::Scratch, &cache_s);
    let delta = run(EvalMode::Delta, &cache_d);
    assert_bit_identical(&scratch, &delta);
    let file_s = fs::read(cache_s.path()).expect("scratch cache flushed");
    let file_d = fs::read(cache_d.path()).expect("delta cache flushed");
    assert_eq!(file_s, file_d, "cache files must be byte-identical");

    // Cross-warm: delta over the scratch-written cache hits everything.
    let warm = SweepCache::open(&dir_s).expect("reopen");
    let replay = run(EvalMode::Delta, &warm);
    assert_eq!(warm.misses(), 0, "warm delta run must not evaluate");
    assert!(warm.hits() > 0);
    assert_bit_identical(&scratch, &replay);
    let _ = fs::remove_dir_all(&dir_s);
    let _ = fs::remove_dir_all(&dir_d);
}

/// An interrupted (budgeted) delta run resumed over the same cache
/// finishes bit-identical to an uninterrupted scratch sweep.
#[test]
fn resumed_delta_run_matches_uninterrupted_scratch() {
    let w = suite::crypt(1);
    let dir = tmpdir("resume");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let space = TemplateSpace::fast_default();
    let half = space.len() / 2;
    Exploration::over(space.clone())
        .workload(&w)
        .with_db(db())
        .cache(&cache)
        .eval_mode(EvalMode::Delta)
        .budget(half)
        .run();
    let resumed = Exploration::over(space.clone())
        .workload(&w)
        .with_db(db())
        .cache(&cache)
        .eval_mode(EvalMode::Delta)
        .run();
    let oracle = Exploration::over(space)
        .workload(&w)
        .with_db(db())
        .eval_mode(EvalMode::Scratch)
        .run();
    assert_bit_identical(&resumed, &oracle);
    let _ = fs::remove_dir_all(&dir);
}

/// Neighbour-order evaluation visits the same points with the same
/// per-point results and writes a byte-identical cache file — only the
/// visit order (and hence result indices) differs.
#[test]
fn neighbour_walk_matches_enumeration_order_point_for_point() {
    let w = suite::crypt(1);
    let run = |neighbour: bool, cache: &SweepCache| {
        let e = Exploration::over(TemplateSpace::fast_default())
            .workload(&w)
            .with_db(db())
            .cache(cache);
        if neighbour {
            e.strategy(Exhaustive::neighbour()).run()
        } else {
            e.strategy(Exhaustive).run()
        }
    };
    let dir_e = tmpdir("enum-order");
    let dir_n = tmpdir("gray-order");
    let cache_e = SweepCache::open(&dir_e).expect("temp dir is writable");
    let cache_n = SweepCache::open(&dir_n).expect("temp dir is writable");
    let plain = run(false, &cache_e);
    let gray = run(true, &cache_n);

    assert_eq!(plain.evaluated.len(), gray.evaluated.len());
    assert_eq!(plain.infeasible, gray.infeasible);
    // Same per-point bits, matched by architecture name.
    let by_name = |r: &ExploreResult| {
        let mut v: Vec<(String, Vec<u64>)> = r
            .evaluated
            .iter()
            .map(|e| {
                (
                    e.architecture.name.clone(),
                    e.objectives.values().iter().map(|x| x.to_bits()).collect(),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(by_name(&plain), by_name(&gray));
    // Same front, as a set of architectures.
    let front_names = |r: &ExploreResult| {
        let mut v: Vec<String> = r
            .pareto
            .iter()
            .map(|&i| r.evaluated[i].architecture.name.clone())
            .collect();
        v.sort();
        v
    };
    assert_eq!(front_names(&plain), front_names(&gray));
    // Same cache namespace (salt None) ⇒ byte-identical files.
    assert_eq!(
        fs::read(cache_e.path()).expect("flushed"),
        fs::read(cache_n.path()).expect("flushed"),
        "visit order must not leak into cache addresses"
    );
    let _ = fs::remove_dir_all(&dir_e);
    let _ = fs::remove_dir_all(&dir_n);
}

/// Memoization is real: a deliberately wrong record primed under the
/// *matching* database fingerprint is served instead of the database's
/// own record.
#[test]
fn primed_record_is_served_while_the_guard_matches() {
    let db = ComponentDb::new();
    let ic = InterconnectModel::paper();
    let eval = DeltaEvaluator::new(ic);
    let arch = TemplateSpace::tiny().point(0);
    let honest = eval.area(&arch, &db);
    assert_eq!(
        honest.to_bits(),
        AnnotatedAreaModel::new(ic).area(&arch, &db).to_bits()
    );

    let key = ComponentKey::Alu(8);
    let mut poisoned = (*db.get(key)).clone();
    poisoned.area += 1_000_000.0;
    eval.prime(db.fingerprint(), key, poisoned);
    let skewed = eval.area(&arch, &db);
    assert!(
        skewed > honest + 500_000.0,
        "the primed record must be served: {skewed} vs {honest}"
    );
}

/// Invalidation is real: the same poison never survives a database
/// fingerprint change — the arena is evicted wholesale and the result
/// is bit-identical to a scratch evaluation against the new database.
#[test]
fn stale_arena_is_evicted_on_a_database_fingerprint_change() {
    let db_sweep = ComponentDb::new();
    // Different ATPG profile ⇒ different engine fingerprint.
    let db_deep = ComponentDb::with_engines(AtpgConfig::default(), MarchAlgorithm::march_cminus());
    assert_ne!(db_sweep.fingerprint(), db_deep.fingerprint());

    let ic = InterconnectModel::paper();
    let eval = DeltaEvaluator::new(ic);
    let arch = TemplateSpace::tiny().point(0);
    let key = ComponentKey::Alu(8);
    let mut poisoned = (*db_sweep.get(key)).clone();
    poisoned.area += 1_000_000.0;
    eval.prime(db_sweep.fingerprint(), key, poisoned);
    assert!(eval.cached(key).is_some(), "poison installed");

    // Evaluating against the *other* database must evict the arena and
    // never serve the stale record.
    let fresh = eval.area(&arch, &db_deep);
    assert_eq!(
        fresh.to_bits(),
        AnnotatedAreaModel::new(ic).area(&arch, &db_deep).to_bits(),
        "stale cached entry must not survive the guard change"
    );
    let survivor = eval.cached(key).expect("re-memoized from db_deep");
    assert_eq!(survivor.area.to_bits(), db_deep.get(key).area.to_bits());
}

/// Custom (even unfingerprintable) models are never wrapped by the
/// delta path: under `EvalMode::Delta` they are called exactly as often
/// as under `Scratch`, with no memoization in between.
#[test]
fn custom_models_bypass_the_delta_path() {
    static CALLS: AtomicUsize = AtomicUsize::new(0);
    struct CountingArea;
    impl AreaModel for CountingArea {
        fn area(&self, _: &Architecture, _: &ComponentDb) -> f64 {
            CALLS.fetch_add(1, Ordering::Relaxed);
            42.0
        }
        // No fingerprint() override: unfingerprintable on purpose.
    }
    let w = suite::crypt(1);
    let run = |mode: EvalMode| {
        Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(db())
            .area_model(CountingArea)
            .eval_mode(mode)
            .run()
    };
    let before = CALLS.load(Ordering::Relaxed);
    let scratch = run(EvalMode::Scratch);
    let scratch_calls = CALLS.load(Ordering::Relaxed) - before;
    let delta = run(EvalMode::Delta);
    let delta_calls = CALLS.load(Ordering::Relaxed) - before - scratch_calls;
    assert_eq!(
        scratch_calls, delta_calls,
        "a custom model must be consulted identically in both modes"
    );
    assert!(delta_calls > 0);
    assert_bit_identical(&scratch, &delta);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// PR-8: delta == scratch, bit for bit, over the *hierarchical*
    /// space — clusters, per-FU pipelining and RF banking all vary, so
    /// the carried-fold retract/apply pairs touch every new knob class —
    /// across strategies, seeds, budgets, lift modes, threading and the
    /// scan test model.
    #[test]
    fn delta_equals_scratch_on_the_hierarchical_space(
        strategy in 0usize..4,
        seed in 0u64..1000,
        budget in 4usize..16,
        full_lift in proptest::bool::ANY,
        parallel in proptest::bool::ANY,
        scan in proptest::bool::ANY,
    ) {
        let build = move |mode: EvalMode| {
            let w = suite::checksum32();
            let lift = if full_lift { LiftMode::Full } else { LiftMode::ParetoOnly };
            let mut e = Exploration::over(hier_space())
                .workload(&w)
                .with_db(db())
                .lift(lift)
                .parallel(parallel)
                .eval_mode(mode)
                .seed(seed);
            if scan {
                e = e.test_cost_model(ScanTestCostModel::with_chains(2));
            }
            match strategy {
                0 => e.strategy(Exhaustive),
                1 => e.strategy(Exhaustive::neighbour()),
                2 => e.strategy(RandomSample).budget(budget),
                _ => e.strategy(HillClimb::default()).budget(budget),
            }
        };
        let scratch = build(EvalMode::Scratch).run();
        let delta = build(EvalMode::Delta).run();
        assert_bit_identical(&scratch, &delta);
    }
}

/// A budget-interrupted Gray-code walk over the hierarchical space,
/// resumed over the same cache, finishes bit-identical to an
/// uninterrupted scratch sweep — cache hits reset the carry instead of
/// advancing a stale one.
#[test]
fn budget_interrupted_neighbour_walk_resumes_bit_identically() {
    let w = suite::checksum32();
    let dir = tmpdir("hier-resume");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let space = hier_space();
    let half = space.len() / 2;
    Exploration::over(space.clone())
        .workload(&w)
        .with_db(db())
        .cache(&cache)
        .eval_mode(EvalMode::Delta)
        .strategy(Exhaustive::neighbour())
        .budget(half)
        .run();
    let resumed = Exploration::over(space.clone())
        .workload(&w)
        .with_db(db())
        .cache(&cache)
        .eval_mode(EvalMode::Delta)
        .strategy(Exhaustive::neighbour())
        .run();
    let oracle = Exploration::over(space)
        .workload(&w)
        .with_db(db())
        .eval_mode(EvalMode::Scratch)
        .strategy(Exhaustive::neighbour())
        .run();
    assert_bit_identical(&resumed, &oracle);
    let _ = fs::remove_dir_all(&dir);
}

/// A deliberately *discontinuous* neighbour-order strategy: it asks for
/// Gray-walk evaluation order but proposes a rank gap — the shape a
/// budget-truncated, re-sorted batch leaves behind. The carried-fold
/// engine must refold from scratch at the gap rather than advance a
/// stale carry, and stay bit-identical to the oracle.
#[derive(Clone)]
struct GappedNeighbourWalk {
    proposed: bool,
}

impl SearchStrategy for GappedNeighbourWalk {
    fn name(&self) -> &'static str {
        "gapped-neighbour"
    }
    fn cache_salt(&self) -> Option<u64> {
        Some(0x6a70)
    }
    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Vec<usize> {
        if self.proposed {
            return Vec::new();
        }
        self.proposed = true;
        // Two contiguous Gray-rank runs with a hole between them.
        [0usize, 1, 2, 10, 11, 12]
            .into_iter()
            .map(|rank| ctx.space().neighbour_index(rank))
            .collect()
    }
    fn walk_order(&self) -> WalkOrder {
        WalkOrder::Neighbour
    }
}

#[test]
fn walk_discontinuity_falls_back_to_a_scratch_refold() {
    let w = suite::checksum32();
    let run = |mode: EvalMode| {
        Exploration::over(TemplateSpace::huge())
            .workload(&w)
            .with_db(db())
            .eval_mode(mode)
            .strategy(GappedNeighbourWalk { proposed: false })
            .run()
    };
    let delta = run(EvalMode::Delta);
    let scratch = run(EvalMode::Scratch);
    assert_bit_identical(&scratch, &delta);
    let stats = delta.delta.expect("delta mode reports stats");
    assert_eq!(
        stats.scratch_fallbacks, 2,
        "rank 0 (no predecessor) and the gap at rank 10 must refold"
    );
    assert_eq!(stats.fold_carries, 4, "the contiguous steps must carry");
    assert!(scratch.delta.is_none(), "scratch mode reports no stats");
}

/// The PR-8 headline path end to end: a seeded, budgeted Gray-code walk
/// over the 2^20-point hierarchical space. The proposal is a contiguous
/// rank prefix, so the carried-fold engine must take the O(1) carry on
/// every step after the first — and agree with the scratch oracle bit
/// for bit.
#[test]
fn budgeted_huge_space_walk_is_bit_identical_and_carries_every_step() {
    let w = suite::checksum32();
    let run = |mode: EvalMode| {
        Exploration::over(TemplateSpace::huge())
            .workload(&w)
            .with_db(db())
            .eval_mode(mode)
            .strategy(Exhaustive::neighbour())
            .budget(256)
            .seed(7)
            .run()
    };
    let delta = run(EvalMode::Delta);
    let scratch = run(EvalMode::Scratch);
    assert_bit_identical(&scratch, &delta);
    assert_eq!(delta.search.evaluations, 256);
    let stats = delta.delta.expect("delta stats");
    assert_eq!(stats.fold_carries, 255);
    assert_eq!(stats.scratch_fallbacks, 1);
}
