//! The analytical test-cost functions of the paper — eqs. (11)–(14).
//!
//! * eq. (11): `ftfu = np · CDfu(tDin, tDout)` — the functional-unit cost
//!   is its pattern count times the per-pattern transport distance. The
//!   paper's `⌈nconn/nb⌉` ratio materialises through the socket→bus
//!   assignment: when a unit has more connectors than there are buses,
//!   ports share a bus and `CD` grows per eq. (10) (see
//!   [`tta_arch::timing::transport_cycles`]). The explicit ratio form is
//!   also provided ([`ftfu_ratio`]) for the Figure 6 experiment.
//! * eq. (12): `ftrf` — marching patterns divided by the usable port
//!   parallelism, with a serialisation penalty when both `nin` and `nout`
//!   exceed the bus count.
//! * eq. (13): `fts = np · nl` — socket logic is scan-tested; the chain
//!   spans the socket control state *and* the component's pipeline
//!   registers.
//! * eq. (14): the total is the sum over FUs, RFs and sockets.
//!
//! LD/ST, PC and the Immediate unit "always appear once for arbitrary
//! architecture and application; hence, they contribute equally" — they
//! are reported but excluded from the comparative total, as in the paper.

use tta_arch::{timing, Architecture, FuKind};

use crate::backannotate::{ComponentDb, ComponentKey, RecordSource};

/// Test cost of one datapath component (one Table 1 row).
#[derive(Debug, Clone)]
pub struct ComponentTestCost {
    /// Display name (`ALU`, `CMP`, `RF1`, …).
    pub name: String,
    /// Structural/marching pattern count `np`.
    pub np: usize,
    /// Transport distance `CD(tDin, tDout)` in cycles.
    pub cd: u32,
    /// `ftfu` or `ftrf` (functional application cycles).
    pub functional_cost: f64,
    /// Socket pattern count (scan).
    pub socket_np: usize,
    /// Socket scan-chain length `nl` (pipeline registers + socket state).
    pub nl: usize,
    /// `fts = socket_np · nl` (eq. 13).
    pub fts: f64,
    /// Fault coverage of the functional pattern set.
    pub fault_coverage: f64,
    /// Excluded from the comparative total (LD/ST, PC, IMM)?
    pub excluded: bool,
}

impl ComponentTestCost {
    /// Total cycles of the proposed approach for this component
    /// (functional patterns + socket scan), the paper's "our approach"
    /// column.
    pub fn our_approach_cycles(&self) -> f64 {
        self.functional_cost + self.fts
    }
}

/// Complete test cost of one architecture.
#[derive(Debug, Clone)]
pub struct ArchTestCost {
    /// Per-component breakdown.
    pub components: Vec<ComponentTestCost>,
    /// eq. (14) total over the non-excluded components.
    pub total: f64,
}

impl ArchTestCost {
    /// Sum of functional costs only (Σ ftfu + Σ ftrf).
    pub fn functional_total(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| !c.excluded)
            .map(|c| c.functional_cost)
            .sum()
    }

    /// Sum of socket scan costs only (Σ fts).
    pub fn socket_total(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| !c.excluded)
            .map(|c| c.fts)
            .sum()
    }
}

/// eq. (11) in the explicit ratio form: `np · CD_const · max(1, nconn/nb)`.
///
/// Used by the Figure 6 harness to show two *identical* units costing
/// differently purely through their port/bus situation.
pub fn ftfu_ratio(np: usize, cd: u32, nconn: usize, nb: usize) -> f64 {
    let ratio = (nconn as f64 / nb as f64).max(1.0);
    np as f64 * f64::from(cd) * ratio
}

/// eq. (12): register-file cost from marching pattern count and port/bus
/// parallelism.
pub fn ftrf(np: usize, cd: u32, nin: usize, nout: usize, nb: usize) -> f64 {
    let both_exceed = nin > nb && nout > nb;
    if both_exceed {
        // Port accesses must be serialised over the buses.
        let serialisation = nin.max(nout) as f64 / nb as f64;
        np as f64 * f64::from(cd) * serialisation
    } else {
        // Marching vectors applied in parallel over the usable ports.
        let parallel = nin.min(nout).min(nb).max(1) as f64;
        np as f64 * f64::from(cd) / parallel
    }
}

/// eq. (13): socket scan cost.
pub fn fts(socket_np: usize, nl: usize) -> f64 {
    (socket_np * nl) as f64
}

/// Socket/stage control state bits added around a component with
/// `n_input_ports` (Fin per input, Fout, 3-bit stage FSM).
pub fn socket_state_bits(n_input_ports: usize) -> usize {
    n_input_ports + 4
}

/// An infinite test cost marking an architecture outside the component
/// model's domain (the same convention as the area/timing models: the
/// sweep and any selection drop such points instead of trusting a
/// silently truncated key). Shared with the scan-based model in
/// [`crate::models`].
pub(crate) fn out_of_model() -> ArchTestCost {
    ArchTestCost {
        components: Vec::new(),
        total: f64::INFINITY,
    }
}

/// Computes the full eq.-(14) test cost of `arch`, back-annotating
/// components through `db` as needed.
///
/// Architectures outside the component model's domain (width or RF/port
/// geometry overflowing the [`ComponentKey`] fields) get an empty
/// breakdown with an infinite total rather than a truncated-key cost.
pub fn architecture_test_cost(arch: &Architecture, db: &ComponentDb) -> ArchTestCost {
    test_cost_from(arch, db)
}

/// The eq.-(14) fold over an arbitrary [`RecordSource`] — the one code
/// path shared by [`architecture_test_cost`] and the memoizing
/// [`crate::delta::DeltaEvaluator`], so scratch and delta test costs are
/// bit-identical by construction.
pub(crate) fn test_cost_from(arch: &Architecture, src: &dyn RecordSource) -> ArchTestCost {
    let Ok(w) = u16::try_from(arch.width) else {
        return out_of_model();
    };
    let mut components = Vec::new();

    for fu in arch.fus() {
        let rec = src.record(ComponentKey::for_fu(fu.kind, w)).clone();
        let n_inputs = fu.kind.input_ports();
        let Some(sock_key) = ComponentKey::socket_group(w, n_inputs) else {
            return out_of_model();
        };
        let sock = src.record(sock_key).clone();
        let cd = timing::transport_cycles(fu);
        let nl = rec.ff_infrastructure + socket_state_bits(n_inputs);
        let excluded = matches!(fu.kind, FuKind::LdSt | FuKind::Pc | FuKind::Immediate);
        components.push(ComponentTestCost {
            name: fu.name.clone(),
            np: rec.np,
            cd,
            functional_cost: rec.np as f64 * f64::from(cd),
            socket_np: sock.np,
            nl,
            fts: fts(sock.np, nl),
            fault_coverage: rec.adjusted_coverage,
            excluded,
        });
    }

    for rf in arch.rfs() {
        let (Some(key), Some(sock_key)) = (
            ComponentKey::for_rf(rf, w),
            ComponentKey::socket_group(w, rf.nin()),
        ) else {
            return out_of_model();
        };
        let rec = src.record(key).clone();
        let sock = src.record(sock_key).clone();
        let cd = timing::rf_transport_cycles(rf.write_ports[0], rf.read_ports[0]);
        let nl = rec.ff_infrastructure + socket_state_bits(rf.nin());
        components.push(ComponentTestCost {
            name: rf.name.clone(),
            np: rec.np,
            cd,
            functional_cost: ftrf(rec.np, cd, rf.nin(), rf.nout(), arch.bus_count()),
            socket_np: sock.np,
            nl,
            fts: fts(sock.np, nl),
            fault_coverage: rec.adjusted_coverage,
            excluded: false,
        });
    }

    let total = components
        .iter()
        .filter(|c| !c.excluded)
        .map(ComponentTestCost::our_approach_cycles)
        .sum();
    ArchTestCost { components, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_arch::template::TemplateBuilder;

    fn arch8(buses: usize) -> Architecture {
        TemplateBuilder::new(format!("t{buses}"), 8, buses)
            .fu(FuKind::Alu)
            .fu(FuKind::Cmp)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .build()
    }

    #[test]
    fn fewer_buses_cost_more() {
        let db = ComponentDb::new();
        let wide = architecture_test_cost(&arch8(4), &db).total;
        let narrow = architecture_test_cost(&arch8(1), &db).total;
        assert!(
            narrow > wide,
            "1-bus cost {narrow} must exceed 4-bus cost {wide}"
        );
    }

    #[test]
    fn excluded_units_not_in_total() {
        let db = ComponentDb::new();
        let cost = architecture_test_cost(&arch8(2), &db);
        let included: f64 = cost
            .components
            .iter()
            .filter(|c| !c.excluded)
            .map(|c| c.our_approach_cycles())
            .sum();
        assert_eq!(cost.total, included);
        assert!(cost.components.iter().any(|c| c.excluded));
    }

    #[test]
    fn ratio_form_matches_figure6_story() {
        // Identical FU, dedicated vs shared buses.
        let dedicated = ftfu_ratio(14, 3, 3, 3);
        let shared = ftfu_ratio(14, 3, 3, 2);
        assert!(shared > dedicated);
        assert_eq!(dedicated, 14.0 * 3.0);
    }

    #[test]
    fn rf_port_parallelism_divides_cost() {
        // 2 write + 2 read ports on a 2-bus machine: march halves.
        let two_ports = ftrf(80, 3, 2, 2, 2);
        let one_port = ftrf(80, 3, 1, 1, 2);
        assert_eq!(two_ports, 80.0 * 3.0 / 2.0);
        assert_eq!(one_port, 80.0 * 3.0);
        // Both port counts above the bus count: serialisation penalty.
        let clogged = ftrf(80, 3, 3, 3, 2);
        assert_eq!(clogged, 80.0 * 3.0 * 1.5);
    }

    #[test]
    fn out_of_model_rf_costs_infinity_not_a_truncated_key() {
        // 70_000 registers overflow the u16 key field; the old `as` cast
        // aliased this to a tiny RF and returned a confident wrong cost.
        let arch = TemplateBuilder::new("wide", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Pc)
            .rf(70_000, 1, 2)
            .build();
        let db = ComponentDb::new();
        let cost = architecture_test_cost(&arch, &db);
        assert!(cost.total.is_infinite());
        assert!(cost.components.is_empty());
    }

    #[test]
    fn socket_cost_uses_pipeline_chain() {
        let db = ComponentDb::new();
        let cost = architecture_test_cost(&arch8(2), &db);
        let alu = cost
            .components
            .iter()
            .find(|c| c.name.starts_with("alu"))
            .unwrap();
        // 8-bit ALU: O+T+R (24) + opcode (3) + v (1) + sockets (2+4).
        assert_eq!(alu.nl, 24 + 3 + 1 + 6);
        assert!(alu.fts > 0.0);
    }
}
