//! The ordered test programme of Section 3.2: "the order of test is
//! important for these architectures, i.e. it is necessary to perform the
//! interconnect test of the sockets and busses before carrying out the
//! functional test of the components" — the Core-Based-Test analogy
//! (interconnect test ≙ TAM test, functional component test ≙ IP test).

use std::fmt;

use tta_arch::Architecture;

use crate::backannotate::ComponentDb;
use crate::testcost::{architecture_test_cost, ComponentTestCost};

/// One phase of the test programme.
#[derive(Debug, Clone, PartialEq)]
pub enum TestPhase {
    /// Scan test of one component's socket group (also covers the bus
    /// interconnect reaching it). Carries `(component, cycles)`.
    SocketScan(String, f64),
    /// Functional application of one component's structural patterns over
    /// the (already verified) buses. Carries `(component, cycles)`.
    Functional(String, f64),
}

impl TestPhase {
    /// The phase's cycle cost.
    pub fn cycles(&self) -> f64 {
        match self {
            TestPhase::SocketScan(_, c) | TestPhase::Functional(_, c) => *c,
        }
    }

    /// The component under test.
    pub fn component(&self) -> &str {
        match self {
            TestPhase::SocketScan(n, _) | TestPhase::Functional(n, _) => n,
        }
    }
}

impl fmt::Display for TestPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestPhase::SocketScan(n, c) => write!(f, "scan   {n:<8} {c:>8.0} cycles"),
            TestPhase::Functional(n, c) => write!(f, "func   {n:<8} {c:>8.0} cycles"),
        }
    }
}

/// The complete ordered programme for one architecture.
#[derive(Debug, Clone)]
pub struct TestPlan {
    /// Phases in application order.
    pub phases: Vec<TestPhase>,
}

impl TestPlan {
    /// Builds the plan: all socket-scan phases first (interconnect), then
    /// every component's functional phase.
    pub fn for_architecture(arch: &Architecture, db: &ComponentDb) -> Self {
        let cost = architecture_test_cost(arch, db);
        Self::from_costs(&cost.components)
    }

    /// Builds a plan from precomputed per-component costs.
    pub fn from_costs(components: &[ComponentTestCost]) -> Self {
        let mut phases = Vec::with_capacity(components.len() * 2);
        for c in components {
            phases.push(TestPhase::SocketScan(c.name.clone(), c.fts));
        }
        for c in components {
            phases.push(TestPhase::Functional(c.name.clone(), c.functional_cost));
        }
        TestPlan { phases }
    }

    /// Total programme length in cycles.
    pub fn total_cycles(&self) -> f64 {
        self.phases.iter().map(TestPhase::cycles).sum()
    }

    /// Invariant: every functional phase runs after *all* scan phases
    /// (the interconnect must be known-good before patterns ride it).
    pub fn interconnect_first(&self) -> bool {
        let first_func = self
            .phases
            .iter()
            .position(|p| matches!(p, TestPhase::Functional(..)));
        let last_scan = self
            .phases
            .iter()
            .rposition(|p| matches!(p, TestPhase::SocketScan(..)));
        match (first_func, last_scan) {
            (Some(f), Some(s)) => s < f,
            _ => true,
        }
    }
}

impl fmt::Display for TestPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "test programme ({:.0} cycles):", self.total_cycles())?;
        for (i, p) in self.phases.iter().enumerate() {
            writeln!(f, "  {:>2}. {p}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_arch::template::TemplateBuilder;
    use tta_arch::FuKind;

    fn arch() -> Architecture {
        TemplateBuilder::new("plan", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Cmp)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .build()
    }

    #[test]
    fn interconnect_precedes_functional() {
        let db = ComponentDb::new();
        let plan = TestPlan::for_architecture(&arch(), &db);
        assert!(plan.interconnect_first());
        // Two phases per component (FUs + RFs).
        assert_eq!(plan.phases.len(), 2 * (5 + 1));
    }

    #[test]
    fn totals_are_consistent_with_cost_model() {
        let db = ComponentDb::new();
        let a = arch();
        let cost = architecture_test_cost(&a, &db);
        let plan = TestPlan::for_architecture(&a, &db);
        let expect: f64 = cost
            .components
            .iter()
            .map(|c| c.functional_cost + c.fts)
            .sum();
        assert!((plan.total_cycles() - expect).abs() < 1e-9);
    }

    #[test]
    fn display_orders_phases() {
        let db = ComponentDb::new();
        let plan = TestPlan::for_architecture(&arch(), &db);
        let text = plan.to_string();
        let scan_pos = text.find("scan").unwrap();
        let func_pos = text.find("func").unwrap();
        assert!(scan_pos < func_pos, "{text}");
    }
}
