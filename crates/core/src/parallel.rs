//! Minimal order-preserving parallel map over scoped threads.
//!
//! The sweep wants rayon-style `par_iter().map().collect()` semantics,
//! but the build container has no registry access, so this implements the
//! one shape the pipeline needs on `std::thread::scope`: a work-stealing
//! index counter with results merged back into input order. Output is
//! therefore *bit-identical* to the serial map regardless of thread
//! count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// input order. `f` receives `(index, &item)`. Falls back to a plain
/// serial map for `threads <= 1` or tiny inputs.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected.lock().expect("worker panicked").extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("worker panicked");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map(&items, 1, |_, &x| x * 3 + 1);
        let parallel = par_map(&items, 8, |_, &x| x * 3 + 1);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[10], 31);
    }

    #[test]
    fn passes_indices() {
        let items = vec!["a"; 64];
        let out = par_map(&items, 4, |i, _| i);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u8], 8, |_, &x| x + 1), vec![6]);
    }
}
