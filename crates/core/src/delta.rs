//! Incremental (delta) point evaluation with a memoized component arena.
//!
//! A design-space sweep evaluates thousands of points whose cost is a
//! fold over *per-component* contributions — and neighbouring points
//! share almost all of their components (a Gray-walk neighbour order,
//! [`tta_arch::template::TemplateSpace::neighbour_order`], changes
//! exactly one template knob per step). [`DeltaEvaluator`] exploits
//! that: every [`crate::ComponentRecord`] it touches is memoized in a
//! flat arena keyed by [`ComponentKey`], so moving to a neighbouring
//! point re-costs only the changed component instead of re-fetching the
//! whole architecture from the (locked, hashed) [`ComponentDb`].
//!
//! **Correctness before speed.** The delta path does *not* maintain
//! running ±deltas of the float objectives — f64 addition is not
//! associative, and the headline guarantee of the engine is that
//! `EvalMode::Delta` is **bit-identical** to `EvalMode::Scratch`.
//! Instead, the arena sits behind the exact same fold code the scratch
//! models run ([`crate::backannotate`]'s crate-internal record-source
//! abstraction): both paths execute the same float operations in the
//! same order on the same records, so bit-identity holds by
//! construction. The differential property tests in
//! `crates/core/tests/delta.rs` enforce it bit-for-bit anyway.
//!
//! **Staleness.** The arena is guarded by the database fingerprint
//! ([`crate::ComponentDb::fingerprint`]): records annotated under one
//! engine configuration (ATPG profile, march algorithm) must never be
//! served for another. Every top-level evaluation validates the guard
//! once and evicts the whole arena on mismatch — see
//! [`DeltaEvaluator::prime`] for the test hook that proves this.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use tta_arch::Architecture;

use crate::backannotate::{ComponentDb, ComponentKey, ComponentRecord, RecordSource};
use crate::models::{
    annotated_area, annotated_clock_period, AnnotatedAreaModel, AnnotatedTimingModel, AreaModel,
    Eq14TestCostModel, InterconnectModel, TestCostModel, TimingModel,
};
use crate::testcost::{test_cost_from, ArchTestCost};

/// The memoizing record store: a flat arena of [`ComponentRecord`]s
/// keyed by [`ComponentKey`], guarded by the fingerprint of the
/// database that produced them.
#[derive(Debug, Default)]
struct MemoArena {
    /// [`ComponentDb::fingerprint`] of the database the slots were
    /// filled from; `None` until the first record lands. A mismatch on
    /// validation evicts every slot.
    guard: Option<u64>,
    /// Key → slot position.
    index: HashMap<ComponentKey, usize>,
    /// The records themselves, in insertion order.
    slots: Vec<Arc<ComponentRecord>>,
}

/// Incremental evaluator for the three default cost axes (area, clock
/// period, eq.-14 test cost), memoizing per-component records in a flat
/// arena so neighbouring points only pay for their *changed* components.
///
/// Shared by the `EvalMode::Delta` model wrappers of one
/// [`crate::explore::Exploration`] run; safe to share across sweep
/// threads (`&self` everywhere, arena behind a [`RwLock`]).
///
/// Produces bit-identical results to the scratch models
/// ([`AnnotatedAreaModel`], [`AnnotatedTimingModel`],
/// [`Eq14TestCostModel`]) — see the module docs for why that holds by
/// construction.
#[derive(Debug)]
pub struct DeltaEvaluator {
    interconnect: InterconnectModel,
    arena: RwLock<MemoArena>,
}

impl DeltaEvaluator {
    /// An evaluator with an empty arena, folding interconnect costs with
    /// the given constants (must match the scratch models it stands in
    /// for — [`crate::explore::Exploration`] guarantees this when it
    /// wires the delta path).
    pub fn new(interconnect: InterconnectModel) -> Self {
        DeltaEvaluator {
            interconnect,
            arena: RwLock::new(MemoArena::default()),
        }
    }

    /// Area of `arch` — bit-identical to
    /// [`AnnotatedAreaModel::area`](crate::models::AreaModel::area) with
    /// the same interconnect constants.
    pub fn area(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        let src = self.source(db);
        annotated_area(arch, &self.interconnect, &src)
    }

    /// Clock period of `arch` — bit-identical to
    /// [`AnnotatedTimingModel::clock_period`](crate::models::TimingModel::clock_period).
    pub fn clock_period(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        let src = self.source(db);
        annotated_clock_period(arch, &self.interconnect, &src)
    }

    /// eq.-(14) test cost of `arch` — bit-identical to
    /// [`crate::architecture_test_cost`].
    pub fn test_cost(&self, arch: &Architecture, db: &ComponentDb) -> ArchTestCost {
        let src = self.source(db);
        test_cost_from(arch, &src)
    }

    /// Number of distinct component records currently memoized.
    pub fn len(&self) -> usize {
        self.arena.read().expect("arena lock").slots.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The memoized record for `key`, if any — a peek that never
    /// validates the guard or touches the database. Test hook: together
    /// with [`DeltaEvaluator::prime`] it proves both that memoized
    /// records are actually *served* (a primed record shows up in
    /// results) and that eviction actually *happens* (the record is gone
    /// after a guard mismatch).
    pub fn cached(&self, key: ComponentKey) -> Option<Arc<ComponentRecord>> {
        let arena = self.arena.read().expect("arena lock");
        arena.index.get(&key).map(|&i| Arc::clone(&arena.slots[i]))
    }

    /// Installs `record` for `key` as if it had been fetched from a
    /// database whose [`ComponentDb::fingerprint`] is `db_fingerprint`,
    /// replacing any existing slot for the key (and evicting the arena
    /// first when the guard disagrees).
    ///
    /// This is a *test hook*: the memo-invalidation suite primes the
    /// arena with a deliberately wrong record and asserts that it is
    /// served while the guard matches (memoization is real) and never
    /// served once the database changes (invalidation is real).
    pub fn prime(&self, db_fingerprint: u64, key: ComponentKey, record: ComponentRecord) {
        let mut arena = self.arena.write().expect("arena lock");
        if arena.guard != Some(db_fingerprint) {
            arena.index.clear();
            arena.slots.clear();
            arena.guard = Some(db_fingerprint);
        }
        let record = Arc::new(record);
        match arena.index.get(&key) {
            Some(&i) => arena.slots[i] = record,
            None => {
                let i = arena.slots.len();
                arena.slots.push(record);
                arena.index.insert(key, i);
            }
        }
    }

    /// A record source over (arena, db) with the guard validated for
    /// `db` — called once per top-level evaluation, so the (cheap but
    /// not free) database fingerprint is paid per *point*, not per
    /// component.
    fn source<'a>(&'a self, db: &'a ComponentDb) -> MemoSource<'a> {
        let fp = db.fingerprint();
        {
            let arena = self.arena.read().expect("arena lock");
            if arena.guard == Some(fp) {
                return MemoSource { eval: self, db };
            }
        }
        let mut arena = self.arena.write().expect("arena lock");
        if arena.guard != Some(fp) {
            arena.index.clear();
            arena.slots.clear();
            arena.guard = Some(fp);
        }
        drop(arena);
        MemoSource { eval: self, db }
    }

    /// Arena-then-database record fetch, filling the arena on miss.
    fn memoized(&self, db: &ComponentDb, key: ComponentKey) -> Arc<ComponentRecord> {
        {
            let arena = self.arena.read().expect("arena lock");
            if let Some(&i) = arena.index.get(&key) {
                return Arc::clone(&arena.slots[i]);
            }
        }
        let record = db.get(key);
        let mut arena = self.arena.write().expect("arena lock");
        match arena.index.get(&key) {
            // Another thread filled the slot between our locks: serve
            // its record so every caller sees one consistent value.
            Some(&i) => Arc::clone(&arena.slots[i]),
            None => {
                let i = arena.slots.len();
                arena.slots.push(Arc::clone(&record));
                arena.index.insert(key, i);
                record
            }
        }
    }
}

/// The [`RecordSource`] view of a [`DeltaEvaluator`] + [`ComponentDb`]
/// pair, with the guard already validated.
struct MemoSource<'a> {
    eval: &'a DeltaEvaluator,
    db: &'a ComponentDb,
}

impl RecordSource for MemoSource<'_> {
    fn record(&self, key: ComponentKey) -> Arc<ComponentRecord> {
        self.eval.memoized(self.db, key)
    }
}

// ---------------------------------------------------------------------
// Model wrappers: the default models, routed through one shared
// evaluator. Their cache fingerprints delegate to the scratch models
// they stand in for, so sweep-cache addresses are identical across
// EvalMode — a delta run reads and extends a scratch run's cache file
// byte-for-byte (and vice versa).
// ---------------------------------------------------------------------

/// [`AnnotatedAreaModel`] semantics through a shared [`DeltaEvaluator`].
pub(crate) struct DeltaAreaModel {
    inner: AnnotatedAreaModel,
    eval: Arc<DeltaEvaluator>,
}

impl DeltaAreaModel {
    pub(crate) fn new(interconnect: InterconnectModel, eval: Arc<DeltaEvaluator>) -> Self {
        DeltaAreaModel {
            inner: AnnotatedAreaModel::new(interconnect),
            eval,
        }
    }
}

impl AreaModel for DeltaAreaModel {
    fn area(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        self.eval.area(arch, db)
    }

    fn fingerprint(&self) -> Option<u64> {
        self.inner.fingerprint()
    }
}

/// [`AnnotatedTimingModel`] semantics through a shared
/// [`DeltaEvaluator`].
pub(crate) struct DeltaTimingModel {
    inner: AnnotatedTimingModel,
    eval: Arc<DeltaEvaluator>,
}

impl DeltaTimingModel {
    pub(crate) fn new(interconnect: InterconnectModel, eval: Arc<DeltaEvaluator>) -> Self {
        DeltaTimingModel {
            inner: AnnotatedTimingModel::new(interconnect),
            eval,
        }
    }
}

impl TimingModel for DeltaTimingModel {
    fn clock_period(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        self.eval.clock_period(arch, db)
    }

    fn fingerprint(&self) -> Option<u64> {
        self.inner.fingerprint()
    }
}

/// [`Eq14TestCostModel`] semantics through a shared [`DeltaEvaluator`].
pub(crate) struct DeltaTestCostModel {
    inner: Eq14TestCostModel,
    eval: Arc<DeltaEvaluator>,
}

impl DeltaTestCostModel {
    pub(crate) fn new(eval: Arc<DeltaEvaluator>) -> Self {
        DeltaTestCostModel {
            inner: Eq14TestCostModel,
            eval,
        }
    }
}

impl TestCostModel for DeltaTestCostModel {
    fn test_cost(&self, arch: &Architecture, db: &ComponentDb) -> ArchTestCost {
        self.eval.test_cost(arch, db)
    }

    fn fingerprint(&self) -> Option<u64> {
        self.inner.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_arch::template::TemplateSpace;

    fn to_bits(cost: &ArchTestCost) -> (u64, Vec<u64>) {
        (
            cost.total.to_bits(),
            cost.components
                .iter()
                .map(|c| c.our_approach_cycles().to_bits())
                .collect(),
        )
    }

    #[test]
    fn delta_matches_scratch_bit_for_bit() {
        let db = ComponentDb::new();
        let ic = InterconnectModel::paper();
        let eval = DeltaEvaluator::new(ic);
        let area = AnnotatedAreaModel::new(ic);
        let timing = AnnotatedTimingModel::new(ic);
        // Twice over the space: cold arena, then warm.
        for pass in 0..2 {
            for arch in TemplateSpace::fast_default().enumerate() {
                assert_eq!(
                    eval.area(&arch, &db).to_bits(),
                    area.area(&arch, &db).to_bits(),
                    "area, pass {pass}, {}",
                    arch.name
                );
                assert_eq!(
                    eval.clock_period(&arch, &db).to_bits(),
                    timing.clock_period(&arch, &db).to_bits(),
                    "clock, pass {pass}, {}",
                    arch.name
                );
                assert_eq!(
                    to_bits(&eval.test_cost(&arch, &db)),
                    to_bits(&Eq14TestCostModel.test_cost(&arch, &db)),
                    "test cost, pass {pass}, {}",
                    arch.name
                );
            }
        }
        assert!(!eval.is_empty(), "the sweep must have memoized records");
        assert_eq!(eval.len(), db.len(), "arena mirrors the touched keys");
    }

    #[test]
    fn wrappers_keep_scratch_fingerprints() {
        let ic = InterconnectModel::paper();
        let eval = Arc::new(DeltaEvaluator::new(ic));
        assert_eq!(
            DeltaAreaModel::new(ic, Arc::clone(&eval)).fingerprint(),
            AnnotatedAreaModel::new(ic).fingerprint()
        );
        assert_eq!(
            DeltaTimingModel::new(ic, Arc::clone(&eval)).fingerprint(),
            AnnotatedTimingModel::new(ic).fingerprint()
        );
        assert_eq!(
            DeltaTestCostModel::new(eval).fingerprint(),
            Eq14TestCostModel.fingerprint()
        );
    }
}
