//! Incremental (delta) point evaluation with a memoized component arena.
//!
//! A design-space sweep evaluates thousands of points whose cost is a
//! fold over *per-component* contributions — and neighbouring points
//! share almost all of their components (a Gray-walk neighbour order,
//! [`tta_arch::template::TemplateSpace::neighbour_order`], changes
//! exactly one template knob per step). [`DeltaEvaluator`] exploits
//! that: every [`crate::ComponentRecord`] it touches is memoized in a
//! flat arena keyed by [`ComponentKey`], so moving to a neighbouring
//! point re-costs only the changed component instead of re-fetching the
//! whole architecture from the (locked, hashed) [`ComponentDb`].
//!
//! **Correctness before speed.** The headline guarantee of the engine
//! is that `EvalMode::Delta` is **bit-identical** to
//! `EvalMode::Scratch`, and f64 addition is not associative — so the
//! delta path never runs a *naive* ±delta on the float objectives.
//! Two mechanisms keep both properties at once:
//!
//! * the arena sits behind the exact same fold code the scratch models
//!   run ([`crate::backannotate`]'s crate-internal record-source
//!   abstraction): both paths execute the same float operations in the
//!   same order on the same records, so bit-identity holds by
//!   construction;
//! * [`CarriedFolds`] carries the area/clock folds across Gray-walk
//!   neighbours with retract/apply updates whose accumulators are
//!   *exact* — an integer area sum (every intermediate f64 sum of
//!   integral contributions below 2⁵³ is exact, so the scratch fold's
//!   result equals the carried integer bit-for-bit) and an
//!   order-independent critical-path max — and falls back to refolding
//!   in scratch order from its lock-free component mirror whenever
//!   exactness cannot be proven (non-integral areas, NaN/−0.0 critical
//!   paths) or the walk is discontinuous. The test-cost fold is
//!   re-run per point from the same mirror (the round-robin socket→bus
//!   assignment shifts per-instance transport distances whenever an
//!   earlier unit count changes, so no carried test sum can be
//!   correct), but skips the scratch path's per-component `String`/
//!   `Vec` allocations and every lock.
//!
//! The differential property tests in `crates/core/tests/delta.rs`
//! enforce bit-identity for all of it anyway.
//!
//! **Staleness.** The arena is guarded by the database fingerprint
//! ([`crate::ComponentDb::fingerprint`]): records annotated under one
//! engine configuration (ATPG profile, march algorithm) must never be
//! served for another. Every top-level evaluation validates the guard
//! once and evicts the whole arena on mismatch — see
//! [`DeltaEvaluator::prime`] for the test hook that proves this.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use tta_arch::{timing, Architecture, FuKind};

use crate::backannotate::{ComponentDb, ComponentKey, ComponentRecord, RecordSource};
use crate::models::{
    annotated_area, annotated_clock_period, key_width, AnnotatedAreaModel, AnnotatedTimingModel,
    AreaModel, Eq14TestCostModel, InterconnectModel, TestCostModel, TimingModel,
};
use crate::testcost::{ftrf, fts, socket_state_bits, test_cost_from, ArchTestCost};

/// FxHash-style multiply-rotate hasher for the [`CarriedFolds`] mirror.
///
/// The mirror sits on the per-point hot path — a walk step performs
/// dozens of small-enum-key lookups, where SipHash's per-lookup setup
/// is the single largest cost of an incremental step. Hash quality is
/// ample for the handful of distinct [`ComponentKey`]s a point uses,
/// and nothing observable depends on iteration order (the only mirror
/// iteration is an order-independent max).
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxHashMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

/// The memoizing record store: a flat arena of [`ComponentRecord`]s
/// keyed by [`ComponentKey`], guarded by the fingerprint of the
/// database that produced them.
#[derive(Debug, Default)]
struct MemoArena {
    /// [`ComponentDb::fingerprint`] of the database the slots were
    /// filled from; `None` until the first record lands. A mismatch on
    /// validation evicts every slot.
    guard: Option<u64>,
    /// Key → slot position.
    index: HashMap<ComponentKey, usize>,
    /// The records themselves, in insertion order.
    slots: Vec<Arc<ComponentRecord>>,
}

/// Incremental evaluator for the three default cost axes (area, clock
/// period, eq.-14 test cost), memoizing per-component records in a flat
/// arena so neighbouring points only pay for their *changed* components.
///
/// Shared by the `EvalMode::Delta` model wrappers of one
/// [`crate::explore::Exploration`] run; safe to share across sweep
/// threads (`&self` everywhere, arena behind a [`RwLock`]).
///
/// Produces bit-identical results to the scratch models
/// ([`AnnotatedAreaModel`], [`AnnotatedTimingModel`],
/// [`Eq14TestCostModel`]) — see the module docs for why that holds by
/// construction.
#[derive(Debug)]
pub struct DeltaEvaluator {
    interconnect: InterconnectModel,
    arena: RwLock<MemoArena>,
    /// Record fetches served from the arena (relaxed counters: exact on
    /// serial sweeps, approximate interleavings under parallelism).
    hits: AtomicU64,
    /// Record fetches that had to fall through to the database.
    misses: AtomicU64,
    /// Wholesale arena evictions (database fingerprint changed).
    evictions: AtomicU64,
}

impl DeltaEvaluator {
    /// An evaluator with an empty arena, folding interconnect costs with
    /// the given constants (must match the scratch models it stands in
    /// for — [`crate::explore::Exploration`] guarantees this when it
    /// wires the delta path).
    pub fn new(interconnect: InterconnectModel) -> Self {
        DeltaEvaluator {
            interconnect,
            arena: RwLock::new(MemoArena::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// (arena hits, database misses, wholesale evictions) so far — the
    /// raw counters behind [`DeltaStats`].
    pub fn arena_counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Area of `arch` — bit-identical to
    /// [`AnnotatedAreaModel::area`](crate::models::AreaModel::area) with
    /// the same interconnect constants.
    pub fn area(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        let src = self.source(db);
        annotated_area(arch, &self.interconnect, &src)
    }

    /// Clock period of `arch` — bit-identical to
    /// [`AnnotatedTimingModel::clock_period`](crate::models::TimingModel::clock_period).
    pub fn clock_period(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        let src = self.source(db);
        annotated_clock_period(arch, &self.interconnect, &src)
    }

    /// eq.-(14) test cost of `arch` — bit-identical to
    /// [`crate::architecture_test_cost`].
    pub fn test_cost(&self, arch: &Architecture, db: &ComponentDb) -> ArchTestCost {
        let src = self.source(db);
        test_cost_from(arch, &src)
    }

    /// Number of distinct component records currently memoized.
    pub fn len(&self) -> usize {
        self.arena.read().expect("arena lock").slots.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The memoized record for `key`, if any — a peek that never
    /// validates the guard or touches the database. Test hook: together
    /// with [`DeltaEvaluator::prime`] it proves both that memoized
    /// records are actually *served* (a primed record shows up in
    /// results) and that eviction actually *happens* (the record is gone
    /// after a guard mismatch).
    pub fn cached(&self, key: ComponentKey) -> Option<Arc<ComponentRecord>> {
        let arena = self.arena.read().expect("arena lock");
        arena.index.get(&key).map(|&i| Arc::clone(&arena.slots[i]))
    }

    /// Installs `record` for `key` as if it had been fetched from a
    /// database whose [`ComponentDb::fingerprint`] is `db_fingerprint`,
    /// replacing any existing slot for the key (and evicting the arena
    /// first when the guard disagrees).
    ///
    /// This is a *test hook*: the memo-invalidation suite primes the
    /// arena with a deliberately wrong record and asserts that it is
    /// served while the guard matches (memoization is real) and never
    /// served once the database changes (invalidation is real).
    pub fn prime(&self, db_fingerprint: u64, key: ComponentKey, record: ComponentRecord) {
        let mut arena = self.arena.write().expect("arena lock");
        if arena.guard != Some(db_fingerprint) {
            if !arena.slots.is_empty() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            arena.index.clear();
            arena.slots.clear();
            arena.guard = Some(db_fingerprint);
        }
        let record = Arc::new(record);
        match arena.index.get(&key) {
            Some(&i) => arena.slots[i] = record,
            None => {
                let i = arena.slots.len();
                arena.slots.push(record);
                arena.index.insert(key, i);
            }
        }
    }

    /// A record source over (arena, db) with the guard validated for
    /// `db` — called once per top-level evaluation, so the (cheap but
    /// not free) database fingerprint is paid per *point*, not per
    /// component.
    fn source<'a>(&'a self, db: &'a ComponentDb) -> MemoSource<'a> {
        self.ensure_guard(db);
        MemoSource { eval: self, db }
    }

    /// Validates the arena guard against `db`, evicting every slot on
    /// mismatch. Returns `true` when the arena was (re)guarded — i.e.
    /// any memoized record a caller still holds outside the arena (the
    /// [`CarriedFolds`] mirror) is now stale.
    pub(crate) fn ensure_guard(&self, db: &ComponentDb) -> bool {
        let fp = db.fingerprint();
        {
            let arena = self.arena.read().expect("arena lock");
            if arena.guard == Some(fp) {
                return false;
            }
        }
        let mut arena = self.arena.write().expect("arena lock");
        if arena.guard != Some(fp) {
            if !arena.slots.is_empty() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            arena.index.clear();
            arena.slots.clear();
            arena.guard = Some(fp);
        }
        true
    }

    /// Arena-then-database record fetch, filling the arena on miss.
    pub(crate) fn memoized(&self, db: &ComponentDb, key: ComponentKey) -> Arc<ComponentRecord> {
        {
            let arena = self.arena.read().expect("arena lock");
            if let Some(&i) = arena.index.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&arena.slots[i]);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let record = db.get(key);
        let mut arena = self.arena.write().expect("arena lock");
        match arena.index.get(&key) {
            // Another thread filled the slot between our locks: serve
            // its record so every caller sees one consistent value.
            Some(&i) => Arc::clone(&arena.slots[i]),
            None => {
                let i = arena.slots.len();
                arena.slots.push(Arc::clone(&record));
                arena.index.insert(key, i);
                record
            }
        }
    }
}

/// The [`RecordSource`] view of a [`DeltaEvaluator`] + [`ComponentDb`]
/// pair, with the guard already validated.
struct MemoSource<'a> {
    eval: &'a DeltaEvaluator,
    db: &'a ComponentDb,
}

impl RecordSource for MemoSource<'_> {
    fn record(&self, key: ComponentKey) -> Arc<ComponentRecord> {
        self.eval.memoized(self.db, key)
    }
}

// ---------------------------------------------------------------------
// Carried folds: the true incremental step over the Gray walk.
// ---------------------------------------------------------------------

/// The three cost-axis values of one point as produced by
/// [`CarriedFolds::advance`] — bit-identical to what the scratch models
/// (and [`DeltaEvaluator`]) return for the same architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointCosts {
    /// Area in NAND2 gate equivalents ([`AnnotatedAreaModel`]).
    pub area: f64,
    /// Clock period in normalised gate delays
    /// ([`AnnotatedTimingModel`]).
    pub clock_period: f64,
    /// eq.-(14) comparative test-cost total ([`Eq14TestCostModel`]).
    pub test_total: f64,
}

/// Observability counters of the incremental engine, reported on
/// [`crate::explore::ExploreResult::delta`] and rendered by the CLI.
///
/// Fold carries and scratch fallbacks are exact (the carry state is
/// threaded serially through the walk); the arena counters are relaxed
/// atomics — exact on serial sweeps, approximate interleavings under
/// parallelism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Walk steps whose area/clock folds were carried from the
    /// Gray-adjacent predecessor (the O(1) retract/apply path).
    pub fold_carries: u64,
    /// Points folded from scratch instead: walk discontinuities, batch
    /// boundaries, carry resets, or exactness guards firing.
    pub scratch_fallbacks: u64,
    /// Component-record fetches served from the memo arena.
    pub arena_hits: u64,
    /// Component-record fetches that fell through to the database.
    pub arena_misses: u64,
    /// Wholesale arena evictions (database fingerprint changed).
    pub arena_evictions: u64,
}

/// Maximum per-record area admitted to the exact integer accumulator.
/// With this bound and the `u32` multiplicities a carried sum stays far
/// below 2⁵³, so every intermediate f64 partial sum of the scratch fold
/// is an exactly-represented integer and the carried integer equals it
/// bit-for-bit.
const EXACT_AREA_LIMIT: f64 = (1u64 << 32) as f64;

/// One component's entry in the [`CarriedFolds`] mirror: how many times
/// the current architecture uses it, and its memoized record.
#[derive(Debug, Clone)]
struct MirrorSlot {
    count: u32,
    record: Arc<ComponentRecord>,
}

/// The two record fields the per-point test fold reads, copied out of
/// the mirror into a `Vec` aligned with the key list so
/// [`CarriedFolds::test_total`] runs without a single hash lookup. On a
/// carried step only the changed middle positions are refreshed; the
/// unchanged prefix/suffix is a plain `Copy` splice.
#[derive(Debug, Clone, Copy)]
struct TestOperands {
    np: usize,
    ff_infrastructure: usize,
}

/// Fold state carried across Gray-code-adjacent points of a
/// [`tta_arch::template::TemplateSpace::neighbour_order`] walk.
///
/// On a contiguous step (`rank == previous + 1`) only the components
/// that actually changed are retracted/applied — the `neighbour_order`
/// contract (one knob, ±1) keeps that set tiny — and the area/clock
/// folds are produced in O(1) float work from exact accumulators:
///
/// * **area** as an `i64` sum of the (integral) record areas, admitted
///   per record only below `EXACT_AREA_LIMIT` (2³², private); any non-integral or
///   oversized contribution flips the point to a scratch refold over
///   the mirror, in scratch order, so the result is bit-identical
///   either way;
/// * **clock** as a max over the mirror's distinct critical paths —
///   order-independent for the positive/`+0.0` values the annotation
///   produces, with NaN/`-0.0` guards falling back to the ordered
///   refold;
/// * **test cost** re-folded per point from the mirror (the round-robin
///   socket→bus assignment shifts per-instance transport distances
///   whenever an earlier unit count changes, so no carried test sum can
///   be correct) — but with zero locks and zero allocations, unlike the
///   scratch path's per-component `String`s.
///
/// Anything else — the first point, a rank gap (budget truncation
/// re-sort), an arena eviction, an out-of-model point — rebuilds the
/// mirror from the arena and counts a scratch fallback. The carry is
/// deliberately *not* shared across threads: the sweep stages it
/// serially per chunk, which is exactly the walk order.
#[derive(Debug)]
pub struct CarriedFolds {
    interconnect: InterconnectModel,
    /// Walk rank of the point the accumulators describe.
    last_rank: Option<usize>,
    /// Fold-order key list (with multiplicity) of that point.
    prev_keys: Vec<ComponentKey>,
    /// Scratch buffer for the current point's key list.
    curr_keys: Vec<ComponentKey>,
    /// Test-fold operands aligned with `prev_keys`.
    prev_ops: Vec<TestOperands>,
    /// Scratch buffer aligned with `curr_keys`.
    curr_ops: Vec<TestOperands>,
    /// Distinct components of the current point: multiplicity + record.
    mirror: FxHashMap<ComponentKey, MirrorSlot>,
    /// Exact integer area sum over the mirror (with multiplicity).
    area_sum: i64,
    /// Contributions the integer accumulator could not admit.
    inexact: u32,
    /// Critical-path values the max fast path cannot order-independently
    /// fold (NaN or −0.0).
    unordered_paths: u32,
    carries: u64,
    fallbacks: u64,
}

impl CarriedFolds {
    /// Empty carry state for a walk evaluated with `interconnect`
    /// constants (must match the models the sweep runs — as for
    /// [`DeltaEvaluator::new`]).
    pub fn new(interconnect: InterconnectModel) -> Self {
        CarriedFolds {
            interconnect,
            last_rank: None,
            prev_keys: Vec::new(),
            curr_keys: Vec::new(),
            prev_ops: Vec::new(),
            curr_ops: Vec::new(),
            mirror: FxHashMap::default(),
            area_sum: 0,
            inexact: 0,
            unordered_paths: 0,
            carries: 0,
            fallbacks: 0,
        }
    }

    /// Drops the carry (the next [`CarriedFolds::advance`] refolds from
    /// scratch). Call at any walk discontinuity the rank argument can't
    /// express — a new strategy round, a skipped (cache-hit) point.
    pub fn reset(&mut self) {
        self.last_rank = None;
    }

    /// (fold carries, scratch fallbacks) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.carries, self.fallbacks)
    }

    /// Costs of `arch`, the point at walk `rank`, carrying the folds
    /// from the previous call when `rank` is its direct successor and
    /// refolding from scratch otherwise. Bit-identical to evaluating
    /// `arch` through `eval` (and therefore to the scratch models).
    pub fn advance(
        &mut self,
        arch: &Architecture,
        rank: usize,
        eval: &DeltaEvaluator,
        db: &ComponentDb,
    ) -> PointCosts {
        if eval.ensure_guard(db) {
            // Any records the mirror holds predate the (re)guarding.
            self.reset();
            self.mirror.clear();
        }
        if !self.collect_keys(arch) {
            // Out of the component model's domain: infinite on every
            // axis (matching the scratch models), and nothing to carry.
            self.reset();
            return PointCosts {
                area: f64::INFINITY,
                clock_period: f64::INFINITY,
                test_total: f64::INFINITY,
            };
        }
        let carried = self.last_rank == Some(rank.wrapping_sub(1)) && rank > 0;
        if carried {
            // Retract/apply only the keys outside the common
            // prefix/suffix — for a one-knob Gray step that differing
            // middle is at most a few entries (often none: a bus-count
            // step changes no component at all).
            let prev = std::mem::take(&mut self.prev_keys);
            let curr = std::mem::take(&mut self.curr_keys);
            let prefix = prev.iter().zip(&curr).take_while(|(a, b)| a == b).count();
            let suffix = prev[prefix..]
                .iter()
                .rev()
                .zip(curr[prefix..].iter().rev())
                .take_while(|(a, b)| a == b)
                .count();
            for &key in &prev[prefix..prev.len() - suffix] {
                self.retract_one(key);
            }
            for &key in &curr[prefix..curr.len() - suffix] {
                self.apply_one(key, eval, db);
            }
            // Splice the aligned test operands: unchanged ends are a
            // `Copy` memmove, only the middle re-reads the mirror.
            let mut ops = std::mem::take(&mut self.curr_ops);
            ops.clear();
            ops.extend_from_slice(&self.prev_ops[..prefix]);
            for &key in &curr[prefix..curr.len() - suffix] {
                ops.push(self.operands_of(key));
            }
            ops.extend_from_slice(&self.prev_ops[prev.len() - suffix..]);
            self.curr_ops = ops;
            self.prev_keys = prev;
            self.curr_keys = curr;
            self.carries += 1;
        } else {
            self.mirror.clear();
            self.area_sum = 0;
            self.inexact = 0;
            self.unordered_paths = 0;
            let keys = std::mem::take(&mut self.curr_keys);
            for &key in &keys {
                self.apply_one(key, eval, db);
            }
            let mut ops = std::mem::take(&mut self.curr_ops);
            ops.clear();
            ops.extend(keys.iter().map(|&key| self.operands_of(key)));
            self.curr_ops = ops;
            self.curr_keys = keys;
            self.fallbacks += 1;
        }
        self.last_rank = Some(rank);
        std::mem::swap(&mut self.prev_keys, &mut self.curr_keys);
        std::mem::swap(&mut self.prev_ops, &mut self.curr_ops);
        self.costs_of(arch)
    }

    /// Fills `curr_keys` with the fold-order key list of `arch`;
    /// `false` when the architecture is outside the component model.
    fn collect_keys(&mut self, arch: &Architecture) -> bool {
        self.curr_keys.clear();
        let Some(w) = key_width(arch) else {
            return false;
        };
        for fu in arch.fus() {
            self.curr_keys.push(ComponentKey::for_fu(fu.kind, w));
            let Some(sock) = ComponentKey::socket_group(w, fu.kind.input_ports()) else {
                return false;
            };
            self.curr_keys.push(sock);
        }
        for rf in arch.rfs() {
            let (Some(key), Some(sock)) = (
                ComponentKey::for_rf(rf, w),
                ComponentKey::socket_group(w, rf.nin()),
            ) else {
                return false;
            };
            self.curr_keys.push(key);
            self.curr_keys.push(sock);
        }
        true
    }

    /// Whether the exact integer accumulator can admit `area`.
    fn exactly_summable(area: f64) -> bool {
        (0.0..=EXACT_AREA_LIMIT).contains(&area) && area.fract() == 0.0
    }

    /// Whether the max fast path can fold `critical_path`
    /// order-independently (any two equal-comparing values have equal
    /// bits, and NaN never wins a `f64::max`).
    fn orderable_path(critical_path: f64) -> bool {
        !critical_path.is_nan() && critical_path.to_bits() != (-0.0f64).to_bits()
    }

    fn apply_one(&mut self, key: ComponentKey, eval: &DeltaEvaluator, db: &ComponentDb) {
        let slot = self.mirror.entry(key).or_insert_with(|| MirrorSlot {
            count: 0,
            record: eval.memoized(db, key),
        });
        slot.count += 1;
        let area = slot.record.area;
        if Self::exactly_summable(area) {
            self.area_sum += area as i64;
        } else {
            self.inexact += 1;
        }
        if !Self::orderable_path(slot.record.critical_path) {
            self.unordered_paths += 1;
        }
    }

    /// The test-fold operands of `key`'s mirrored record.
    fn operands_of(&self, key: ComponentKey) -> TestOperands {
        let record = &self.mirror[&key].record;
        TestOperands {
            np: record.np,
            ff_infrastructure: record.ff_infrastructure,
        }
    }

    fn retract_one(&mut self, key: ComponentKey) {
        let slot = self
            .mirror
            .get_mut(&key)
            .expect("retracted key must be mirrored");
        slot.count -= 1;
        let record = Arc::clone(&slot.record);
        if slot.count == 0 {
            self.mirror.remove(&key);
        }
        if Self::exactly_summable(record.area) {
            self.area_sum -= record.area as i64;
        } else {
            self.inexact -= 1;
        }
        if !Self::orderable_path(record.critical_path) {
            self.unordered_paths -= 1;
        }
    }

    /// The three axes from the current accumulators (plus, for test
    /// cost, one ordered pass over `arch` against the mirror).
    fn costs_of(&self, arch: &Architecture) -> PointCosts {
        let src = MirrorRecords { folds: self };
        let area = if self.inexact == 0 {
            // Every contribution is an integer below the limit, so the
            // scratch fold's sequential f64 sum is exact and equals the
            // carried integer; finish with the scratch tail expression.
            let area = self.area_sum as f64;
            let control = f64::from(tta_arch::InstructionFormat::of(arch).width())
                * self.interconnect.control_area_per_instr_bit;
            area + control
                + arch.bus_count() as f64 * arch.width as f64 * self.interconnect.bus_area_per_bit
        } else {
            annotated_area(arch, &self.interconnect, &src)
        };
        let clock_period = if self.unordered_paths == 0 {
            // Scratch maxes over FU and RF records only — socket groups
            // contribute area and test patterns, never the clock.
            let mut worst: f64 = 0.0;
            for (key, slot) in &self.mirror {
                if !matches!(key, ComponentKey::SocketGroup(..)) {
                    worst = worst.max(slot.record.critical_path);
                }
            }
            worst + arch.bus_count() as f64 * self.interconnect.bus_delay_penalty
        } else {
            annotated_clock_period(arch, &self.interconnect, &src)
        };
        PointCosts {
            area,
            clock_period,
            test_total: self.test_total(arch),
        }
    }

    /// The eq.-(14) total, folded in the exact op order of
    /// [`test_cost_from`] but without materialising the per-component
    /// breakdown, and without a single hash lookup: it walks the
    /// operand list [`CarriedFolds::advance`] maintained alongside the
    /// key list (left in `prev_ops` by the final swap — `[unit,
    /// socket]` pairs for every FU, then every RF).
    fn test_total(&self, arch: &Architecture) -> f64 {
        let mut ops = self.prev_ops.iter();
        let mut next = || *ops.next().expect("operand list covers the fold walk");
        let mut total = 0.0;
        for fu in arch.fus() {
            let rec = next();
            let sock = next();
            if matches!(fu.kind, FuKind::LdSt | FuKind::Pc | FuKind::Immediate) {
                continue;
            }
            let n_inputs = fu.kind.input_ports();
            let cd = timing::transport_cycles(fu);
            let nl = rec.ff_infrastructure + socket_state_bits(n_inputs);
            total += rec.np as f64 * f64::from(cd) + fts(sock.np, nl);
        }
        for rf in arch.rfs() {
            let rec = next();
            let sock = next();
            let cd = timing::rf_transport_cycles(rf.write_ports[0], rf.read_ports[0]);
            let nl = rec.ff_infrastructure + socket_state_bits(rf.nin());
            total += ftrf(rec.np, cd, rf.nin(), rf.nout(), arch.bus_count()) + fts(sock.np, nl);
        }
        total
    }
}

/// [`RecordSource`] over a [`CarriedFolds`] mirror — the lock-free
/// fallback path for the ordered refolds. Only ever asked for keys the
/// mirror holds (the fold key set *is* the mirror key set).
struct MirrorRecords<'a> {
    folds: &'a CarriedFolds,
}

impl RecordSource for MirrorRecords<'_> {
    fn record(&self, key: ComponentKey) -> Arc<ComponentRecord> {
        Arc::clone(&self.folds.mirror[&key].record)
    }
}

// ---------------------------------------------------------------------
// Model wrappers: the default models, routed through one shared
// evaluator. Their cache fingerprints delegate to the scratch models
// they stand in for, so sweep-cache addresses are identical across
// EvalMode — a delta run reads and extends a scratch run's cache file
// byte-for-byte (and vice versa).
// ---------------------------------------------------------------------

/// [`AnnotatedAreaModel`] semantics through a shared [`DeltaEvaluator`].
pub(crate) struct DeltaAreaModel {
    inner: AnnotatedAreaModel,
    eval: Arc<DeltaEvaluator>,
}

impl DeltaAreaModel {
    pub(crate) fn new(interconnect: InterconnectModel, eval: Arc<DeltaEvaluator>) -> Self {
        DeltaAreaModel {
            inner: AnnotatedAreaModel::new(interconnect),
            eval,
        }
    }
}

impl AreaModel for DeltaAreaModel {
    fn area(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        self.eval.area(arch, db)
    }

    fn fingerprint(&self) -> Option<u64> {
        self.inner.fingerprint()
    }
}

/// [`AnnotatedTimingModel`] semantics through a shared
/// [`DeltaEvaluator`].
pub(crate) struct DeltaTimingModel {
    inner: AnnotatedTimingModel,
    eval: Arc<DeltaEvaluator>,
}

impl DeltaTimingModel {
    pub(crate) fn new(interconnect: InterconnectModel, eval: Arc<DeltaEvaluator>) -> Self {
        DeltaTimingModel {
            inner: AnnotatedTimingModel::new(interconnect),
            eval,
        }
    }
}

impl TimingModel for DeltaTimingModel {
    fn clock_period(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        self.eval.clock_period(arch, db)
    }

    fn fingerprint(&self) -> Option<u64> {
        self.inner.fingerprint()
    }
}

/// [`Eq14TestCostModel`] semantics through a shared [`DeltaEvaluator`].
pub(crate) struct DeltaTestCostModel {
    inner: Eq14TestCostModel,
    eval: Arc<DeltaEvaluator>,
}

impl DeltaTestCostModel {
    pub(crate) fn new(eval: Arc<DeltaEvaluator>) -> Self {
        DeltaTestCostModel {
            inner: Eq14TestCostModel,
            eval,
        }
    }
}

impl TestCostModel for DeltaTestCostModel {
    fn test_cost(&self, arch: &Architecture, db: &ComponentDb) -> ArchTestCost {
        self.eval.test_cost(arch, db)
    }

    fn fingerprint(&self) -> Option<u64> {
        self.inner.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_arch::template::TemplateSpace;

    fn to_bits(cost: &ArchTestCost) -> (u64, Vec<u64>) {
        (
            cost.total.to_bits(),
            cost.components
                .iter()
                .map(|c| c.our_approach_cycles().to_bits())
                .collect(),
        )
    }

    #[test]
    fn delta_matches_scratch_bit_for_bit() {
        let db = ComponentDb::new();
        let ic = InterconnectModel::paper();
        let eval = DeltaEvaluator::new(ic);
        let area = AnnotatedAreaModel::new(ic);
        let timing = AnnotatedTimingModel::new(ic);
        // Twice over the space: cold arena, then warm.
        for pass in 0..2 {
            for arch in TemplateSpace::fast_default().enumerate() {
                assert_eq!(
                    eval.area(&arch, &db).to_bits(),
                    area.area(&arch, &db).to_bits(),
                    "area, pass {pass}, {}",
                    arch.name
                );
                assert_eq!(
                    eval.clock_period(&arch, &db).to_bits(),
                    timing.clock_period(&arch, &db).to_bits(),
                    "clock, pass {pass}, {}",
                    arch.name
                );
                assert_eq!(
                    to_bits(&eval.test_cost(&arch, &db)),
                    to_bits(&Eq14TestCostModel.test_cost(&arch, &db)),
                    "test cost, pass {pass}, {}",
                    arch.name
                );
            }
        }
        assert!(!eval.is_empty(), "the sweep must have memoized records");
        assert_eq!(eval.len(), db.len(), "arena mirrors the touched keys");
    }

    #[test]
    fn carried_folds_match_scratch_along_the_walk() {
        let db = ComponentDb::new();
        let ic = InterconnectModel::paper();
        let eval = DeltaEvaluator::new(ic);
        let area = AnnotatedAreaModel::new(ic);
        let clock = AnnotatedTimingModel::new(ic);
        let space = TemplateSpace::fast_default();
        let mut carry = CarriedFolds::new(ic);
        for rank in 0..space.len() {
            let arch = space.point(space.neighbour_index(rank));
            let got = carry.advance(&arch, rank, &eval, &db);
            assert_eq!(
                got.area.to_bits(),
                area.area(&arch, &db).to_bits(),
                "area at {}",
                arch.name
            );
            assert_eq!(
                got.clock_period.to_bits(),
                clock.clock_period(&arch, &db).to_bits(),
                "clock at {}",
                arch.name
            );
            assert_eq!(
                got.test_total.to_bits(),
                Eq14TestCostModel.test_cost(&arch, &db).total.to_bits(),
                "test cost at {}",
                arch.name
            );
        }
        let (carries, fallbacks) = carry.stats();
        assert_eq!(fallbacks, 1, "only the first point folds from scratch");
        assert_eq!(carries, (space.len() - 1) as u64);
    }

    #[test]
    fn carried_folds_fall_back_on_rank_gaps_and_resets() {
        let db = ComponentDb::new();
        let ic = InterconnectModel::paper();
        let eval = DeltaEvaluator::new(ic);
        let area = AnnotatedAreaModel::new(ic);
        let space = TemplateSpace::fast_default();
        let mut carry = CarriedFolds::new(ic);
        let at = |carry: &mut CarriedFolds, rank: usize| {
            let arch = space.point(space.neighbour_index(rank));
            let got = carry.advance(&arch, rank, &eval, &db);
            assert_eq!(got.area.to_bits(), area.area(&arch, &db).to_bits());
        };
        at(&mut carry, 0); // scratch (first point)
        at(&mut carry, 1); // carried
        at(&mut carry, 5); // rank gap -> scratch
        at(&mut carry, 6); // carried again
        carry.reset();
        at(&mut carry, 7); // reset -> scratch despite being adjacent
        assert_eq!(carry.stats(), (2, 3));
    }

    #[test]
    fn wrappers_keep_scratch_fingerprints() {
        let ic = InterconnectModel::paper();
        let eval = Arc::new(DeltaEvaluator::new(ic));
        assert_eq!(
            DeltaAreaModel::new(ic, Arc::clone(&eval)).fingerprint(),
            AnnotatedAreaModel::new(ic).fingerprint()
        );
        assert_eq!(
            DeltaTimingModel::new(ic, Arc::clone(&eval)).fingerprint(),
            AnnotatedTimingModel::new(ic).fingerprint()
        );
        assert_eq!(
            DeltaTestCostModel::new(eval).fingerprint(),
            Eq14TestCostModel.fingerprint()
        );
    }
}
