//! Pluggable search strategies over a template space.
//!
//! The paper's exploration is an exhaustive sweep over 396 points; that
//! stops being feasible long before a production-scale space does. This
//! module decouples *which points get evaluated* from *how a point is
//! evaluated*: a [`SearchStrategy`] proposes batches of point indices,
//! the [`crate::explore::Exploration`] engine evaluates them (cached,
//! parallel, streaming into a [`crate::pareto::ParetoArchive`]) and
//! feeds the observations back so guided strategies can steer toward
//! the current front.
//!
//! Four strategies ship:
//!
//! * [`Exhaustive`] — every point, in enumeration order. The default;
//!   bit-identical results and cache keys to the classic sweep.
//! * [`NeighbourExhaustive`] ([`Exhaustive::neighbour`]) — every point,
//!   in the Gray-walk neighbour order
//!   ([`TemplateSpace::neighbour_order`]): consecutive points differ in
//!   one knob, maximising reuse in the delta evaluator's memo arena.
//!   Same point set and per-point cache keys as [`Exhaustive`].
//! * [`RandomSample`] — a seeded uniform sample of at most `budget`
//!   distinct points. Deterministic per seed.
//! * [`HillClimb`] — an evolutionary loop: start from a random
//!   population, then mutate the template knobs (bus count, FU counts,
//!   RF set) of current-front members, one mixed-radix digit at a time,
//!   with random restarts to escape plateaus. Deterministic per seed.
//!
//! Strategies are deliberately *pure planners*: they never touch models,
//! caches or threads, so a new strategy is a single `impl` with no
//! engine knowledge beyond this module's [`SearchContext`].
//!
//! ```
//! use tta_arch::template::TemplateSpace;
//! use tta_core::explore::Exploration;
//! use tta_core::search::RandomSample;
//! use tta_workloads::suite;
//!
//! let result = Exploration::over(TemplateSpace::tiny())
//!     .workload(&suite::crypt(1))
//!     .strategy(RandomSample)
//!     .budget(3)
//!     .seed(42)
//!     .run();
//! assert!(result.evaluated.len() + result.infeasible <= 3);
//! ```

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tta_arch::template::TemplateSpace;

use crate::cache::Fingerprint;

/// One evaluated point as a strategy sees it: the space index plus the
/// 2-D sweep objectives, or `None` when the point was infeasible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Index of the point in its [`TemplateSpace`].
    pub index: usize,
    /// `(area, exec_time)`, or `None` for an infeasible point.
    pub objectives: Option<(f64, f64)>,
}

/// A resumable snapshot of a search trajectory: which points were
/// visited (in evaluation order, with their observed objectives) and
/// how many strategy rounds had *completed* when the snapshot was
/// taken.
///
/// Produced by a cancelled [`crate::explore::Exploration`] run
/// ([`crate::explore::ExploreResult::checkpoint`]) and consumed by
/// [`crate::explore::Exploration::resume_search`]: the resumed run
/// replays the checkpointed indices through the normal evaluation
/// pipeline first (a warm [`crate::cache::SweepCache`] answers them
/// without re-scheduling), then hands control back to the strategy —
/// so for the stateless strategies ([`Exhaustive`],
/// [`NeighbourExhaustive`], [`RandomSample`]) a resumed run's final
/// result is bit-identical to an uninterrupted one. [`HillClimb`]
/// keeps private RNG state a checkpoint cannot capture: a resumed
/// climb is still deterministic and never re-evaluates visited points,
/// but its continuation trajectory may differ from the uninterrupted
/// run's.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchCheckpoint {
    /// Strategy rounds whose batches were fully evaluated.
    pub round: usize,
    /// Every evaluation up to the snapshot, in evaluation order.
    pub observations: Vec<Observation>,
}

impl SearchCheckpoint {
    /// The visited space indices, in evaluation order — exactly what a
    /// resumed run replays.
    pub fn indices(&self) -> Vec<usize> {
        self.observations.iter().map(|o| o.index).collect()
    }
}

/// The engine-owned mutable search trajectory: the round counter, the
/// set of visited indices and the observation log that
/// [`SearchContext`] borrows. Extracted from the exploration loop's
/// locals so a running sweep can be snapshotted
/// ([`SearchState::checkpoint`]) and a later run re-seeded from the
/// snapshot — the mechanism behind both daemon job resume and CLI
/// `--resume`.
#[derive(Debug, Default)]
pub struct SearchState {
    round: usize,
    completed_rounds: usize,
    seen: HashSet<usize>,
    observations: Vec<Observation>,
}

impl SearchState {
    /// A fresh trajectory: nothing visited, round 0.
    pub fn new() -> Self {
        SearchState::default()
    }

    /// Rounds started so far (what [`SearchContext::round`] reports).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Marks the start of a strategy round.
    pub fn begin_round(&mut self) {
        self.round += 1;
    }

    /// Marks the current round's batch as fully evaluated.
    pub fn finish_round(&mut self) {
        self.completed_rounds = self.round;
    }

    /// Points visited or claimed by an in-flight batch (budget
    /// accounting: claimed points spend budget even if a cancellation
    /// arrives before their chunk evaluates).
    pub fn visited(&self) -> usize {
        self.seen.len()
    }

    /// Every evaluation so far, in evaluation order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Claims `index` for evaluation; `false` when already claimed.
    pub fn claim(&mut self, index: usize) -> bool {
        self.seen.insert(index)
    }

    /// Appends one evaluation outcome.
    pub fn record(&mut self, observation: Observation) {
        self.observations.push(observation);
    }

    /// Builds the read-only view a strategy plans from.
    pub fn context<'a>(
        &'a self,
        space: &'a TemplateSpace,
        seed: u64,
        remaining: usize,
        front: &'a [usize],
    ) -> SearchContext<'a> {
        SearchContext::new(
            space,
            seed,
            self.round,
            remaining,
            &self.observations,
            front,
            &self.seen,
        )
    }

    /// Snapshots the trajectory: completed rounds plus the observation
    /// log. Indices claimed by an interrupted batch but never evaluated
    /// are deliberately *not* part of the snapshot — a resumed run
    /// re-proposes and evaluates them normally.
    pub fn checkpoint(&self) -> SearchCheckpoint {
        SearchCheckpoint {
            round: self.completed_rounds,
            observations: self.observations.clone(),
        }
    }
}

/// Everything a strategy may consult when planning its next batch.
///
/// Built fresh by the engine before each [`SearchStrategy::next_batch`]
/// call; all views are read-only borrows of engine state.
pub struct SearchContext<'a> {
    space: &'a TemplateSpace,
    seed: u64,
    round: usize,
    remaining: usize,
    observations: &'a [Observation],
    front: &'a [usize],
    evaluated: &'a HashSet<usize>,
}

impl<'a> SearchContext<'a> {
    /// Assembles a context (engine-side; strategies only read it).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        space: &'a TemplateSpace,
        seed: u64,
        round: usize,
        remaining: usize,
        observations: &'a [Observation],
        front: &'a [usize],
        evaluated: &'a HashSet<usize>,
    ) -> Self {
        SearchContext {
            space,
            seed,
            round,
            remaining,
            observations,
            front,
            evaluated,
        }
    }

    /// The space being searched.
    pub fn space(&self) -> &TemplateSpace {
        self.space
    }

    /// The run's RNG seed ([`crate::explore::Exploration::seed`],
    /// default 0). Strategies must derive all randomness from it.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Batches already issued (0 on the first call).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Evaluations left in the budget. Proposing more than this is
    /// harmless — the engine truncates — but wasteful.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Every evaluation so far, in evaluation order.
    pub fn observations(&self) -> &[Observation] {
        self.observations
    }

    /// Space indices of the points currently on the Pareto front.
    pub fn front(&self) -> &[usize] {
        self.front
    }

    /// Whether the point at `index` has already been evaluated (such
    /// proposals are filtered by the engine and spend no budget).
    pub fn is_evaluated(&self, index: usize) -> bool {
        self.evaluated.contains(&index)
    }
}

/// A search strategy: plans which template-space points to evaluate.
///
/// The engine calls [`SearchStrategy::next_batch`] in a loop, evaluates
/// the fresh indices of each batch (already-seen and out-of-range
/// proposals are dropped; the batch is truncated to the remaining
/// budget), and stops when the strategy returns an empty batch or the
/// budget runs out. Strategies must be deterministic functions of the
/// context — in particular of [`SearchContext::seed`] — so that a
/// repeated run reproduces bit-identical results.
pub trait SearchStrategy {
    /// Short machine-readable name (`exhaustive`, `random`, …), used in
    /// CLI flags, result metadata and cache fingerprints.
    fn name(&self) -> &'static str;

    /// Salt folded into the sweep-cache content address, so sampled
    /// runs never share cache entries with exhaustive ones. `None`
    /// (only [`Exhaustive`] returns it) keeps the classic cache keys,
    /// preserving warm-cache bit-identity with pre-strategy sweeps.
    fn cache_salt(&self) -> Option<u64>;

    /// The next batch of point indices to evaluate. Empty ⇒ done.
    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Vec<usize>;

    /// The order in which the engine should *evaluate* each planned
    /// batch. [`WalkOrder::Enumeration`] (the default) evaluates in
    /// proposal order; [`WalkOrder::Neighbour`] re-sorts every batch by
    /// [`TemplateSpace::neighbour_rank`] so consecutive evaluations
    /// differ in one template knob. The order changes *when* a point is
    /// evaluated, never *whether* — budget truncation happens before the
    /// re-sort — and per-point cache keys are order-independent.
    fn walk_order(&self) -> WalkOrder {
        WalkOrder::Enumeration
    }
}

/// How a strategy asks the engine to order each batch's evaluations —
/// see [`SearchStrategy::walk_order`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalkOrder {
    /// Evaluate in the order the strategy proposed.
    #[default]
    Enumeration,
    /// Re-sort each batch into the Gray-walk neighbour order of the
    /// space ([`TemplateSpace::neighbour_order`]).
    Neighbour,
}

// ---------------------------------------------------------------------
// Exhaustive
// ---------------------------------------------------------------------

/// The classic full sweep: one batch holding every point in enumeration
/// order. Results and cache keys are bit-identical to the pre-strategy
/// engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl Exhaustive {
    /// The same full sweep, evaluated in Gray-walk neighbour order —
    /// see [`NeighbourExhaustive`].
    pub fn neighbour() -> NeighbourExhaustive {
        NeighbourExhaustive
    }
}

impl SearchStrategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn cache_salt(&self) -> Option<u64> {
        None
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Vec<usize> {
        if ctx.round() > 0 {
            return Vec::new();
        }
        // Propose no more than the budget can evaluate: a budgeted run
        // over a 10⁷-point space must allocate O(budget), not O(space).
        // The evaluated prefix is identical either way — the engine
        // truncates at the budget — so results are unchanged.
        (0..ctx.space().len()).take(ctx.remaining()).collect()
    }
}

/// The full sweep in neighbour (Gray-walk) order: every point exactly
/// once, with consecutive evaluations differing in exactly one template
/// knob ([`TemplateSpace::neighbour_order`]). The point *set* is that of
/// [`Exhaustive`], so the cache salt is `None` too: per-point cache
/// addresses depend only on the architecture, never on visit order, and
/// a neighbour-order sweep produces a byte-identical cache file.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeighbourExhaustive;

impl SearchStrategy for NeighbourExhaustive {
    fn name(&self) -> &'static str {
        "exhaustive-neighbour"
    }

    fn cache_salt(&self) -> Option<u64> {
        None
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Vec<usize> {
        if ctx.round() > 0 {
            return Vec::new();
        }
        // Budget-bounded like [`Exhaustive`]: a budgeted run proposes
        // exactly the first `remaining` steps of the Gray walk — a
        // contiguous rank prefix, so the engine's carried folds take
        // the O(1) path on every step after the first.
        ctx.space()
            .neighbour_order()
            .take(ctx.remaining())
            .collect()
    }

    fn walk_order(&self) -> WalkOrder {
        WalkOrder::Neighbour
    }
}

// ---------------------------------------------------------------------
// RandomSample
// ---------------------------------------------------------------------

/// A seeded uniform sample of at most `budget` distinct points.
///
/// With a budget covering the whole space this degenerates to the
/// exhaustive order (every index, ascending); otherwise it draws
/// distinct indices with a [`StdRng`] seeded from the run seed —
/// rejection sampling while the sample is sparse, a partial
/// Fisher–Yates shuffle once it is not, so huge spaces never
/// materialise an index vector they don't need.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSample;

impl SearchStrategy for RandomSample {
    fn name(&self) -> &'static str {
        "random"
    }

    fn cache_salt(&self) -> Option<u64> {
        Some(Fingerprint::new().str("random").finish())
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Vec<usize> {
        if ctx.round() > 0 {
            return Vec::new();
        }
        let n = ctx.space().len();
        let k = ctx.remaining().min(n);
        if k == n {
            return (0..n).collect();
        }
        let mut rng = StdRng::seed_from_u64(ctx.seed());
        sample_distinct(&mut rng, n, k)
    }
}

/// Above this space size the dense branch of [`sample_distinct`] stops
/// materialising a full `0..n` index vector (10⁷ indices = 80 MB) and
/// samples the *complement* instead. Historical spaces (paper: 396
/// points) sit far below the limit, so their seeded draws are
/// bit-identical to every earlier release.
const DENSE_MATERIALISE_LIMIT: usize = 1 << 20;

/// `k` distinct values from `0..n`, deterministically per seed: in draw
/// order for the sparse and small-dense branches, ascending for the
/// huge-dense branch (`k·2 > n` and `n > DENSE_MATERIALISE_LIMIT`,
/// which samples the excluded complement instead of shuffling an O(n)
/// index vector). Memory is O(k) + O(n−k) — never O(n) beyond the
/// returned sample itself.
///
/// # Panics
///
/// Panics when `k > n` — there are not `k` distinct values to draw. A
/// real assert, not a `debug_assert`: in a release build a violation
/// would otherwise loop forever in the rejection-sampling branch
/// (every draw is a duplicate once all `n` values are out).
fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(
        k <= n,
        "sample_distinct: cannot draw {k} distinct values from 0..{n}"
    );
    if k * 2 <= n {
        // Sparse: rejection sampling — O(k) memory, no index vector.
        let mut chosen = HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let i = rng.random_range(0..n as u64) as usize;
            if chosen.insert(i) {
                out.push(i);
            }
        }
        out
    } else if n <= DENSE_MATERIALISE_LIMIT {
        // Dense but small: partial Fisher–Yates over the full index
        // range — kept bit-identical for the historical spaces.
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + rng.random_range(0..(n - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices.truncate(k);
        indices
    } else {
        // Dense *and* huge: the excluded set is the sparse side —
        // rejection-sample the n−k indices to drop, emit the rest
        // ascending. O(n) time (one pass), O(n−k) extra memory.
        let drop = n - k;
        let mut excluded = HashSet::with_capacity(drop);
        while excluded.len() < drop {
            excluded.insert(rng.random_range(0..n as u64) as usize);
        }
        (0..n).filter(|i| !excluded.contains(i)).collect()
    }
}

// ---------------------------------------------------------------------
// HillClimb
// ---------------------------------------------------------------------

/// Evolutionary hill-climbing over the template knobs.
///
/// Round 0 evaluates a random population. Every later round takes the
/// space indices of the *current Pareto front* (the engine's streaming
/// archive), decodes each into its mixed-radix knob digits
/// ([`TemplateSpace::coords`]: buses, ALUs, CMPs, MULs, immediates, RF
/// set) and proposes unseen single-knob mutants; whatever slack remains
/// in the batch is filled with random restarts so plateaus and
/// infeasible pockets cannot stall the search. The strategy gives up —
/// returns an empty batch — when a bounded number of draws finds
/// nothing unseen, which also makes it terminate cleanly on small
/// spaces it has fully covered.
#[derive(Debug, Clone)]
pub struct HillClimb {
    /// Points proposed per generation.
    batch: usize,
    rng: Option<StdRng>,
}

impl HillClimb {
    /// Default generation size.
    pub const DEFAULT_BATCH: usize = 16;

    /// A climber proposing `batch` points per generation.
    pub fn with_batch(batch: usize) -> Self {
        HillClimb {
            batch: batch.max(1),
            rng: None,
        }
    }

    /// One single-knob mutant of `index`, or `None` when no knob has an
    /// alternative value.
    fn mutate(rng: &mut StdRng, space: &TemplateSpace, index: usize) -> Option<usize> {
        let radices = space.knob_radices();
        let movable: Vec<usize> = (0..radices.len()).filter(|&d| radices[d] > 1).collect();
        if movable.is_empty() {
            return None;
        }
        let mut coords = space.coords(index);
        let dim = movable[rng.random_range(0..movable.len() as u64) as usize];
        // Uniform over the *other* digit values of that knob.
        let mut digit = rng.random_range(0..(radices[dim] - 1) as u64) as usize;
        if digit >= coords[dim] {
            digit += 1;
        }
        coords[dim] = digit;
        Some(space.index_of(coords))
    }
}

impl Default for HillClimb {
    fn default() -> Self {
        HillClimb::with_batch(Self::DEFAULT_BATCH)
    }
}

impl SearchStrategy for HillClimb {
    fn name(&self) -> &'static str {
        "hillclimb"
    }

    fn cache_salt(&self) -> Option<u64> {
        Some(
            Fingerprint::new()
                .str("hillclimb")
                .u64(self.batch as u64)
                .finish(),
        )
    }

    fn next_batch(&mut self, ctx: &SearchContext<'_>) -> Vec<usize> {
        let n = ctx.space().len();
        if n == 0 {
            return Vec::new();
        }
        let rng = self
            .rng
            .get_or_insert_with(|| StdRng::seed_from_u64(ctx.seed()));
        let want = self.batch.min(ctx.remaining());
        let mut fresh: Vec<usize> = Vec::with_capacity(want);
        let mut proposed: HashSet<usize> = HashSet::with_capacity(want);
        // Bounded draw attempts: enough to get past collisions on a
        // healthy space, small enough to terminate fast on an exhausted
        // one.
        let mut attempts = (want * 16).max(64);
        // Parent pool: the current front; empty on round 0 (or when
        // everything so far was infeasible) ⇒ pure random exploration.
        let parents = ctx.front();
        while fresh.len() < want && attempts > 0 {
            attempts -= 1;
            let candidate = if parents.is_empty() {
                rng.random_range(0..n as u64) as usize
            } else {
                let parent = parents[rng.random_range(0..parents.len() as u64) as usize];
                match Self::mutate(rng, ctx.space(), parent) {
                    Some(m) if !ctx.is_evaluated(m) => m,
                    // Neighbourhood exhausted or degenerate: restart.
                    _ => rng.random_range(0..n as u64) as usize,
                }
            };
            if !ctx.is_evaluated(candidate) && proposed.insert(candidate) {
                fresh.push(candidate);
            }
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (TemplateSpace, Vec<Observation>, Vec<usize>, HashSet<usize>) {
        (
            TemplateSpace::paper_default(),
            Vec::new(),
            Vec::new(),
            HashSet::new(),
        )
    }

    fn ctx<'a>(
        space: &'a TemplateSpace,
        seed: u64,
        round: usize,
        remaining: usize,
        obs: &'a [Observation],
        front: &'a [usize],
        evaluated: &'a HashSet<usize>,
    ) -> SearchContext<'a> {
        SearchContext::new(space, seed, round, remaining, obs, front, evaluated)
    }

    #[test]
    fn exhaustive_proposes_every_index_once() {
        let (space, obs, front, seen) = ctx_parts();
        let mut s = Exhaustive;
        let batch = s.next_batch(&ctx(&space, 0, 0, usize::MAX, &obs, &front, &seen));
        assert_eq!(batch, (0..space.len()).collect::<Vec<_>>());
        let done = s.next_batch(&ctx(&space, 0, 1, usize::MAX, &obs, &front, &seen));
        assert!(done.is_empty());
        assert!(s.cache_salt().is_none());
    }

    #[test]
    fn neighbour_exhaustive_proposes_the_gray_permutation() {
        let (space, obs, front, seen) = ctx_parts();
        let mut s = Exhaustive::neighbour();
        let batch = s.next_batch(&ctx(&space, 0, 0, usize::MAX, &obs, &front, &seen));
        assert_eq!(batch, space.neighbour_order().collect::<Vec<_>>());
        let mut sorted = batch;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..space.len()).collect::<Vec<_>>());
        assert!(
            s.cache_salt().is_none(),
            "same cache namespace as Exhaustive"
        );
        assert_eq!(s.walk_order(), WalkOrder::Neighbour);
        assert_eq!(Exhaustive.walk_order(), WalkOrder::Enumeration);
        let done = s.next_batch(&ctx(&space, 0, 1, usize::MAX, &obs, &front, &seen));
        assert!(done.is_empty());
    }

    #[test]
    fn random_sample_is_deterministic_distinct_and_budgeted() {
        let (space, obs, front, seen) = ctx_parts();
        let batch = |seed| RandomSample.next_batch(&ctx(&space, seed, 0, 10, &obs, &front, &seen));
        let a = batch(42);
        let b = batch(42);
        assert_eq!(a, b, "same seed ⇒ same sample");
        assert_eq!(a.len(), 10);
        let distinct: HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), a.len(), "indices must be distinct");
        assert!(a.iter().all(|&i| i < space.len()));
        assert_ne!(batch(42), batch(43), "different seed ⇒ different sample");
    }

    #[test]
    fn random_sample_covers_the_space_when_budget_allows() {
        let (space, obs, front, seen) = ctx_parts();
        let batch =
            RandomSample.next_batch(&ctx(&space, 7, 0, space.len() + 10, &obs, &front, &seen));
        assert_eq!(batch, (0..space.len()).collect::<Vec<_>>());
    }

    #[test]
    fn dense_sampling_stays_distinct() {
        // k > n/2 exercises the Fisher–Yates branch.
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_distinct(&mut rng, 10, 9);
        assert_eq!(s.len(), 9);
        assert_eq!(s.iter().collect::<HashSet<_>>().len(), 9);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn oversized_sample_panics_instead_of_spinning() {
        // k > n used to be a debug_assert only: a release build would
        // hang in rejection sampling. Now it fails loudly everywhere.
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_distinct(&mut rng, 4, 5);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// `RandomSample` with a budget covering the whole space
        /// degenerates to the exhaustive index set — for any seed and
        /// any amount of budget slack.
        #[test]
        fn full_budget_random_equals_exhaustive(seed in 0u64..1000, slack in 0usize..40) {
            let space = TemplateSpace::paper_default();
            let (obs, front, seen) = (Vec::new(), Vec::new(), HashSet::new());
            let random = RandomSample.next_batch(&SearchContext::new(
                &space, seed, 0, space.len() + slack, &obs, &front, &seen,
            ));
            let mut exhaustive = Exhaustive;
            let full = exhaustive.next_batch(&SearchContext::new(
                &space, seed, 0, usize::MAX, &obs, &front, &seen,
            ));
            proptest::prop_assert_eq!(random, full);
        }
    }

    /// A 10⁷-point space (10 values on seven knobs): big enough that
    /// any O(|space|) allocation in a planner would dominate the test's
    /// memory and time budget.
    fn ten_million_points() -> TemplateSpace {
        let space = TemplateSpace {
            width: 8,
            buses: (1..=10).collect(),
            clusters: (1..=10).collect(),
            alus: (1..=10).collect(),
            cmps: (1..=10).collect(),
            muls: (0..10).collect(),
            imms: (1..=10).collect(),
            pipes: vec![1],
            rf_banks: vec![1],
            rf_sets: (0..10).map(|k| vec![(4 + k, 1, 2)]).collect(),
        };
        assert_eq!(space.len(), 10_000_000);
        space
    }

    #[test]
    fn budgeted_batches_stay_small_on_a_ten_million_point_space() {
        // Regression: Exhaustive/NeighbourExhaustive used to collect
        // the whole index range per batch and RandomSample's dense
        // branch shuffled a full O(n) vector — a budgeted sweep of a
        // 10⁷-point space allocated 80 MB before evaluating a single
        // point. Every strategy must now propose O(budget) indices.
        let space = ten_million_points();
        let (obs, front, seen) = (Vec::new(), Vec::new(), HashSet::new());
        let budget = 512;
        let strategies: Vec<Box<dyn SearchStrategy>> = vec![
            Box::new(Exhaustive),
            Box::new(Exhaustive::neighbour()),
            Box::new(RandomSample),
            Box::new(HillClimb::default()),
        ];
        for mut s in strategies {
            let batch = s.next_batch(&ctx(&space, 11, 0, budget, &obs, &front, &seen));
            assert!(
                batch.len() <= budget,
                "{} proposed {} indices for a budget of {budget}",
                s.name(),
                batch.len()
            );
            assert!(!batch.is_empty(), "{} proposed nothing", s.name());
            assert!(batch.iter().all(|&i| i < space.len()));
            let distinct: HashSet<_> = batch.iter().collect();
            assert_eq!(distinct.len(), batch.len(), "{}", s.name());
        }
        // The budgeted Gray prefix is exactly ranks 0..budget, so the
        // engine's carried folds see a contiguous walk.
        let prefix =
            Exhaustive::neighbour().next_batch(&ctx(&space, 0, 0, budget, &obs, &front, &seen));
        assert_eq!(
            prefix,
            space.neighbour_order().take(budget).collect::<Vec<_>>()
        );
    }

    #[test]
    fn huge_dense_sampling_avoids_the_index_vector() {
        // k·2 > n above DENSE_MATERIALISE_LIMIT: the complement branch.
        let n = DENSE_MATERIALISE_LIMIT + 10;
        let k = n - 3;
        let mut rng = StdRng::seed_from_u64(5);
        let s = sample_distinct(&mut rng, n, k);
        assert_eq!(s.len(), k);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "ascending and distinct");
        assert!(s.iter().all(|&i| i < n));
        // Deterministic per seed.
        let mut rng2 = StdRng::seed_from_u64(5);
        assert_eq!(s, sample_distinct(&mut rng2, n, k));
    }

    #[test]
    fn hillclimb_mutates_one_knob_at_a_time() {
        let space = TemplateSpace::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        for index in [0, 5, space.len() - 1] {
            for _ in 0..32 {
                let m = HillClimb::mutate(&mut rng, &space, index).expect("knobs movable");
                assert_ne!(m, index, "a mutant must differ from its parent");
                assert!(m < space.len());
                let (a, b) = (space.coords(index), space.coords(m));
                let differing = a.iter().zip(&b).filter(|(x, y)| x != y).count();
                assert_eq!(differing, 1, "exactly one knob digit moves");
            }
        }
    }

    #[test]
    fn hillclimb_explores_randomly_then_climbs_the_front() {
        let (space, obs, front, seen) = ctx_parts();
        let mut s = HillClimb::default();
        let scouts = s.next_batch(&ctx(&space, 9, 0, usize::MAX, &obs, &front, &seen));
        assert_eq!(scouts.len(), HillClimb::DEFAULT_BATCH);
        // Feed a front back; the next generation is fresh points only.
        let seen: HashSet<usize> = scouts.iter().copied().collect();
        let front = vec![scouts[0]];
        let obs: Vec<Observation> = scouts
            .iter()
            .map(|&index| Observation {
                index,
                objectives: Some((1.0, 1.0)),
            })
            .collect();
        let next = s.next_batch(&ctx(&space, 9, 1, usize::MAX, &obs, &front, &seen));
        assert!(!next.is_empty());
        assert!(next.iter().all(|i| !seen.contains(i)), "{next:?}");
    }

    #[test]
    fn hillclimb_terminates_on_an_exhausted_space() {
        let space = TemplateSpace::tiny();
        let seen: HashSet<usize> = (0..space.len()).collect();
        let obs: Vec<Observation> = (0..space.len())
            .map(|index| Observation {
                index,
                objectives: None,
            })
            .collect();
        let front = Vec::new();
        let mut s = HillClimb::default();
        let batch = s.next_batch(&ctx(&space, 0, 1, usize::MAX, &obs, &front, &seen));
        assert!(batch.is_empty(), "nothing unseen remains");
    }

    #[test]
    fn strategy_salts_separate_cache_namespaces() {
        assert_ne!(RandomSample.cache_salt(), HillClimb::default().cache_salt());
        assert_ne!(
            HillClimb::with_batch(8).cache_salt(),
            HillClimb::with_batch(9).cache_salt(),
            "generation size is part of the identity"
        );
    }
}
