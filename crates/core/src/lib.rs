//! **The paper's contribution**: test-cost-aware design-space exploration
//! of transport-triggered architectures.
//!
//! The flow mirrors Sections 3–4 of the paper:
//!
//! 1. every datapath component is *back-annotated* by running real ATPG
//!    (and march tests for register files) on its generated gate-level
//!    netlist — [`backannotate`];
//! 2. the analytical test-cost functions of eqs. (11)–(14) turn those
//!    numbers plus the architectural parameters (ports, buses, sockets)
//!    into a per-architecture test cost — [`testcost`];
//! 3. classical full scan is costed as the baseline — [`fullscan`];
//! 4. the design space is swept (area from the netlists, execution time
//!    from the MOVE scheduler), reduced to Pareto points, lifted to N-D
//!    with the test axis — post-hoc as in the paper, or as a
//!    first-class third sweep objective via
//!    [`explore::LiftMode::Full`] — and the final architecture is
//!    selected with a weighted norm — [`pareto`], [`norm`],
//!    [`explore`].
//!
//! Each cost axis is a pluggable trait ([`models`]): swap the cell
//! library, the interconnect constants or the whole test methodology
//! without touching the pipeline.
//!
//! # Quickstart
//!
//! ```no_run
//! use tta_arch::template::TemplateSpace;
//! use tta_core::explore::Exploration;
//! use tta_workloads::suite;
//!
//! let result = Exploration::over(TemplateSpace::fast_default())
//!     .workload(&suite::crypt(2))
//!     .parallel(true)
//!     .run();
//! let best = result.select_equal_weights();
//! println!("selected: {}", best.architecture);
//! println!("area {:.0} GE, test cost {:.0} cycles",
//!     best.area(), best.test_cost().unwrap_or(f64::NAN));
//! ```
//!
//! Customising the pipeline — multiple workloads, custom interconnect
//! constants, explicit parallelism, a shared annotation database, a
//! persistent sweep cache:
//!
//! ```no_run
//! use tta_arch::template::TemplateSpace;
//! use tta_core::explore::Exploration;
//! use tta_core::models::InterconnectModel;
//! use tta_core::ComponentDb;
//! use tta_workloads::suite;
//!
//! let db = ComponentDb::new();
//! let crypt = suite::crypt(2);
//! let checksum = suite::checksum32();
//! let cache = tta_core::SweepCache::open("/tmp/ttadse-cache").unwrap();
//! let result = Exploration::over(TemplateSpace::paper_default())
//!     .workloads([&crypt, &checksum])
//!     .interconnect(InterconnectModel { bus_area_per_bit: 6.0, ..InterconnectModel::paper() })
//!     .with_db(&db)
//!     .cache(&cache) // re-runs skip every cached point, bit-identically
//!     .parallel(true)
//!     .run();
//! assert!(result.projection_holds());
//! ```

#![warn(missing_docs)]

/// The workload-authoring guide, compiled as doc-tests so
/// `docs/WORKLOADS.md` can never drift from the API it documents.
#[cfg(doctest)]
mod workloads_guide {
    #![doc = include_str!("../../../docs/WORKLOADS.md")]
}

/// The gate-level fidelity guide — elaboration, analysis passes, lint
/// catalogue, `--fidelity` — compiled as doc-tests so
/// `docs/FIDELITY.md` can never drift from the API it documents.
#[cfg(doctest)]
mod fidelity_guide {
    #![doc = include_str!("../../../docs/FIDELITY.md")]
}

pub mod backannotate;
pub mod cache;
pub mod delta;
pub mod explore;
pub mod fullscan;
pub mod models;
pub mod norm;
pub mod parallel;
pub mod pareto;
pub mod report;
pub mod rfmem;
pub mod search;
pub mod testcost;
pub mod testplan;

pub use backannotate::{ComponentDb, ComponentKey, ComponentRecord};
pub use cache::SweepCache;
pub use delta::{CarriedFolds, DeltaEvaluator, DeltaStats, PointCosts};
pub use explore::{
    CacheStatus, CancelToken, CycleSource, EvalMode, EvaluatedArch, Exploration, ExploreError,
    ExploreResult, FidelityMode, LiftMode, Objective, ObjectiveVector, SearchInfo, SweepProgress,
    WorkloadBreakdown,
};
pub use models::{
    AnnotatedAreaModel, AnnotatedTimingModel, AreaModel, Eq14TestCostModel, InterconnectModel,
    NetlistAreaModel, NetlistEvaluator, NetlistFigures, NetlistTimingModel, ScanTestCostModel,
    TestCostModel, TimingModel,
};
pub use norm::{Norm, Weights};
pub use pareto::{pareto_front, ParetoArchive};
pub use rfmem::{RfImplementationComparison, RfMemSpec};
pub use search::{
    Exhaustive, HillClimb, NeighbourExhaustive, RandomSample, SearchCheckpoint, SearchState,
    SearchStrategy,
};
pub use testcost::{architecture_test_cost, ArchTestCost, ComponentTestCost};
pub use testplan::{TestPhase, TestPlan};
