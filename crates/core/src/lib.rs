//! **The paper's contribution**: test-cost-aware design-space exploration
//! of transport-triggered architectures.
//!
//! The flow mirrors Sections 3–4 of the paper:
//!
//! 1. every datapath component is *back-annotated* by running real ATPG
//!    (and march tests for register files) on its generated gate-level
//!    netlist — [`backannotate`];
//! 2. the analytical test-cost functions of eqs. (11)–(14) turn those
//!    numbers plus the architectural parameters (ports, buses, sockets)
//!    into a per-architecture test cost — [`testcost`];
//! 3. classical full scan is costed as the baseline — [`fullscan`];
//! 4. the design space is swept (area from the netlists, execution time
//!    from the MOVE scheduler), reduced to Pareto points, lifted to 3-D
//!    with the test axis, and the final architecture is selected with a
//!    weighted norm — [`pareto`], [`norm`], [`explore`].
//!
//! # Quickstart
//!
//! ```no_run
//! use tta_core::explore::{ExploreConfig, Explorer};
//! use tta_workloads::suite;
//!
//! let mut explorer = Explorer::new(ExploreConfig::fast());
//! let result = explorer.run(&suite::crypt(2));
//! let best = result.select_equal_weights();
//! println!("selected: {}", best.architecture);
//! ```

pub mod backannotate;
pub mod explore;
pub mod fullscan;
pub mod norm;
pub mod pareto;
pub mod report;
pub mod rfmem;
pub mod testcost;
pub mod testplan;

pub use backannotate::{ComponentDb, ComponentKey, ComponentRecord};
pub use explore::{EvaluatedArch, ExploreConfig, ExploreResult, Explorer};
pub use norm::{Norm, Weights};
pub use pareto::pareto_front;
pub use testcost::{architecture_test_cost, ArchTestCost, ComponentTestCost};
pub use rfmem::{RfImplementationComparison, RfMemSpec};
pub use testplan::{TestPhase, TestPlan};
