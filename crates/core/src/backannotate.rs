//! Component back-annotation: the paper's "components are already
//! predesigned up to the gate-level … the numbers of the test patterns
//! for each functional unit (and register file) is back-annotated with an
//! automatic test pattern generation (ATPG) tool. Not only the test
//! patterns, but also the information regarding the actual area and delay
//! of each component are used during the design space exploration."
//!
//! [`ComponentDb`] lazily generates each component netlist, runs ATPG
//! (march tests for register-file storage), and caches the record — so a
//! whole design-space sweep pays for each distinct component once. The
//! cache is interior-mutable (`RwLock` over `Arc`ed records), so a shared
//! `&ComponentDb` serves many sweep threads concurrently; [`ComponentDb::warm`]
//! pre-annotates a key set up front so the sweep itself runs over a
//! read-mostly database.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use tta_arch::{FuKind, RfInstance};
use tta_atpg::{Atpg, AtpgConfig};
use tta_dft::march::MarchAlgorithm;
use tta_netlist::components::{self, Component};
use tta_netlist::timing;

/// Identity of a pre-designed component (the cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKey {
    /// ALU at the given width.
    Alu(u16),
    /// Comparator.
    Cmp(u16),
    /// Multiplier.
    Mul(u16),
    /// Register file `(width, regs, nin, nout)`.
    Rf(u16, u16, u8, u8),
    /// Load/store unit.
    LdSt(u16),
    /// Program counter.
    Pc(u16),
    /// Immediate unit.
    Imm(u16),
    /// Socket/stage-control group `(width, n_input_ports)`.
    SocketGroup(u16, u8),
}

impl ComponentKey {
    /// The key of the functional-unit component for `kind` at datapath
    /// width `width` — the single source of the FU→component mapping.
    pub fn for_fu(kind: FuKind, width: u16) -> ComponentKey {
        match kind {
            FuKind::Alu => ComponentKey::Alu(width),
            FuKind::Cmp => ComponentKey::Cmp(width),
            FuKind::Mul => ComponentKey::Mul(width),
            FuKind::LdSt => ComponentKey::LdSt(width),
            FuKind::Pc => ComponentKey::Pc(width),
            FuKind::Immediate => ComponentKey::Imm(width),
        }
    }

    /// The key of a register file, with checked narrowing: `None` when
    /// the geometry exceeds the key's field widths (>65535 registers or
    /// >255 ports) instead of silently truncating to a *smaller* RF.
    pub fn for_rf(rf: &RfInstance, width: u16) -> Option<ComponentKey> {
        Some(ComponentKey::Rf(
            width,
            u16::try_from(rf.regs).ok()?,
            u8::try_from(rf.nin()).ok()?,
            u8::try_from(rf.nout()).ok()?,
        ))
    }

    /// The socket-group key serving a component with `n_input_ports`
    /// inputs; `None` when the port count exceeds the key's `u8` field.
    pub fn socket_group(width: u16, n_input_ports: usize) -> Option<ComponentKey> {
        Some(ComponentKey::SocketGroup(
            width,
            u8::try_from(n_input_ports).ok()?,
        ))
    }

    /// Generates the component netlist for this key.
    pub fn generate(self) -> Component {
        match self {
            ComponentKey::Alu(w) => components::alu(w as usize),
            ComponentKey::Cmp(w) => components::cmp(w as usize),
            ComponentKey::Mul(w) => components::mul(w as usize),
            ComponentKey::Rf(w, regs, nin, nout) => {
                components::register_file(w as usize, regs as usize, nin as usize, nout as usize)
            }
            ComponentKey::LdSt(w) => components::load_store(w as usize),
            ComponentKey::Pc(w) => components::pc(w as usize),
            ComponentKey::Imm(w) => components::immediate(w as usize),
            ComponentKey::SocketGroup(w, n_in) => {
                components::socket_group(w as usize, n_in as usize, 5)
            }
        }
    }

    /// Table-1 style display name.
    pub fn display_name(self) -> String {
        match self {
            ComponentKey::Alu(_) => "ALU".into(),
            ComponentKey::Cmp(_) => "CMP".into(),
            ComponentKey::Mul(_) => "MUL".into(),
            ComponentKey::Rf(_, regs, nin, nout) => format!("RF{regs}({nin}w/{nout}r)"),
            ComponentKey::LdSt(_) => "LD/ST".into(),
            ComponentKey::Pc(_) => "PC".into(),
            ComponentKey::Imm(_) => "IMM".into(),
            ComponentKey::SocketGroup(_, n) => format!("SOCK{n}"),
        }
    }
}

/// Everything the exploration needs to know about one component.
#[derive(Debug, Clone)]
pub struct ComponentRecord {
    /// Structural test-pattern count `np` (ATPG for logic, march
    /// operations for register-file storage).
    pub np: usize,
    /// Fault coverage achieved (detected / collapsed universe).
    pub fault_coverage: f64,
    /// Coverage of testable faults (proven-redundant excluded).
    pub adjusted_coverage: f64,
    /// Cell area in NAND2 gate equivalents.
    pub area: f64,
    /// Critical path in normalised gate delays.
    pub critical_path: f64,
    /// Total flip-flops.
    pub ff_total: usize,
    /// Transport-infrastructure flip-flops (pipeline registers etc.) —
    /// the component's share of the socket scan chain.
    pub ff_infrastructure: usize,
    /// Combinational gate count.
    pub gates: usize,
    /// Data connectors (`nconn` of eq. 11).
    pub nconn: usize,
}

/// Crate-internal abstraction over *where component records come from*:
/// the database itself, or the delta evaluator's memo arena in front of
/// it ([`crate::delta::DeltaEvaluator`]). The default cost models fold
/// their sums through this trait, so the scratch and delta evaluation
/// paths run the exact same float code — bit-identity between them holds
/// by construction, not by careful reimplementation.
pub(crate) trait RecordSource {
    /// The record for `key`, computing or memoizing as the source sees
    /// fit. Must return the same record a direct [`ComponentDb::get`]
    /// would.
    fn record(&self, key: ComponentKey) -> Arc<ComponentRecord>;
}

impl RecordSource for ComponentDb {
    fn record(&self, key: ComponentKey) -> Arc<ComponentRecord> {
        self.get(key)
    }
}

/// The lazy component database.
///
/// March-tested register files use [`MarchAlgorithm::march_cminus`] by
/// default; the algorithm is configurable for the eq.-(12) ablation.
///
/// The cache is interior-mutable: [`ComponentDb::get`] takes `&self`, so
/// a single database can be shared (by reference) across sweep threads.
/// Annotation is deterministic per key — concurrent first accesses to
/// the same key duplicate work but converge on identical records.
#[derive(Debug)]
pub struct ComponentDb {
    atpg: Atpg,
    march: MarchAlgorithm,
    cache: RwLock<HashMap<ComponentKey, Arc<ComponentRecord>>>,
    /// Memoized [`ComponentDb::fingerprint`]: the engines are fixed at
    /// construction, and the incremental engine validates the
    /// fingerprint once per evaluated point — formatting the engine
    /// configs on every check would dominate a carried fold.
    fingerprint: OnceLock<u64>,
}

impl Default for ComponentDb {
    fn default() -> Self {
        Self::new()
    }
}

impl ComponentDb {
    /// Database with the sweep-profile ATPG settings
    /// ([`AtpgConfig::sweep`] — same test sets as the default profile on
    /// the paper's components, an order of magnitude faster to annotate)
    /// and March C−.
    pub fn new() -> Self {
        ComponentDb {
            atpg: Atpg::new(AtpgConfig::sweep()),
            march: MarchAlgorithm::march_cminus(),
            cache: RwLock::new(HashMap::new()),
            fingerprint: OnceLock::new(),
        }
    }

    /// Database with custom engines (ablation benches).
    pub fn with_engines(atpg_config: AtpgConfig, march: MarchAlgorithm) -> Self {
        ComponentDb {
            atpg: Atpg::new(atpg_config),
            march,
            cache: RwLock::new(HashMap::new()),
            fingerprint: OnceLock::new(),
        }
    }

    /// The march algorithm used for register files.
    pub fn march(&self) -> &MarchAlgorithm {
        &self.march
    }

    /// Content address of the annotation *engines* (ATPG configuration +
    /// march algorithm) for the persistent sweep cache — a database with
    /// ablated engines produces different records, so cached results
    /// keyed on one engine set must not serve another. The cached
    /// records themselves are excluded: they are a pure function of the
    /// engines and the key.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            crate::cache::Fingerprint::new()
                .str("component-db")
                .str(&format!("{:?}", self.atpg))
                .str(&format!("{:?}", self.march))
                .finish()
        })
    }

    /// Fetches (computing and caching on first use) the record for `key`.
    pub fn get(&self, key: ComponentKey) -> Arc<ComponentRecord> {
        if let Some(rec) = self.cache.read().expect("db lock").get(&key) {
            return Arc::clone(rec);
        }
        // Compute outside the lock: annotation can take seconds and other
        // keys must stay readable meanwhile.
        let record = Arc::new(self.compute(key));
        let mut cache = self.cache.write().expect("db lock");
        Arc::clone(cache.entry(key).or_insert(record))
    }

    /// Whether `key` has already been annotated.
    pub fn contains(&self, key: ComponentKey) -> bool {
        self.cache.read().expect("db lock").contains_key(&key)
    }

    /// Annotates every key in `keys` that is not cached yet (serially).
    /// [`crate::explore::Exploration`] warms in parallel by sharing the
    /// database across threads that each call [`ComponentDb::get`].
    pub fn warm(&self, keys: impl IntoIterator<Item = ComponentKey>) {
        for key in keys {
            self.get(key);
        }
    }

    /// Number of distinct components annotated so far.
    pub fn len(&self) -> usize {
        self.cache.read().expect("db lock").len()
    }

    /// Whether nothing has been annotated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn compute(&self, key: ComponentKey) -> ComponentRecord {
        let component = key.generate();
        let stats = timing::analyze(&component.netlist);
        // Register files: storage is march-tested (eq. 12); the port/pipe
        // logic is covered by the same marching transports. Everything
        // else: stuck-at ATPG on the full-scan (= functional-access) view.
        let (np, fc, afc) = match key {
            ComponentKey::Rf(_, regs, _, _) => {
                let np = self.march.pattern_count(regs as usize);
                // March coverage over the behavioural fault model is
                // complete for March C−/B (verified in tta-dft tests).
                (np, 1.0, 1.0)
            }
            _ => {
                let result = self.atpg.run(&component.netlist);
                (
                    result.pattern_count(),
                    result.fault_coverage(),
                    result.adjusted_coverage(),
                )
            }
        };
        ComponentRecord {
            np,
            fault_coverage: fc,
            adjusted_coverage: afc,
            area: component.area(),
            critical_path: stats.critical_path,
            ff_total: component.netlist.dff_count(),
            ff_infrastructure: component.infrastructure_ff_count(),
            gates: component.netlist.gate_count(),
            nconn: component.nconn(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_cached() {
        let db = ComponentDb::new();
        let a = db.get(ComponentKey::Alu(4)).np;
        assert_eq!(db.len(), 1);
        let b = db.get(ComponentKey::Alu(4)).np;
        assert_eq!(a, b);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn rf_uses_march_counts() {
        let db = ComponentDb::new();
        let r8 = db.get(ComponentKey::Rf(8, 8, 1, 2)).np;
        let r12 = db.get(ComponentKey::Rf(8, 12, 1, 2)).np;
        assert_eq!(r8, 80); // March C-: 10n
        assert_eq!(r12, 120);
    }

    #[test]
    fn alu_patterns_beat_exhaustive() {
        let db = ComponentDb::new();
        let rec = db.get(ComponentKey::Alu(8)).clone();
        assert!(rec.np > 10 && rec.np < 500, "np = {}", rec.np);
        assert!(rec.adjusted_coverage > 0.99);
        assert!(rec.area > 0.0 && rec.critical_path > 0.0);
    }

    #[test]
    fn socket_group_is_small() {
        let db = ComponentDb::new();
        let rec = db.get(ComponentKey::SocketGroup(8, 2)).clone();
        assert!(rec.np < 64, "socket np = {}", rec.np);
        assert_eq!(rec.ff_total, 6);
    }
}
