//! Weighted-norm architecture selection (Section 4).
//!
//! "The selection of the most appropriate architecture can be done using
//! any of the standard weighted norm techniques within the vector space
//! ℝ³. … The standard Euclid norm with equal constraint weights has been
//! used." Axes are normalised to [0, 1] over the candidate set first, so
//! cycles, gate-equivalents and test cycles are commensurable.

/// Norm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// √Σ(wᵢ·xᵢ)² — the paper's choice.
    Euclidean,
    /// Σ|wᵢ·xᵢ|.
    Manhattan,
    /// max |wᵢ·xᵢ|.
    Chebyshev,
}

impl Norm {
    /// Evaluates the norm of a weighted vector.
    pub fn eval(self, weighted: &[f64]) -> f64 {
        match self {
            Norm::Euclidean => weighted.iter().map(|x| x * x).sum::<f64>().sqrt(),
            Norm::Manhattan => weighted.iter().map(|x| x.abs()).sum(),
            Norm::Chebyshev => weighted.iter().fold(0.0, |m, x| m.max(x.abs())),
        }
    }
}

/// Per-axis weights ("expressing the significance of a constraint over
/// other constraint").
#[derive(Debug, Clone, PartialEq)]
pub struct Weights(pub Vec<f64>);

impl Weights {
    /// Equal weights over `n` axes — the paper's setting ("no preferences
    /// have been given neither to the minimum test, nor area, nor
    /// throughput").
    pub fn equal(n: usize) -> Self {
        Weights(vec![1.0; n])
    }
}

/// Normalises each axis of `points` to [0, 1] (min→0, max→1; a constant
/// axis maps to 0).
pub fn normalize(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if points.is_empty() {
        return Vec::new();
    }
    let dims = points[0].len();
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for p in points {
        for d in 0..dims {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    points
        .iter()
        .map(|p| {
            (0..dims)
                .map(|d| {
                    let span = hi[d] - lo[d];
                    if span > 0.0 {
                        (p[d] - lo[d]) / span
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

/// Index of the point with minimal weighted norm after normalisation —
/// the paper's selection rule.
///
/// # Panics
///
/// Panics if `points` is empty or weight dimensionality mismatches.
pub fn select(points: &[Vec<f64>], weights: &Weights, norm: Norm) -> usize {
    assert!(!points.is_empty(), "cannot select from an empty set");
    let normed = normalize(points);
    let mut best = 0;
    let mut best_v = f64::INFINITY;
    for (i, p) in normed.iter().enumerate() {
        assert_eq!(p.len(), weights.0.len(), "weight dimensionality");
        let weighted: Vec<f64> = p.iter().zip(&weights.0).map(|(x, w)| x * w).collect();
        let v = norm.eval(&weighted);
        if v < best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weight_euclid_picks_balanced_point() {
        let pts = vec![
            vec![0.0, 100.0, 100.0],
            vec![100.0, 0.0, 100.0],
            vec![40.0, 40.0, 40.0],
        ];
        let i = select(&pts, &Weights::equal(3), Norm::Euclidean);
        assert_eq!(i, 2, "the balanced point has the least norm");
    }

    #[test]
    fn weights_shift_the_choice() {
        let pts = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        // Heavily weight axis 0: pick the point with axis0 = 0.
        let i = select(&pts, &Weights(vec![10.0, 1.0]), Norm::Euclidean);
        assert_eq!(i, 0);
        let i = select(&pts, &Weights(vec![1.0, 10.0]), Norm::Euclidean);
        assert_eq!(i, 1);
    }

    #[test]
    fn normalisation_bounds() {
        let n = normalize(&[vec![10.0, 5.0], vec![20.0, 5.0]]);
        assert_eq!(n[0], vec![0.0, 0.0]);
        assert_eq!(n[1], vec![1.0, 0.0]);
    }

    #[test]
    fn norm_values() {
        assert!((Norm::Euclidean.eval(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(Norm::Manhattan.eval(&[3.0, 4.0]), 7.0);
        assert_eq!(Norm::Chebyshev.eval(&[3.0, 4.0]), 4.0);
    }
}
