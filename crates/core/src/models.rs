//! Pluggable cost models for the exploration pipeline.
//!
//! The paper evaluates every architecture on three axes — silicon area,
//! execution time and test cost — each of which mixes *back-annotated*
//! component numbers with an *analytical* interconnect model. This module
//! factors that split into traits so each axis can be swapped
//! independently (different cell library, a pessimistic wire model, a
//! full-scan test-cost baseline, …) while the default implementations
//! reproduce the paper's flow exactly:
//!
//! * [`AreaModel`] → [`AnnotatedAreaModel`]: netlist cell areas from the
//!   [`ComponentDb`] plus bus wiring and control-path area from the
//!   [`InterconnectModel`];
//! * [`TimingModel`] → [`AnnotatedTimingModel`]: slowest component
//!   critical path plus a per-bus wire penalty;
//! * [`TestCostModel`] → [`Eq14TestCostModel`]: the eqs. (11)–(14)
//!   functional test cost of [`crate::testcost`].
//!
//! All model methods take a shared `&ComponentDb`, so one database serves
//! a whole (possibly parallel) sweep.

use tta_arch::{Architecture, FuKind, InstructionFormat};
use tta_dft::testtime::multi_chain_scan_cycles;

use crate::backannotate::{ComponentDb, ComponentKey, RecordSource};
use crate::cache::Fingerprint;
use crate::testcost::{
    architecture_test_cost, out_of_model, socket_state_bits, ArchTestCost, ComponentTestCost,
};

/// The analytical interconnect/control model: the constants the paper
/// folds into its area and delay numbers, made explicit and configurable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectModel {
    /// Wiring/driver area charged per move bus, in NAND2 equivalents per
    /// data-path bit (buses are long wires with repeaters and per-socket
    /// drivers; a coarse but monotone model).
    pub bus_area_per_bit: f64,
    /// Clock-period penalty per additional bus (longer wires), in
    /// normalised gate delays.
    pub bus_delay_penalty: f64,
    /// Control-path area charged per instruction bit (instruction
    /// register + decode drivers), NAND2 equivalents. The paper's
    /// "control signals and bits … adjoined to the data-bus" made
    /// explicit.
    pub control_area_per_instr_bit: f64,
}

impl InterconnectModel {
    /// Content address of the constants, for the persistent sweep cache
    /// ([`crate::cache`]).
    pub fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .str("interconnect")
            .f64(self.bus_area_per_bit)
            .f64(self.bus_delay_penalty)
            .f64(self.control_area_per_instr_bit)
            .finish()
    }

    /// The constants used throughout the paper's evaluation.
    pub fn paper() -> Self {
        InterconnectModel {
            bus_area_per_bit: 4.0,
            bus_delay_penalty: 0.2,
            control_area_per_instr_bit: 6.0,
        }
    }

    /// An idealised interconnect: buses and control are free. Useful to
    /// isolate the pure component contribution of an architecture.
    pub fn free() -> Self {
        InterconnectModel {
            bus_area_per_bit: 0.0,
            bus_delay_penalty: 0.0,
            control_area_per_instr_bit: 0.0,
        }
    }
}

impl Default for InterconnectModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Area axis: NAND2 gate equivalents of one architecture.
pub trait AreaModel: Send + Sync {
    /// Total area of `arch`. Non-finite values mark the architecture as
    /// outside the model's domain; the sweep drops such points as
    /// infeasible.
    fn area(&self, arch: &Architecture, db: &ComponentDb) -> f64;

    /// Content address of the model's behaviour for the persistent
    /// sweep cache ([`crate::cache`]): two models with the same
    /// fingerprint must produce bit-identical results for every
    /// architecture. The default `None` opts the model out — a run with
    /// an unfingerprintable model never consults or populates the
    /// cache, which is always safe.
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

/// Timing axis: clock period of one architecture in normalised gate
/// delays.
pub trait TimingModel: Send + Sync {
    /// Clock period of `arch`. Non-finite values mark the architecture
    /// as infeasible, as for [`AreaModel::area`].
    fn clock_period(&self, arch: &Architecture, db: &ComponentDb) -> f64;

    /// Cache fingerprint; same contract as [`AreaModel::fingerprint`].
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

/// Test axis: structural/functional test cost of one architecture.
pub trait TestCostModel: Send + Sync {
    /// Full per-component breakdown plus the comparative total.
    fn test_cost(&self, arch: &Architecture, db: &ComponentDb) -> ArchTestCost;

    /// Cache fingerprint; same contract as [`AreaModel::fingerprint`].
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

/// Width of `arch` as the `u16` the [`ComponentKey`] encoding uses, or
/// `None` for out-of-model widths.
pub(crate) fn key_width(arch: &Architecture) -> Option<u16> {
    u16::try_from(arch.width).ok()
}

/// The default area model: back-annotated cell areas + socket groups +
/// bus wiring + control path.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedAreaModel {
    /// The interconnect constants.
    pub interconnect: InterconnectModel,
}

impl AnnotatedAreaModel {
    /// Model with explicit interconnect constants.
    pub fn new(interconnect: InterconnectModel) -> Self {
        AnnotatedAreaModel { interconnect }
    }
}

impl AreaModel for AnnotatedAreaModel {
    fn fingerprint(&self) -> Option<u64> {
        Some(
            Fingerprint::new()
                .str("annotated-area")
                .u64(self.interconnect.fingerprint())
                .finish(),
        )
    }

    fn area(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        annotated_area(arch, &self.interconnect, db)
    }
}

/// The [`AnnotatedAreaModel`] fold over an arbitrary [`RecordSource`] —
/// the one float code path shared by the scratch model above and the
/// memoizing [`crate::delta::DeltaEvaluator`], so the two are
/// bit-identical by construction.
pub(crate) fn annotated_area(
    arch: &Architecture,
    interconnect: &InterconnectModel,
    src: &dyn RecordSource,
) -> f64 {
    let Some(w) = key_width(arch) else {
        return f64::INFINITY;
    };
    let mut area = 0.0;
    for fu in arch.fus() {
        area += src.record(ComponentKey::for_fu(fu.kind, w)).area;
        let Some(sock) = ComponentKey::socket_group(w, fu.kind.input_ports()) else {
            return f64::INFINITY;
        };
        area += src.record(sock).area;
    }
    for rf in arch.rfs() {
        let (Some(key), Some(sock)) = (
            ComponentKey::for_rf(rf, w),
            ComponentKey::socket_group(w, rf.nin()),
        ) else {
            return f64::INFINITY;
        };
        area += src.record(key).area;
        area += src.record(sock).area;
    }
    let control =
        f64::from(InstructionFormat::of(arch).width()) * interconnect.control_area_per_instr_bit;
    area + control + arch.bus_count() as f64 * arch.width as f64 * interconnect.bus_area_per_bit
}

/// The default timing model: slowest back-annotated component critical
/// path plus a wiring penalty per bus.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedTimingModel {
    /// The interconnect constants.
    pub interconnect: InterconnectModel,
}

impl AnnotatedTimingModel {
    /// Model with explicit interconnect constants.
    pub fn new(interconnect: InterconnectModel) -> Self {
        AnnotatedTimingModel { interconnect }
    }
}

impl TimingModel for AnnotatedTimingModel {
    fn fingerprint(&self) -> Option<u64> {
        Some(
            Fingerprint::new()
                .str("annotated-timing")
                .u64(self.interconnect.fingerprint())
                .finish(),
        )
    }

    fn clock_period(&self, arch: &Architecture, db: &ComponentDb) -> f64 {
        annotated_clock_period(arch, &self.interconnect, db)
    }
}

/// The [`AnnotatedTimingModel`] fold over an arbitrary [`RecordSource`]
/// — shared with [`crate::delta::DeltaEvaluator`] like
/// [`annotated_area`].
pub(crate) fn annotated_clock_period(
    arch: &Architecture,
    interconnect: &InterconnectModel,
    src: &dyn RecordSource,
) -> f64 {
    let Some(w) = key_width(arch) else {
        return f64::INFINITY;
    };
    let mut worst: f64 = 0.0;
    for fu in arch.fus() {
        worst = worst.max(src.record(ComponentKey::for_fu(fu.kind, w)).critical_path);
    }
    for rf in arch.rfs() {
        let Some(key) = ComponentKey::for_rf(rf, w) else {
            return f64::INFINITY;
        };
        worst = worst.max(src.record(key).critical_path);
    }
    worst + arch.bus_count() as f64 * interconnect.bus_delay_penalty
}

/// The default test-cost model: the paper's eq. (14) total.
#[derive(Debug, Clone, Copy, Default)]
pub struct Eq14TestCostModel;

impl TestCostModel for Eq14TestCostModel {
    fn fingerprint(&self) -> Option<u64> {
        Some(Fingerprint::new().str("eq14-test-cost").finish())
    }

    fn test_cost(&self, arch: &Architecture, db: &ComponentDb) -> ArchTestCost {
        architecture_test_cost(arch, db)
    }
}

/// A DfT-backed alternative test axis: every component (plus its
/// socket group) is tested through balanced scan chains instead of the
/// paper's functional transports.
///
/// Where [`Eq14TestCostModel`] prices patterns by their *transport
/// distance* over the move buses (eqs. 11–14), this model prices them
/// by *scan shifting*: the component's flip-flops and its socket state
/// are partitioned into [`ScanTestCostModel::chains`] balanced chains
/// (the partition of [`tta_dft::chains::ChainPlan`], whose lengths
/// [`ChainPlan::balanced_lengths`](tta_dft::chains::ChainPlan::balanced_lengths)
/// exposes without a netlist) and each pattern is shifted through the
/// longest one ([`multi_chain_scan_cycles`]). The trade-off surface it
/// induces differs from eq. (14)'s — scan cost is blind to the bus
/// count and port sharing that dominate the functional cost — which is
/// exactly what makes it useful as a second co-exploration axis
/// ([`crate::explore::LiftMode::Full`] + `ttadse explore --test-model
/// scan`).
///
/// LD/ST, PC and the Immediate unit stay excluded from the comparative
/// total, as in the paper's methodology, so the two models' totals
/// cover the same component set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanTestCostModel {
    /// Number of balanced scan chains per component (the paper's
    /// single-chain assumption is `chains = 1`, the default).
    pub chains: usize,
}

impl ScanTestCostModel {
    /// The single-chain model the paper's full-scan discussion assumes.
    pub fn new() -> Self {
        ScanTestCostModel { chains: 1 }
    }

    /// A model shifting through `chains` balanced chains per component
    /// (clamped to at least one).
    pub fn with_chains(chains: usize) -> Self {
        ScanTestCostModel {
            chains: chains.max(1),
        }
    }

    /// Scan cost of one component: `np` patterns through the longest of
    /// the balanced chains covering `ffs` flip-flops. The longest chain
    /// of a balanced partition ([`tta_dft::chains::ChainPlan`]) has
    /// `ffs.div_ceil(chains)` flip-flops — exactly what
    /// [`multi_chain_scan_cycles`] prices, so no per-point partition is
    /// materialised.
    fn scan_cycles(&self, np: usize, ffs: usize) -> (usize, f64) {
        (
            ffs.div_ceil(self.chains),
            multi_chain_scan_cycles(np, ffs, self.chains) as f64,
        )
    }
}

impl Default for ScanTestCostModel {
    fn default() -> Self {
        Self::new()
    }
}

impl TestCostModel for ScanTestCostModel {
    fn fingerprint(&self) -> Option<u64> {
        Some(
            Fingerprint::new()
                .str("scan-test-cost")
                .u64(self.chains as u64)
                .finish(),
        )
    }

    fn test_cost(&self, arch: &Architecture, db: &ComponentDb) -> ArchTestCost {
        let Some(w) = key_width(arch) else {
            return out_of_model();
        };
        let mut components = Vec::new();
        for fu in arch.fus() {
            let n_inputs = fu.kind.input_ports();
            let Some(sock_key) = ComponentKey::socket_group(w, n_inputs) else {
                return out_of_model();
            };
            let rec = db.get(ComponentKey::for_fu(fu.kind, w));
            let sock = db.get(sock_key);
            let np = rec.np + sock.np;
            let ffs = rec.ff_total + socket_state_bits(n_inputs);
            let (nl, cycles) = self.scan_cycles(np, ffs);
            components.push(ComponentTestCost {
                name: fu.name.clone(),
                np,
                // Patterns arrive through the chain, not the buses.
                cd: 0,
                functional_cost: cycles,
                socket_np: sock.np,
                nl,
                fts: 0.0,
                fault_coverage: rec.adjusted_coverage,
                excluded: matches!(fu.kind, FuKind::LdSt | FuKind::Pc | FuKind::Immediate),
            });
        }
        for rf in arch.rfs() {
            let (Some(key), Some(sock_key)) = (
                ComponentKey::for_rf(rf, w),
                ComponentKey::socket_group(w, rf.nin()),
            ) else {
                return out_of_model();
            };
            let rec = db.get(key);
            let sock = db.get(sock_key);
            let np = rec.np + sock.np;
            let ffs = rec.ff_total + socket_state_bits(rf.nin());
            let (nl, cycles) = self.scan_cycles(np, ffs);
            components.push(ComponentTestCost {
                name: rf.name.clone(),
                np,
                cd: 0,
                functional_cost: cycles,
                socket_np: sock.np,
                nl,
                fts: 0.0,
                fault_coverage: rec.adjusted_coverage,
                excluded: false,
            });
        }
        let total = components
            .iter()
            .filter(|c| !c.excluded)
            .map(ComponentTestCost::our_approach_cycles)
            .sum();
        ArchTestCost { components, total }
    }
}

/// Whether `arch` is inside the component model's domain — every
/// geometry fits the [`ComponentKey`] fields, so [`keys_of`] would
/// return `Some` (this is its allocation-free mirror). The sweep itself
/// does not call this — infeasibility is the models' non-finite-value
/// verdict — but space generators can use it to validate candidates
/// before enumeration.
pub fn in_model(arch: &Architecture) -> bool {
    let Some(w) = key_width(arch) else {
        return false;
    };
    arch.fus()
        .iter()
        .all(|fu| ComponentKey::socket_group(w, fu.kind.input_ports()).is_some())
        && arch.rfs().iter().all(|rf| {
            ComponentKey::for_rf(rf, w).is_some()
                && ComponentKey::socket_group(w, rf.nin()).is_some()
        })
}

/// Shared per-sweep elaboration engine behind the netlist-fidelity
/// models ([`NetlistAreaModel`] / [`NetlistTimingModel`]).
///
/// One evaluator serves both axes of one sweep: a point is elaborated to
/// a full gate-level netlist *once* (through
/// [`tta_netlist::IncrementalElaborator`], so Gray-walk neighbours reuse
/// the common component prefix) and its area / loaded-critical-path
/// figures are memoized in a bounded map keyed by the architecture's
/// structural fingerprint. The evaluator is `Sync` — a parallel sweep
/// serialises elaborations behind a mutex, which keeps the incremental
/// builder sound; results are order-independent because incremental
/// elaboration is bit-identical to from-scratch elaboration.
pub struct NetlistEvaluator {
    inner: std::sync::Mutex<NetlistEvalInner>,
}

struct NetlistEvalInner {
    elab: tta_netlist::IncrementalElaborator,
    memo: std::collections::HashMap<u64, NetlistFigures>,
    order: std::collections::VecDeque<u64>,
    elaborations: u64,
    memo_hits: u64,
}

/// Raw per-point figures extracted from one elaborated netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistFigures {
    /// Cell area of the elaborated netlist (gates + flip-flops), NAND2
    /// equivalents. Interconnect/control area is *not* included — the
    /// models add the same [`InterconnectModel`] terms as the table
    /// tier, so the two fidelities differ only in the component figures.
    pub cell_area: f64,
    /// Loaded critical path ([`tta_netlist::timing::min_clock_period`])
    /// of the elaborated netlist, normalised gate delays.
    pub critical_path: f64,
}

/// Memoized points kept per evaluator; beyond this the oldest entry is
/// evicted (FIFO). Large enough that a sweep chunk plus the lift stage
/// never thrashes.
const NETLIST_MEMO_CAP: usize = 4096;

impl NetlistEvaluator {
    /// Creates an evaluator with an empty memo.
    pub fn new() -> Self {
        NetlistEvaluator {
            inner: std::sync::Mutex::new(NetlistEvalInner {
                elab: tta_netlist::IncrementalElaborator::new(),
                memo: std::collections::HashMap::new(),
                order: std::collections::VecDeque::new(),
                elaborations: 0,
                memo_hits: 0,
            }),
        }
    }

    /// Per-point figures for `arch`, elaborating at most once per
    /// structurally distinct architecture. `None` when the architecture
    /// is invalid (the models map that to infeasibility).
    pub fn figures(&self, arch: &Architecture) -> Option<NetlistFigures> {
        let key = crate::cache::arch_fingerprint(arch);
        let mut guard = self.inner.lock().expect("netlist evaluator poisoned");
        let inner = &mut *guard;
        if let Some(&f) = inner.memo.get(&key) {
            inner.memo_hits += 1;
            return Some(f);
        }
        let nl = inner.elab.advance(arch).ok()?;
        inner.elaborations += 1;
        let figures = NetlistFigures {
            cell_area: nl.area(),
            critical_path: tta_netlist::timing::min_clock_period(&nl),
        };
        if inner.order.len() >= NETLIST_MEMO_CAP {
            if let Some(old) = inner.order.pop_front() {
                inner.memo.remove(&old);
            }
        }
        inner.memo.insert(key, figures);
        inner.order.push_back(key);
        Some(figures)
    }

    /// `(elaborations, memo hits)` so far — observability for tests and
    /// benchmarks, never part of any result.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("netlist evaluator poisoned");
        (inner.elaborations, inner.memo_hits)
    }
}

impl Default for NetlistEvaluator {
    fn default() -> Self {
        Self::new()
    }
}

/// Netlist-fidelity area model: cell area of the per-point elaborated
/// netlist plus the same interconnect/control terms as
/// [`AnnotatedAreaModel`]. Installed by the sweep when
/// `FidelityMode::Netlist` is selected; usable standalone like any
/// other [`AreaModel`].
pub struct NetlistAreaModel {
    /// The interconnect constants (control + bus wiring terms).
    pub interconnect: InterconnectModel,
    eval: std::sync::Arc<NetlistEvaluator>,
}

impl NetlistAreaModel {
    /// Model sharing `eval` (pass the same evaluator to the timing
    /// model so each point elaborates once).
    pub fn new(interconnect: InterconnectModel, eval: std::sync::Arc<NetlistEvaluator>) -> Self {
        NetlistAreaModel { interconnect, eval }
    }
}

impl AreaModel for NetlistAreaModel {
    fn fingerprint(&self) -> Option<u64> {
        Some(
            Fingerprint::new()
                .str("netlist-area")
                .u64(self.interconnect.fingerprint())
                .finish(),
        )
    }

    fn area(&self, arch: &Architecture, _db: &ComponentDb) -> f64 {
        let Some(figures) = self.eval.figures(arch) else {
            return f64::INFINITY;
        };
        let control = f64::from(InstructionFormat::of(arch).width())
            * self.interconnect.control_area_per_instr_bit;
        figures.cell_area
            + control
            + arch.bus_count() as f64 * arch.width as f64 * self.interconnect.bus_area_per_bit
    }
}

/// Netlist-fidelity timing model: fanout-loaded critical path of the
/// per-point elaborated netlist ([`tta_netlist::timing::sta`] tier)
/// plus the same per-bus wire penalty as [`AnnotatedTimingModel`].
pub struct NetlistTimingModel {
    /// The interconnect constants (bus delay term).
    pub interconnect: InterconnectModel,
    eval: std::sync::Arc<NetlistEvaluator>,
}

impl NetlistTimingModel {
    /// Model sharing `eval`; see [`NetlistAreaModel::new`].
    pub fn new(interconnect: InterconnectModel, eval: std::sync::Arc<NetlistEvaluator>) -> Self {
        NetlistTimingModel { interconnect, eval }
    }
}

impl TimingModel for NetlistTimingModel {
    fn fingerprint(&self) -> Option<u64> {
        Some(
            Fingerprint::new()
                .str("netlist-timing")
                .u64(self.interconnect.fingerprint())
                .finish(),
        )
    }

    fn clock_period(&self, arch: &Architecture, _db: &ComponentDb) -> f64 {
        let Some(figures) = self.eval.figures(arch) else {
            return f64::INFINITY;
        };
        figures.critical_path + arch.bus_count() as f64 * self.interconnect.bus_delay_penalty
    }
}

/// Every [`ComponentKey`] needed to evaluate `arch` (area, timing and
/// test cost), or `None` when the architecture is outside the component
/// model's domain (checked narrowing — see [`ComponentKey::for_rf`]).
pub fn keys_of(arch: &Architecture) -> Option<Vec<ComponentKey>> {
    let w = key_width(arch)?;
    let mut keys = Vec::new();
    for fu in arch.fus() {
        keys.push(ComponentKey::for_fu(fu.kind, w));
        keys.push(ComponentKey::socket_group(w, fu.kind.input_ports())?);
    }
    for rf in arch.rfs() {
        keys.push(ComponentKey::for_rf(rf, w)?);
        keys.push(ComponentKey::socket_group(w, rf.nin())?);
    }
    Some(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tta_arch::template::TemplateBuilder;
    use tta_arch::FuKind;

    fn arch8() -> Architecture {
        TemplateBuilder::new("m", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .build()
    }

    #[test]
    fn paper_interconnect_is_default() {
        assert_eq!(InterconnectModel::default(), InterconnectModel::paper());
    }

    #[test]
    fn interconnect_constants_shift_area_and_clock() {
        let db = ComponentDb::new();
        let arch = arch8();
        let paper_area = AnnotatedAreaModel::default().area(&arch, &db);
        let free_area = AnnotatedAreaModel::new(InterconnectModel::free()).area(&arch, &db);
        assert!(paper_area > free_area, "{paper_area} vs {free_area}");

        let paper_clk = AnnotatedTimingModel::default().clock_period(&arch, &db);
        let free_clk =
            AnnotatedTimingModel::new(InterconnectModel::free()).clock_period(&arch, &db);
        assert!(paper_clk > free_clk);
        // With free interconnect, the clock is exactly the slowest
        // component.
        let worst = arch
            .fus()
            .iter()
            .map(|fu| db.get(ComponentKey::for_fu(fu.kind, 8)).critical_path)
            .chain(
                arch.rfs()
                    .iter()
                    .map(|rf| db.get(ComponentKey::for_rf(rf, 8).unwrap()).critical_path),
            )
            .fold(0.0f64, f64::max);
        assert_eq!(free_clk, worst);
    }

    #[test]
    fn keys_of_covers_every_component() {
        let arch = arch8();
        let keys = keys_of(&arch).unwrap();
        let db = ComponentDb::new();
        db.warm(keys.iter().copied());
        // Evaluating through the models must hit only pre-warmed keys.
        let before = db.len();
        AnnotatedAreaModel::default().area(&arch, &db);
        AnnotatedTimingModel::default().clock_period(&arch, &db);
        Eq14TestCostModel.test_cost(&arch, &db);
        ScanTestCostModel::default().test_cost(&arch, &db);
        assert_eq!(db.len(), before, "models touched an unwarmed key");
    }

    fn arch8_buses(buses: usize) -> Architecture {
        TemplateBuilder::new(format!("b{buses}"), 8, buses)
            .fu(FuKind::Alu)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .build()
    }

    #[test]
    fn scan_model_is_bus_blind_where_eq14_is_not() {
        let db = ComponentDb::new();
        let narrow = arch8_buses(1);
        let wide = arch8_buses(4);
        // eq. (14) prices transports: fewer buses cost more.
        let eq14 = Eq14TestCostModel;
        assert!(eq14.test_cost(&narrow, &db).total > eq14.test_cost(&wide, &db).total);
        // The scan model shifts through chains and never sees the buses
        // — that orthogonality is what makes it a distinct test axis.
        let scan = ScanTestCostModel::new();
        assert_eq!(
            scan.test_cost(&narrow, &db).total,
            scan.test_cost(&wide, &db).total
        );
        assert!(scan.test_cost(&wide, &db).total > 0.0);
    }

    #[test]
    fn more_scan_chains_cost_fewer_cycles() {
        let db = ComponentDb::new();
        let arch = arch8();
        let one = ScanTestCostModel::new().test_cost(&arch, &db).total;
        let four = ScanTestCostModel::with_chains(4)
            .test_cost(&arch, &db)
            .total;
        assert!(four < one, "{four} !< {one}");
        // The chain count is part of the cache identity.
        assert_ne!(
            ScanTestCostModel::new().fingerprint(),
            ScanTestCostModel::with_chains(4).fingerprint()
        );
        assert_ne!(
            ScanTestCostModel::new().fingerprint(),
            Eq14TestCostModel.fingerprint(),
            "the two test models must never share cache entries"
        );
        // Zero chains clamps instead of dividing by zero.
        assert_eq!(ScanTestCostModel::with_chains(0).chains, 1);
    }

    #[test]
    fn scan_model_excludes_the_same_singletons_as_eq14() {
        let db = ComponentDb::new();
        let arch = arch8();
        let cost = ScanTestCostModel::new().test_cost(&arch, &db);
        let excluded: Vec<&str> = cost
            .components
            .iter()
            .filter(|c| c.excluded)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(excluded.len(), 3, "LD/ST, PC, IMM: {excluded:?}");
        let included: f64 = cost
            .components
            .iter()
            .filter(|c| !c.excluded)
            .map(|c| c.our_approach_cycles())
            .sum();
        assert_eq!(cost.total, included);
    }

    #[test]
    fn scan_model_rejects_out_of_model_geometries() {
        let db = ComponentDb::new();
        let bad = TemplateBuilder::new("wide", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Pc)
            .rf(70_000, 1, 2)
            .build();
        let cost = ScanTestCostModel::new().test_cost(&bad, &db);
        assert!(cost.total.is_infinite());
        assert!(cost.components.is_empty());
    }

    #[test]
    fn in_model_agrees_with_keys_of() {
        let ok = arch8();
        assert!(in_model(&ok));
        assert!(keys_of(&ok).is_some());
        let bad = TemplateBuilder::new("wide", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Pc)
            .rf(70_000, 1, 2)
            .build();
        assert!(!in_model(&bad));
        assert!(keys_of(&bad).is_none());
    }

    #[test]
    fn out_of_model_rf_is_infinite_not_truncated() {
        // An RF with 70_000 registers overflows the u16 key field; the
        // old `as` cast silently aliased it to a tiny RF. Now the area
        // is infinite (→ infeasible) instead.
        let arch = TemplateBuilder::new("wide", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Pc)
            .rf(70_000, 1, 2)
            .build();
        assert!(keys_of(&arch).is_none());
        let db = ComponentDb::new();
        assert!(AnnotatedAreaModel::default().area(&arch, &db).is_infinite());
        assert!(AnnotatedTimingModel::default()
            .clock_period(&arch, &db)
            .is_infinite());
    }

    #[test]
    fn netlist_models_share_one_elaboration_per_point() {
        let eval = std::sync::Arc::new(NetlistEvaluator::new());
        let area_m = NetlistAreaModel::new(InterconnectModel::paper(), Arc::clone(&eval));
        let clk_m = NetlistTimingModel::new(InterconnectModel::paper(), Arc::clone(&eval));
        let db = ComponentDb::new();
        let arch = arch8();
        let area = area_m.area(&arch, &db);
        let clk = clk_m.clock_period(&arch, &db);
        assert!(area.is_finite() && area > 0.0, "{area}");
        assert!(clk.is_finite() && clk > 0.0, "{clk}");
        // The second axis reused the first axis's elaboration.
        let (elaborations, hits) = eval.counters();
        assert_eq!(elaborations, 1);
        assert_eq!(hits, 1);
        // Re-querying the same point is a pure memo hit …
        assert_eq!(area_m.area(&arch, &db), area);
        assert_eq!(eval.counters().0, 1);
        // … keyed by structure, not by name.
        let mut renamed = arch.clone();
        renamed.name = "other".into();
        assert_eq!(area_m.area(&renamed, &db), area);
        assert_eq!(eval.counters().0, 1);
    }

    #[test]
    fn netlist_models_exceed_bare_cell_area_and_reject_bad_points() {
        let eval = std::sync::Arc::new(NetlistEvaluator::new());
        let arch = arch8();
        let figures = eval.figures(&arch).expect("arch8 elaborates");
        let db = ComponentDb::new();
        // Interconnect and control terms ride on top of the cell area.
        let area =
            NetlistAreaModel::new(InterconnectModel::paper(), Arc::clone(&eval)).area(&arch, &db);
        assert!(area > figures.cell_area, "{area} vs {}", figures.cell_area);
        let clk = NetlistTimingModel::new(InterconnectModel::paper(), Arc::clone(&eval))
            .clock_period(&arch, &db);
        assert!(clk > figures.critical_path);
        // A point the elaborator rejects is infeasible, not a panic.
        let bad = TemplateBuilder::new("wide", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Pc)
            .rf(70_000, 1, 2)
            .build();
        assert!(
            NetlistAreaModel::new(InterconnectModel::paper(), Arc::clone(&eval))
                .area(&bad, &db)
                .is_infinite()
        );
        assert!(NetlistTimingModel::new(InterconnectModel::paper(), eval)
            .clock_period(&bad, &db)
            .is_infinite());
    }

    #[test]
    fn netlist_model_fingerprints_are_distinct_from_table_models() {
        let eval = std::sync::Arc::new(NetlistEvaluator::new());
        let prints = [
            AnnotatedAreaModel::default().fingerprint(),
            AnnotatedTimingModel::default().fingerprint(),
            NetlistAreaModel::new(InterconnectModel::paper(), Arc::clone(&eval)).fingerprint(),
            NetlistTimingModel::new(InterconnectModel::paper(), eval).fingerprint(),
        ];
        for p in &prints {
            assert!(p.is_some(), "all four default models are cacheable");
        }
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(prints[i], prints[j], "models {i} and {j} collide");
            }
        }
    }
}
