//! Analytical model of the register file as a **multi-port memory** —
//! the implementation the paper's eq. (12) is actually derived for: "The
//! cost for the register files is derived for the case of their
//! implementation using a multi-ported memory, not a set of flip-flops.
//! For the latter case, the test cost (as well as performance and area)
//! will be different."
//!
//! The flip-flop implementation is generated structurally in
//! `tta-netlist`; this module gives the memory-macro alternative so the
//! two can be compared (area, delay, test) along the paper's RF sizes.

use tta_dft::march::MarchAlgorithm;

/// Geometry of a multi-port register-file macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RfMemSpec {
    /// Word count.
    pub regs: usize,
    /// Word width in bits.
    pub width: usize,
    /// Write ports.
    pub nin: usize,
    /// Read ports.
    pub nout: usize,
}

/// Base area of a single-port storage cell, NAND2 equivalents (a 6T SRAM
/// cell is roughly half a NAND2).
const CELL_BASE_AREA: f64 = 0.55;

/// Area growth per additional port: each port adds an access transistor
/// pair and a word/bit-line, ≈ 35 % of the base cell.
const CELL_PORT_FACTOR: f64 = 0.35;

/// Peripheral overhead per port: decoder, word-line driver, sense
/// amp/write driver per bit-slice, NAND2 equivalents.
const PERIPHERY_PER_PORT_BIT: f64 = 0.8;

impl RfMemSpec {
    /// Macro area in NAND2 equivalents.
    pub fn area(&self) -> f64 {
        let ports = (self.nin + self.nout) as f64;
        let cell = CELL_BASE_AREA * (1.0 + CELL_PORT_FACTOR * (ports - 1.0));
        let core = cell * self.regs as f64 * self.width as f64;
        let periphery = PERIPHERY_PER_PORT_BIT * ports * self.width as f64
            + 2.0 * ports * (self.regs as f64).log2().max(1.0);
        core + periphery
    }

    /// Access delay in normalised gate delays (decoder depth + bit-line
    /// settle, growing with both word count and port loading).
    pub fn access_delay(&self) -> f64 {
        let decode = (self.regs as f64).log2().max(1.0) * 1.1;
        let bitline = 2.0 + 0.05 * self.regs as f64;
        let port_load = 0.2 * (self.nin + self.nout) as f64;
        decode + bitline + port_load
    }

    /// March pattern count `np` for eq. (12) — identical to the flip-flop
    /// implementation's march (the algorithm sees words, not cells).
    pub fn march_patterns(&self, algorithm: &MarchAlgorithm) -> usize {
        algorithm.pattern_count(self.regs)
    }

    /// The memory macro cannot be full-scanned — the paper's reason the
    /// functional march approach is mandatory here.
    pub fn full_scannable(&self) -> bool {
        false
    }
}

/// Comparison of the two RF implementations at one geometry.
#[derive(Debug, Clone)]
pub struct RfImplementationComparison {
    /// The geometry compared.
    pub spec: RfMemSpec,
    /// Memory-macro area (this module's model).
    pub memory_area: f64,
    /// Flip-flop implementation area (generated netlist).
    pub flipflop_area: f64,
    /// Flip-flop implementation area after scan insertion.
    pub flipflop_scan_area: f64,
}

impl RfImplementationComparison {
    /// Builds the comparison by generating the structural netlist.
    pub fn new(spec: RfMemSpec) -> Self {
        let comp =
            tta_netlist::components::register_file(spec.width, spec.regs, spec.nin, spec.nout);
        let scanned = tta_dft::scan::insert_scan(&comp.netlist);
        RfImplementationComparison {
            spec,
            memory_area: spec.area(),
            flipflop_area: comp.area(),
            flipflop_scan_area: comp.area() + scanned.area_overhead(),
        }
    }

    /// The paper's claim: the flip-flop implementation with DfT scan
    /// costs considerably more area than the memory macro.
    pub fn memory_wins(&self) -> bool {
        self.memory_area < self.flipflop_scan_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_grows_with_every_dimension() {
        let base = RfMemSpec {
            regs: 8,
            width: 16,
            nin: 1,
            nout: 2,
        };
        let more_regs = RfMemSpec { regs: 12, ..base };
        let wider = RfMemSpec { width: 32, ..base };
        let more_ports = RfMemSpec {
            nin: 2,
            nout: 3,
            ..base
        };
        assert!(more_regs.area() > base.area());
        assert!(wider.area() > base.area());
        assert!(more_ports.area() > base.area());
    }

    #[test]
    fn memory_beats_scanned_flipflops_at_paper_sizes() {
        // RF1 (8x16) and RF2 (12x16) of Figure 9.
        for (regs, nin, nout) in [(8usize, 1usize, 2usize), (12, 1, 2)] {
            let cmp = RfImplementationComparison::new(RfMemSpec {
                regs,
                width: 16,
                nin,
                nout,
            });
            assert!(
                cmp.memory_wins(),
                "{regs} regs: macro {:.0} vs scanned FF {:.0}",
                cmp.memory_area,
                cmp.flipflop_scan_area
            );
        }
    }

    #[test]
    fn march_np_matches_flipflop_model() {
        let spec = RfMemSpec {
            regs: 8,
            width: 16,
            nin: 1,
            nout: 2,
        };
        let alg = MarchAlgorithm::march_cminus();
        assert_eq!(spec.march_patterns(&alg), 80);
        assert!(!spec.full_scannable());
    }

    #[test]
    fn access_delay_grows_with_size() {
        let small = RfMemSpec {
            regs: 8,
            width: 16,
            nin: 1,
            nout: 2,
        };
        let big = RfMemSpec {
            regs: 64,
            width: 16,
            nin: 1,
            nout: 2,
        };
        assert!(big.access_delay() > small.access_delay());
    }
}
