//! The design-space exploration driver: MOVE-style area/time sweep,
//! Pareto reduction, test-cost lifting and weighted-norm selection —
//! Sections 2–4 of the paper end to end.

use tta_arch::template::TemplateSpace;
use tta_arch::{Architecture, FuKind, InstructionFormat};
use tta_movec::schedule::Scheduler;
use tta_workloads::Workload;

use crate::backannotate::{ComponentDb, ComponentKey};
use crate::norm::{select, Norm, Weights};
use crate::pareto::pareto_front;
use crate::testcost::{architecture_test_cost, ArchTestCost};

/// Wiring/driver area charged per move bus, in NAND2 equivalents per
/// data-path bit (buses are long wires with repeaters and per-socket
/// drivers; a coarse but monotone model).
const BUS_AREA_PER_BIT: f64 = 4.0;

/// Clock-period penalty per additional bus (longer wires), in normalised
/// gate delays.
const BUS_DELAY_PENALTY: f64 = 0.2;

/// Control-path area charged per instruction bit (instruction register +
/// decode drivers), NAND2 equivalents. The paper's "control signals and
/// bits … adjoined to the data-bus" made explicit.
const CONTROL_AREA_PER_INSTR_BIT: f64 = 6.0;

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The template space to enumerate.
    pub space: TemplateSpace,
}

impl ExploreConfig {
    /// The paper's space: 16-bit machines, 1–4 buses, varying FU/RF mixes
    /// (144 points). Used by the figure/table benches.
    pub fn paper() -> Self {
        ExploreConfig {
            space: TemplateSpace::paper_default(),
        }
    }

    /// A reduced 8-bit space that keeps every effect visible but
    /// back-annotates in seconds — used by tests and examples.
    pub fn fast() -> Self {
        ExploreConfig {
            space: TemplateSpace {
                width: 8,
                buses: vec![1, 2, 3],
                alus: vec![1, 2],
                cmps: vec![1],
                muls: vec![0],
                imms: vec![1],
                rf_sets: vec![vec![(8, 1, 2)], vec![(4, 1, 1)]],
            },
        }
    }
}

/// One fully evaluated architecture (a point of Figures 2 and 8).
#[derive(Debug, Clone)]
pub struct EvaluatedArch {
    /// The architecture itself.
    pub architecture: Architecture,
    /// Cell + interconnect area, NAND2 gate equivalents.
    pub area: f64,
    /// Full-application cycle count.
    pub cycles: u64,
    /// Execution time = cycles × clock period (normalised gate delays).
    pub exec_time: f64,
    /// eq. (14) test cost (populated for 2-D Pareto points only; `None`
    /// elsewhere — the paper evaluates test cost on the Pareto set).
    pub test_cost: Option<f64>,
    /// Register-pressure overflow events in the schedule.
    pub spills: u32,
}

impl EvaluatedArch {
    /// The 3-D coordinate (area, exec time, test cost).
    ///
    /// # Panics
    ///
    /// Panics if the test cost was not evaluated for this point.
    pub fn point3d(&self) -> Vec<f64> {
        vec![
            self.area,
            self.exec_time,
            self.test_cost.expect("test cost evaluated on Pareto points"),
        ]
    }
}

/// Result of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Every feasible evaluated point.
    pub evaluated: Vec<EvaluatedArch>,
    /// Indices (into `evaluated`) of the 2-D (area, time) Pareto front —
    /// Figure 2.
    pub pareto2d: Vec<usize>,
    /// Architectures enumerated but infeasible for the workload.
    pub infeasible: usize,
}

impl ExploreResult {
    /// The 2-D Pareto points in (area, exec-time) order.
    pub fn pareto2d_points(&self) -> Vec<&EvaluatedArch> {
        self.pareto2d.iter().map(|&i| &self.evaluated[i]).collect()
    }

    /// The 3-D points of Figure 8 (test axis on the 2-D front).
    pub fn pareto3d_points(&self) -> Vec<&EvaluatedArch> {
        self.pareto2d_points()
    }

    /// Selects the Figure 9 architecture: minimal weighted norm over the
    /// 3-D points.
    pub fn select(&self, weights: &Weights, norm: Norm) -> &EvaluatedArch {
        let pts: Vec<Vec<f64>> = self.pareto2d_points().iter().map(|e| e.point3d()).collect();
        let local = select(&pts, weights, norm);
        self.pareto2d_points()[local]
    }

    /// The paper's setting: equal weights, Euclidean norm.
    pub fn select_equal_weights(&self) -> &EvaluatedArch {
        self.select(&Weights::equal(3), Norm::Euclidean)
    }

    /// Projection property (Figure 8 caption): the 3-D points projected
    /// onto (area, time) are exactly the Figure 2 front.
    pub fn projection_holds(&self) -> bool {
        let pts2d: Vec<Vec<f64>> = self
            .pareto2d_points()
            .iter()
            .map(|e| vec![e.area, e.exec_time])
            .collect();
        pareto_front(&pts2d).len() == pts2d.len()
    }
}

/// The exploration engine; owns the back-annotation database so repeated
/// runs (different workloads, different weights) share component records.
#[derive(Debug)]
pub struct Explorer {
    config: ExploreConfig,
    db: ComponentDb,
}

impl Explorer {
    /// Creates an explorer.
    pub fn new(config: ExploreConfig) -> Self {
        Explorer {
            config,
            db: ComponentDb::new(),
        }
    }

    /// Creates an explorer around an existing database.
    pub fn with_db(config: ExploreConfig, db: ComponentDb) -> Self {
        Explorer { config, db }
    }

    /// Access to the back-annotation database.
    pub fn db_mut(&mut self) -> &mut ComponentDb {
        &mut self.db
    }

    /// Area of one architecture: back-annotated component areas + socket
    /// groups + bus wiring.
    pub fn architecture_area(&mut self, arch: &Architecture) -> f64 {
        let w = arch.width as u16;
        let mut area = 0.0;
        for fu in arch.fus() {
            let key = match fu.kind {
                FuKind::Alu => ComponentKey::Alu(w),
                FuKind::Cmp => ComponentKey::Cmp(w),
                FuKind::Mul => ComponentKey::Mul(w),
                FuKind::LdSt => ComponentKey::LdSt(w),
                FuKind::Pc => ComponentKey::Pc(w),
                FuKind::Immediate => ComponentKey::Imm(w),
            };
            area += self.db.get(key).area;
            area += self
                .db
                .get(ComponentKey::SocketGroup(w, fu.kind.input_ports() as u8))
                .area;
        }
        for rf in arch.rfs() {
            area += self
                .db
                .get(ComponentKey::Rf(w, rf.regs as u16, rf.nin() as u8, rf.nout() as u8))
                .area;
            area += self
                .db
                .get(ComponentKey::SocketGroup(w, rf.nin() as u8))
                .area;
        }
        let control = f64::from(InstructionFormat::of(arch).width()) * CONTROL_AREA_PER_INSTR_BIT;
        area + control + arch.bus_count() as f64 * arch.width as f64 * BUS_AREA_PER_BIT
    }

    /// Clock period of one architecture: slowest component plus a wiring
    /// penalty per bus.
    pub fn clock_period(&mut self, arch: &Architecture) -> f64 {
        let w = arch.width as u16;
        let mut worst: f64 = 0.0;
        for fu in arch.fus() {
            let key = match fu.kind {
                FuKind::Alu => ComponentKey::Alu(w),
                FuKind::Cmp => ComponentKey::Cmp(w),
                FuKind::Mul => ComponentKey::Mul(w),
                FuKind::LdSt => ComponentKey::LdSt(w),
                FuKind::Pc => ComponentKey::Pc(w),
                FuKind::Immediate => ComponentKey::Imm(w),
            };
            worst = worst.max(self.db.get(key).critical_path);
        }
        for rf in arch.rfs() {
            let key = ComponentKey::Rf(w, rf.regs as u16, rf.nin() as u8, rf.nout() as u8);
            worst = worst.max(self.db.get(key).critical_path);
        }
        worst + arch.bus_count() as f64 * BUS_DELAY_PENALTY
    }

    /// Evaluates one architecture on `workload` (area + throughput only).
    pub fn evaluate(&mut self, arch: &Architecture, workload: &Workload) -> Option<EvaluatedArch> {
        let schedule = Scheduler::new(arch).run(&workload.dfg).ok()?;
        let cycles = workload.application_cycles(schedule.cycles);
        let clock = self.clock_period(arch);
        Some(EvaluatedArch {
            area: self.architecture_area(arch),
            exec_time: cycles as f64 * clock,
            cycles,
            test_cost: None,
            spills: schedule.spills,
            architecture: arch.clone(),
        })
    }

    /// Full test cost of one architecture (eq. 14).
    pub fn test_cost(&mut self, arch: &Architecture) -> ArchTestCost {
        architecture_test_cost(arch, &mut self.db)
    }

    /// Runs the complete flow on one workload: sweep → 2-D Pareto →
    /// test-cost lifting of the Pareto points.
    pub fn run(&mut self, workload: &Workload) -> ExploreResult {
        let archs = self.config.space.enumerate();
        let mut evaluated = Vec::new();
        let mut infeasible = 0;
        for arch in &archs {
            match self.evaluate(arch, workload) {
                Some(e) => evaluated.push(e),
                None => infeasible += 1,
            }
        }
        let pts2d: Vec<Vec<f64>> = evaluated
            .iter()
            .map(|e| vec![e.area, e.exec_time])
            .collect();
        let pareto2d = pareto_front(&pts2d);
        // "only the architectures that correspond to the Pareto points in
        // the design space are evaluated in terms of testing".
        for &i in &pareto2d {
            let cost = architecture_test_cost(&evaluated[i].architecture, &mut self.db);
            evaluated[i].test_cost = Some(cost.total);
        }
        ExploreResult {
            evaluated,
            pareto2d,
            infeasible,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_workloads::suite;

    #[test]
    fn fast_exploration_produces_a_front() {
        let mut explorer = Explorer::new(ExploreConfig::fast());
        let result = explorer.run(&suite::crypt(1));
        assert!(result.evaluated.len() >= 6, "{}", result.evaluated.len());
        assert!(!result.pareto2d.is_empty());
        assert!(result.projection_holds());
        // Test cost present exactly on the front.
        for (i, e) in result.evaluated.iter().enumerate() {
            assert_eq!(e.test_cost.is_some(), result.pareto2d.contains(&i));
        }
        let best = result.select_equal_weights();
        assert!(best.test_cost.is_some());
    }

    #[test]
    fn area_grows_with_units() {
        let mut explorer = Explorer::new(ExploreConfig::fast());
        use tta_arch::template::TemplateBuilder;
        let small = TemplateBuilder::new("s", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .build();
        let big = TemplateBuilder::new("b", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Alu)
            .fu(FuKind::Cmp)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .rf(8, 1, 2)
            .build();
        assert!(explorer.architecture_area(&big) > explorer.architecture_area(&small));
    }
}
