//! The design-space exploration pipeline: MOVE-style area/time sweep,
//! Pareto reduction, test-cost lifting and weighted-norm selection —
//! Sections 2–4 of the paper end to end.
//!
//! The entry point is the [`Exploration`] builder:
//!
//! ```no_run
//! use tta_arch::template::TemplateSpace;
//! use tta_core::explore::Exploration;
//! use tta_workloads::suite;
//!
//! let result = Exploration::over(TemplateSpace::fast_default())
//!     .workload(&suite::crypt(1))
//!     .parallel(true)
//!     .run();
//! let best = result.select_equal_weights();
//! println!("selected: {}", best.architecture);
//! ```
//!
//! Cost axes are pluggable via the [`crate::models`] traits; the sweep
//! runs serially or in parallel over a pre-warmed, read-mostly
//! [`ComponentDb`], and parallel runs are bit-identical to serial ones.
//! Attach a [`SweepCache`] ([`Exploration::cache`]) and re-runs skip
//! every already-evaluated point, bit-identically.
//!
//! *Which* points get evaluated is equally pluggable
//! ([`crate::search`]): the default [`Exhaustive`] strategy sweeps the
//! whole space exactly like the classic engine, while
//! [`Exploration::strategy`] + [`Exploration::budget`] +
//! [`Exploration::seed`] run budgeted random or front-guided searches
//! over spaces too large to enumerate — evaluations stream through a
//! [`ParetoArchive`] instead of a full-set re-scan, and
//! [`ExploreResult::search`] records how the space was searched.
//!
//! # Migration from the old `Explorer`
//!
//! PR 1 replaced the monolithic `Explorer`/`ExploreConfig` driver with
//! this builder; the shim is gone. The replacements below are
//! compile-checked (they run as doc-tests on the tiny space).
//!
//! `Explorer::new(ExploreConfig::fast()).run(&w)` became the builder
//! chain, `ExploreConfig::paper()/fast()` became
//! [`TemplateSpace::paper_default`]/[`TemplateSpace::fast_default`],
//! the serial-only sweep grew [`Exploration::parallel`] (bit-identical;
//! [`Exploration::threads`] pins workers), and results moved from bare
//! `(area, exec_time, Option<test_cost>)` fields to accessors plus a
//! typed [`ObjectiveVector`]:
//!
//! ```
//! use tta_arch::template::TemplateSpace;
//! use tta_core::explore::{Exploration, Objective};
//! use tta_workloads::suite;
//!
//! let w = suite::crypt(1);
//! let result = Exploration::over(TemplateSpace::tiny())
//!     .workload(&w)
//!     .parallel(true) // bit-identical to the serial sweep
//!     .threads(2)
//!     .run();
//!
//! // `result.pareto2d` / `pareto2d_points()` / `pareto3d_points()`
//! // became `result.pareto` / `pareto_points()` / `pareto_vectors()`:
//! assert!(!result.pareto.is_empty());
//! let e = result.pareto_points()[0];
//!
//! // `EvaluatedArch { area, exec_time, test_cost }` fields became
//! // accessors over the typed objective vector:
//! assert!(e.area() > 0.0 && e.exec_time() > 0.0);
//! assert_eq!(e.test_cost(), e.objectives.get(Objective::TestCost));
//!
//! // `point3d()` (which panicked off-front) became a total projection:
//! let p = e.objectives.project(&[Objective::Area, Objective::TestCost]);
//! assert_eq!(p.unwrap().values().len(), 2);
//! ```
//!
//! `Explorer::architecture_area`/`clock_period` became the
//! [`crate::models`] traits, the magic interconnect constants became an
//! explicit [`InterconnectModel`], and `ComponentDb::get(&mut self)`
//! became interior-mutable `get(&self)` (shareable across threads,
//! [`ComponentDb::warm`] pre-annotates):
//!
//! ```
//! use tta_arch::Architecture;
//! use tta_core::models::{
//!     AnnotatedAreaModel, AnnotatedTimingModel, AreaModel, InterconnectModel, TimingModel,
//! };
//! use tta_core::ComponentDb;
//!
//! let db = ComponentDb::new(); // note: not `mut`
//! let arch = Architecture::figure9();
//! let area = AnnotatedAreaModel::default().area(&arch, &db);
//! let clock = AnnotatedTimingModel::default().clock_period(&arch, &db);
//! assert!(area > 0.0 && clock > 0.0);
//!
//! // The paper's constants, explicit and swappable:
//! let ic = InterconnectModel { bus_area_per_bit: 6.0, ..InterconnectModel::paper() };
//! let wider = AnnotatedAreaModel::new(ic).area(&arch, &db);
//! assert!(wider > area);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tta_arch::template::TemplateSpace;
use tta_arch::Architecture;
use tta_movec::schedule::Scheduler;
use tta_workloads::{WeightedWorkload, Workload};

use crate::backannotate::ComponentDb;
use crate::cache::{
    arch_fingerprint, workload_fingerprint, EvalEntry, Fingerprint, SweepCache,
    CACHE_ADDRESS_VERSION,
};
use crate::delta::{
    CarriedFolds, DeltaAreaModel, DeltaEvaluator, DeltaStats, DeltaTestCostModel, DeltaTimingModel,
    PointCosts,
};
use crate::models::{
    keys_of, AnnotatedAreaModel, AnnotatedTimingModel, AreaModel, Eq14TestCostModel,
    InterconnectModel, NetlistAreaModel, NetlistEvaluator, NetlistTimingModel, TestCostModel,
    TimingModel,
};
use crate::norm::{select, Norm, Weights};
use crate::parallel::{default_threads, par_map};
use crate::pareto::{pareto_front, ParetoArchive};
use crate::search::{
    Exhaustive, Observation, SearchCheckpoint, SearchState, SearchStrategy, WalkOrder,
};

// ---------------------------------------------------------------------
// Objectives
// ---------------------------------------------------------------------

/// One axis of the exploration's objective space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Silicon area, NAND2 gate equivalents (minimise).
    Area,
    /// Full-application execution time, normalised gate delays
    /// (minimise).
    ExecTime,
    /// eq. (14) functional test cost, cycles (minimise).
    TestCost,
}

impl Objective {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Objective::Area => "area",
            Objective::ExecTime => "exec_time",
            Objective::TestCost => "test_cost",
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed point in objective space: named axes with their values, in a
/// fixed order. Replaces the old `(area, exec_time, Option<test_cost>)`
/// side-channel — an axis is either present (with a value) or absent,
/// and lookups never panic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObjectiveVector {
    axes: Vec<Objective>,
    values: Vec<f64>,
}

impl ObjectiveVector {
    /// Builds a vector from `(axis, value)` pairs.
    pub fn new(pairs: impl IntoIterator<Item = (Objective, f64)>) -> Self {
        let mut v = ObjectiveVector::default();
        for (axis, value) in pairs {
            v.push(axis, value);
        }
        v
    }

    /// Appends an axis. Panics if the axis is already present (each axis
    /// appears at most once).
    pub fn push(&mut self, axis: Objective, value: f64) {
        assert!(
            !self.axes.contains(&axis),
            "objective axis {axis} already present"
        );
        self.axes.push(axis);
        self.values.push(value);
    }

    /// The value on `axis`, or `None` when the axis is absent.
    pub fn get(&self, axis: Objective) -> Option<f64> {
        self.axes
            .iter()
            .position(|&a| a == axis)
            .map(|i| self.values[i])
    }

    /// The axes, in storage order.
    pub fn axes(&self) -> &[Objective] {
        &self.axes
    }

    /// The raw values, in axis order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of axes.
    pub fn len(&self) -> usize {
        self.axes.len()
    }

    /// Whether no axis is present.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// The sub-vector over `axes`, or `None` if any axis is absent.
    pub fn project(&self, axes: &[Objective]) -> Option<ObjectiveVector> {
        let values: Option<Vec<f64>> = axes.iter().map(|&a| self.get(a)).collect();
        Some(ObjectiveVector {
            axes: axes.to_vec(),
            values: values?,
        })
    }
}

// ---------------------------------------------------------------------
// Evaluated points and results
// ---------------------------------------------------------------------

/// One fully evaluated architecture (a point of Figures 2 and 8).
#[derive(Debug, Clone)]
pub struct EvaluatedArch {
    /// The architecture itself.
    pub architecture: Architecture,
    /// Aggregate (unweighted) full-application cycle count over the
    /// workload suite.
    pub cycles: u64,
    /// Per-workload cycle counts, in [`ExploreResult::workloads`] order.
    pub workload_cycles: Vec<u64>,
    /// Weight-scaled aggregate cycles `Σ wᵢ·cyclesᵢ` — the quantity the
    /// exec-time axis is built from. Equals `cycles as f64` when every
    /// suite member has weight 1.
    pub weighted_cycles: f64,
    /// Register-pressure overflow events summed over the schedules.
    pub spills: u32,
    /// The typed objective coordinates: `[Area, ExecTime]` for every
    /// point, plus `TestCost` once the point is lifted onto the front.
    pub objectives: ObjectiveVector,
}

impl EvaluatedArch {
    /// Cell + interconnect area, NAND2 gate equivalents.
    pub fn area(&self) -> f64 {
        self.objectives
            .get(Objective::Area)
            .expect("every evaluated point has an area axis")
    }

    /// Execution time = cycles × clock period (normalised gate delays).
    pub fn exec_time(&self) -> f64 {
        self.objectives
            .get(Objective::ExecTime)
            .expect("every evaluated point has an exec-time axis")
    }

    /// The test-cost axis. Under [`LiftMode::ParetoOnly`] it is present
    /// exactly for Pareto points (the paper evaluates test cost on the
    /// Pareto set only); under [`LiftMode::Full`] every evaluated point
    /// carries it.
    pub fn test_cost(&self) -> Option<f64> {
        self.objectives.get(Objective::TestCost)
    }

    /// The 3-D coordinate (area, exec time, test cost), or `None` when
    /// the test axis has not been lifted for this point.
    #[deprecated(since = "0.1.0", note = "use `objectives` / `test_cost()` instead")]
    pub fn point3d(&self) -> Option<Vec<f64>> {
        self.objectives
            .project(&[Objective::Area, Objective::ExecTime, Objective::TestCost])
            .map(|v| v.values().to_vec())
    }
}

/// When (and for which points) the test axis joins the objective
/// space.
///
/// The paper lifts test cost *after* Pareto reduction: "only the
/// architectures that correspond to the Pareto points in the design
/// space are evaluated in terms of testing". That is cheap — the front
/// is small — but it can *miss* true 3-D trade-offs: a point dominated
/// in (area, time) whose test cost undercuts all of its dominators is
/// Pareto-optimal in 3-D, yet the post-hoc lift never sees it.
/// [`LiftMode::Full`] promotes the test axis to a first-class sweep
/// objective instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LiftMode {
    /// The paper's flow (the default): sweep on (area, time), reduce to
    /// the 2-D front, then lift only the front points with the test
    /// axis. Bit-identical — results and cache entries — to the
    /// pre-lift-mode engine.
    #[default]
    ParetoOnly,
    /// Full 3-D co-exploration: every feasible point is costed on the
    /// test axis during evaluation, the streaming front is maintained
    /// in (area, time, test), and per-point test totals are persisted
    /// inline in the sweep cache (format v3).
    Full,
}

impl LiftMode {
    /// Short machine-readable label (`pareto` / `full`), used by CLI
    /// flags and structured output.
    pub fn label(self) -> &'static str {
        match self {
            LiftMode::ParetoOnly => "pareto",
            LiftMode::Full => "full",
        }
    }
}

impl std::fmt::Display for LiftMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a point's cycle counts come from.
///
/// The default, [`CycleSource::Model`], is the scheduler's analytic
/// count — bit-identical (objectives, front, cache addresses) to the
/// engine before this knob existed. [`CycleSource::Simulate`] lowers
/// every scheduled workload to an executable move program and runs it
/// on the `tta_sim` interpreter, using the *executed* cycle count
/// instead. The two agree exactly when the analytic model is honest
/// (the repo's headline property test), so `Simulate` is the
/// slow-but-falsifiable cross-check: any scheduler/model drift shows
/// up as a changed objective. Simulated sweeps fold the source into
/// the sweep-cache content address, so the two kinds of entries never
/// mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CycleSource {
    /// Analytic cycle counts from the movec scheduler (the default).
    #[default]
    Model,
    /// Executed cycle counts from cycle-accurate simulation.
    Simulate,
}

impl CycleSource {
    /// Short machine-readable label (`model` / `simulate`), used by
    /// CLI flags and structured output.
    pub fn label(self) -> &'static str {
        match self {
            CycleSource::Model => "model",
            CycleSource::Simulate => "simulate",
        }
    }
}

impl std::fmt::Display for CycleSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the *default* cost models evaluate a point.
///
/// [`EvalMode::Delta`] (the default) routes the three default models
/// through one shared [`crate::delta::DeltaEvaluator`]: per-component
/// records are memoized in a flat arena keyed by
/// [`crate::ComponentKey`], so a point re-costs only the components the
/// previous points have not already touched. Results are
/// **bit-identical** to [`EvalMode::Scratch`] — same objectives, same
/// front, same cache addresses (the delta wrappers fingerprint as the
/// scratch models they stand in for) — because both modes run the same
/// fold code over the same records; only the record-fetch path differs.
///
/// Custom models installed via [`Exploration::models`] and friends are
/// never wrapped: the mode only governs the defaults, so a custom
/// model's semantics (and its cache identity) are exactly what its
/// author wrote in either mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalMode {
    /// Every point evaluated from scratch against the [`ComponentDb`].
    Scratch,
    /// Per-component memoization through the delta evaluator (default).
    #[default]
    Delta,
}

impl EvalMode {
    /// Short machine-readable label (`scratch` / `delta`), used by CLI
    /// flags and structured output.
    pub fn label(self) -> &'static str {
        match self {
            EvalMode::Scratch => "scratch",
            EvalMode::Delta => "delta",
        }
    }
}

impl std::fmt::Display for EvalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where the area and clock axes of a point come from.
///
/// The default, [`FidelityMode::Table`], is the paper's back-annotation
/// flow: per-*component* records from the [`ComponentDb`], folded with
/// the analytic interconnect terms — bit-identical (objectives, front,
/// cache addresses) to the engine before this knob existed.
/// [`FidelityMode::Netlist`] elaborates every visited point to a full
/// gate-level netlist ([`tta_netlist::elaborate()`]) — every FU and RF
/// behind its socket group, buses as OR-merge fabric — and sources the
/// area axis from the elaborated cell area and the clock axis from the
/// fanout-loaded static timing analysis ([`tta_netlist::timing::sta`]
/// tier). Netlist sweeps see structure the table fold cannot: shared
/// socket fronts, bus fanout load, per-point wiring. They are slower per
/// point; consecutive Gray-walk neighbours amortise this through
/// incremental re-elaboration
/// ([`tta_netlist::IncrementalElaborator`]), the netlist-level mirror of
/// the table tier's `CarriedFolds`.
///
/// The knob only fills *empty* area/timing model slots: custom models
/// installed via [`Exploration::models`] and friends always win. The
/// test axis keeps its configured model in both fidelities. Netlist
/// models fingerprint differently from table ones, so the persistent
/// sweep cache never mixes entries across fidelities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FidelityMode {
    /// Back-annotated per-component records (the default).
    #[default]
    Table,
    /// Per-point gate-level netlist elaboration.
    Netlist,
}

impl FidelityMode {
    /// Short machine-readable label (`table` / `netlist`), used by CLI
    /// flags and structured output.
    pub fn label(self) -> &'static str {
        match self {
            FidelityMode::Table => "table",
            FidelityMode::Netlist => "netlist",
        }
    }
}

impl std::fmt::Display for FidelityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened to the persistent sweep cache during a run — recorded
/// on every [`ExploreResult`] so a sweep that silently lost its
/// persistence (read-only directory, full disk) is distinguishable
/// from one that saved it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheStatus {
    /// No cache was attached ([`Exploration::cache`] never called).
    NotAttached,
    /// A cache was attached but bypassed: every installed cost model
    /// declined to fingerprint itself, so no entry could be
    /// content-addressed. Always safe — just no persistence.
    Bypassed,
    /// The cache was consulted and every flush succeeded.
    Flushed,
    /// At least one flush failed (the payload is the first error). The
    /// sweep results are complete and correct — evaluation never
    /// depends on persistence — but some or all fresh entries were not
    /// written back, so the next run will re-evaluate them.
    FlushFailed(String),
}

/// Cooperative cancellation handle for a running exploration.
///
/// Clone the token, hand one copy to [`Exploration::cancel_token`] and
/// keep the other; calling [`CancelToken::cancel`] (from any thread)
/// makes the sweep stop at its next cancellation point — between
/// evaluation chunks, or before the next strategy round — rather than
/// running its in-flight batch to completion. A cancelled run still
/// returns a complete, internally consistent [`ExploreResult`] over
/// whatever it evaluated, with [`ExploreResult::cancelled`] set and a
/// [`SearchCheckpoint`] a later run can resume from
/// ([`Exploration::resume_search`]).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken(Arc::new(AtomicBool::new(false)))
    }

    /// Requests cancellation. Idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The boxed observer callback installed via [`Exploration::progress`].
type ProgressObserver<'db> = Box<dyn FnMut(&SweepProgress) + 'db>;

/// A live snapshot of a running sweep, delivered to the observer
/// installed via [`Exploration::progress`] after every evaluated chunk.
///
/// Everything here is observability: the callback can stream it to a
/// client, log it, or use it to decide to [`CancelToken::cancel`] —
/// none of it feeds back into evaluation, so installing an observer
/// never changes a single result bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepProgress {
    /// Strategy rounds started so far.
    pub round: usize,
    /// Points evaluated so far (feasible + infeasible).
    pub visited: usize,
    /// Feasible points so far.
    pub feasible: usize,
    /// Infeasible points so far.
    pub infeasible: usize,
    /// Current size of the streaming Pareto front.
    pub front: usize,
    /// Total number of points in the template space.
    pub space_len: usize,
    /// Incremental-engine counters at this instant (`Some` under
    /// [`EvalMode::Delta`]); see [`ExploreResult::delta`].
    pub delta: Option<DeltaStats>,
}

/// Failure modes of [`Exploration::try_run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreError {
    /// The builder was run without any workload.
    EmptyWorkloads,
    /// A suite member carries a weight that is not finite and positive;
    /// the payload is its index in the suite.
    InvalidWeight(usize),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::EmptyWorkloads => {
                f.write_str("Exploration::run needs at least one workload (use .workload(..))")
            }
            ExploreError::InvalidWeight(i) => write!(
                f,
                "workload #{i} has a non-finite or non-positive weight \
                 (weights must be finite and > 0)"
            ),
        }
    }
}

impl std::error::Error for ExploreError {}

/// How a sweep searched its space — recorded on every
/// [`ExploreResult`], and surfaced by the CLI's JSON/CSV output so a
/// sampled front is never mistaken for an exhaustive one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchInfo {
    /// The strategy's [`SearchStrategy::name`].
    pub strategy: String,
    /// The configured evaluation budget (`None` = unlimited).
    pub budget: Option<usize>,
    /// The configured RNG seed (`None` = the default, 0).
    pub seed: Option<u64>,
    /// Total number of points in the template space.
    pub space_len: usize,
    /// Points actually visited (feasible + infeasible).
    pub evaluations: usize,
    /// Strategy batches evaluated.
    pub rounds: usize,
}

impl SearchInfo {
    /// Whether every point of the space was visited.
    pub fn exhausted_space(&self) -> bool {
        self.evaluations == self.space_len
    }
}

/// Result of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Every feasible evaluated point, in evaluation order (enumeration
    /// order for the default [`Exhaustive`] strategy).
    pub evaluated: Vec<EvaluatedArch>,
    /// Indices (into `evaluated`) of the Pareto front.
    ///
    /// Under [`LiftMode::ParetoOnly`] the front is computed on the 2-D
    /// (area, time) sweep axes — Figure 2 — and its members are then
    /// lifted with the test axis — Figure 8. Lifting preserves
    /// non-domination, so these are also exactly the N-dimensional
    /// Pareto points of the lifted vectors. Under [`LiftMode::Full`]
    /// this is the true 3-D (area, time, test) front, which contains
    /// every design-front point plus any trade-off the post-hoc lift
    /// misses (see [`ExploreResult::design_front`]).
    pub pareto: Vec<usize>,
    /// Architectures visited but infeasible for the workload suite
    /// (unschedulable, or outside the component model's domain).
    pub infeasible: usize,
    /// Names of the workloads the sweep aggregated over.
    pub workloads: Vec<String>,
    /// Aggregation weight of each workload, in [`ExploreResult::workloads`]
    /// order (all 1 unless a weighted suite was installed).
    pub weights: Vec<f64>,
    /// How many visited points were infeasible *because of* each
    /// workload (the first suite member that failed to schedule gets
    /// the blame), in [`ExploreResult::workloads`] order. Points outside
    /// the component model's domain are counted in
    /// [`ExploreResult::infeasible`] but blamed on no workload.
    pub blocked: Vec<usize>,
    /// Which strategy searched the space, under what budget and seed.
    pub search: SearchInfo,
    /// When the test axis joined the objective space.
    pub lift: LiftMode,
    /// Where the area and clock axes came from ([`FidelityMode`]):
    /// the back-annotated component tables, or per-point gate-level
    /// netlist elaboration.
    pub fidelity: FidelityMode,
    /// Whether the attached persistent cache (if any) saved its
    /// entries; see [`CacheStatus`].
    pub cache_status: CacheStatus,
    /// Incremental-engine counters ([`DeltaStats`]): `Some` exactly
    /// when the sweep ran under [`EvalMode::Delta`]. Fold carries are
    /// non-zero only for strategies that request the Gray-code
    /// neighbour walk with all three default cost models in effect;
    /// arena counters cover every memoized record fetch. The counters
    /// are observability, never part of the bit-identity contract —
    /// a parallel sweep may count arena traffic differently from a
    /// serial one while producing identical objectives.
    pub delta: Option<DeltaStats>,
    /// Whether the run stopped at a cancellation point
    /// ([`Exploration::cancel_token`]) before the strategy was done.
    /// Everything else on the result covers exactly what *was*
    /// evaluated; renderers treat a cancelled result like any other.
    pub cancelled: bool,
    /// A resumable trajectory snapshot — `Some` exactly when the run
    /// was cancelled. Feed it to [`Exploration::resume_search`] to
    /// continue: with a warm cache the visited prefix replays without
    /// re-scheduling, and stateless strategies finish bit-identically
    /// to an uninterrupted run.
    pub checkpoint: Option<SearchCheckpoint>,
}

/// Per-workload slice of an exploration — one row of
/// [`ExploreResult::workload_breakdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadBreakdown<'a> {
    /// Workload name.
    pub name: &'a str,
    /// Aggregation weight.
    pub weight: f64,
    /// Visited points this workload was the first to make infeasible.
    pub blocked: usize,
    /// This workload's cycle count on the weighted-norm-selected
    /// architecture (equal weights, Euclidean), when a selection exists.
    pub selected_cycles: Option<u64>,
}

impl ExploreResult {
    /// The Pareto points, in enumeration order.
    pub fn pareto_points(&self) -> Vec<&EvaluatedArch> {
        self.pareto.iter().map(|&i| &self.evaluated[i]).collect()
    }

    /// The full N-dimensional objective vectors of the Pareto front.
    pub fn pareto_vectors(&self) -> Vec<&ObjectiveVector> {
        self.pareto
            .iter()
            .map(|&i| &self.evaluated[i].objectives)
            .collect()
    }

    /// The objective axes of the (lifted) front points.
    pub fn axes(&self) -> &[Objective] {
        self.pareto
            .first()
            .map(|&i| self.evaluated[i].objectives.axes())
            .unwrap_or(&[])
    }

    /// Whether `evaluated[index]` is on the Pareto front.
    pub fn is_on_front(&self, index: usize) -> bool {
        self.pareto.contains(&index)
    }

    /// Selects the architecture with minimal weighted norm over the
    /// lifted front (Figure 9), or `None` for an empty front.
    pub fn try_select(&self, weights: &Weights, norm: Norm) -> Option<&EvaluatedArch> {
        if self.pareto.is_empty() {
            return None;
        }
        let pts: Vec<Vec<f64>> = self
            .pareto_vectors()
            .iter()
            .map(|v| v.values().to_vec())
            .collect();
        let local = select(&pts, weights, norm);
        Some(&self.evaluated[self.pareto[local]])
    }

    /// Selects the Figure 9 architecture: minimal weighted norm over the
    /// lifted front.
    ///
    /// # Panics
    ///
    /// Panics when the front is empty (no feasible point) or the weight
    /// dimensionality mismatches [`ExploreResult::axes`]; use
    /// [`ExploreResult::try_select`] for a fallible variant.
    pub fn select(&self, weights: &Weights, norm: Norm) -> &EvaluatedArch {
        self.try_select(weights, norm)
            .expect("cannot select from an empty Pareto front")
    }

    /// The paper's setting: equal weights over all axes, Euclidean norm.
    pub fn select_equal_weights(&self) -> &EvaluatedArch {
        self.try_select_equal_weights()
            .expect("cannot select from an empty Pareto front")
    }

    /// Fallible variant of [`ExploreResult::select_equal_weights`]:
    /// `None` for an empty front.
    pub fn try_select_equal_weights(&self) -> Option<&EvaluatedArch> {
        self.try_select(&Weights::equal(self.axes().len()), Norm::Euclidean)
    }

    /// The per-workload view of the run: name, weight, how many points
    /// the workload blocked, and its cycle share on the equal-weight
    /// selection — one row per suite member, in suite order.
    pub fn workload_breakdown(&self) -> Vec<WorkloadBreakdown<'_>> {
        let selected = self.try_select_equal_weights();
        self.workloads
            .iter()
            .enumerate()
            .map(|(i, name)| WorkloadBreakdown {
                name,
                weight: self.weights[i],
                blocked: self.blocked[i],
                selected_cycles: selected.map(|e| e.workload_cycles[i]),
            })
            .collect()
    }

    /// Indices of the 2-D *design* front: the Pareto front of the
    /// (area, time) sweep axes alone — exactly the points the paper's
    /// post-hoc lift evaluates for test cost. Under
    /// [`LiftMode::ParetoOnly`] this equals [`ExploreResult::pareto`];
    /// under [`LiftMode::Full`] the difference `pareto ∖ design_front`
    /// is precisely the set of true 3-D trade-offs the Pareto-only
    /// lift misses.
    ///
    /// One caveat on the converse containment: the 2-D front keeps
    /// *every* exactly coordinate-tied point, but in 3-D a tied point
    /// with the cheaper test cost strictly dominates its twin. A
    /// design-front point can therefore be absent from the full 3-D
    /// front exactly when another point ties it in both (area, time)
    /// and beats it on test — possible in principle with custom cost
    /// models that quantise coarsely, though not observed with the
    /// annotated defaults.
    pub fn design_front(&self) -> Vec<usize> {
        let pts2d: Vec<Vec<f64>> = self
            .evaluated
            .iter()
            .map(|e| vec![e.area(), e.exec_time()])
            .collect();
        pareto_front(&pts2d)
    }

    /// Projection property (Figure 8 caption): the lifted points
    /// projected onto (area, time) are exactly the Figure 2 front.
    /// Always true under [`LiftMode::ParetoOnly`]; under
    /// [`LiftMode::Full`] it holds exactly when the full 3-D sweep
    /// found nothing the post-hoc lift misses.
    pub fn projection_holds(&self) -> bool {
        let pts2d: Vec<Vec<f64>> = self
            .pareto_points()
            .iter()
            .map(|e| vec![e.area(), e.exec_time()])
            .collect();
        pareto_front(&pts2d).len() == pts2d.len()
    }
}

// ---------------------------------------------------------------------
// The Exploration builder
// ---------------------------------------------------------------------

/// Composable exploration pipeline over a template space.
///
/// Configure the space, workload suite and cost models, then [`run`]
/// the staged flow: (pre-warm) → sweep → Pareto-reduce → lift test cost
/// → done. See the [module docs](self) for an example.
///
/// [`run`]: Exploration::run
pub struct Exploration<'db> {
    space: TemplateSpace,
    workloads: Vec<Workload>,
    // One aggregation weight per workload (1.0 unless weighted).
    weights: Vec<f64>,
    // None = the default annotated model parameterised by `interconnect`,
    // resolved at `run()` — so custom models always win over
    // `.interconnect(..)` regardless of builder-call order.
    area: Option<Box<dyn AreaModel>>,
    timing: Option<Box<dyn TimingModel>>,
    test: Option<Box<dyn TestCostModel>>,
    interconnect: InterconnectModel,
    db: Option<&'db ComponentDb>,
    cache: Option<&'db SweepCache>,
    parallel: bool,
    threads: Option<usize>,
    // None = the default Exhaustive strategy, resolved at run().
    strategy: Option<Box<dyn SearchStrategy>>,
    budget: Option<usize>,
    seed: Option<u64>,
    lift: LiftMode,
    cycle_source: CycleSource,
    eval_mode: EvalMode,
    fidelity: FidelityMode,
    cancel: Option<CancelToken>,
    progress: Option<ProgressObserver<'db>>,
    resume_from: Option<SearchCheckpoint>,
}

/// The engine materialises and evaluates batches in chunks of this many
/// points: at most one chunk of built [`Architecture`]s is ever alive
/// (even the exhaustive whole-space batch streams through bounded
/// memory), and with a cache attached each chunk is persisted as it
/// completes, so an interrupted paper-scale run resumes from the last
/// completed chunk rather than from scratch. The chunk boundary is also
/// the engine's cancellation and progress-reporting grain: a cancelled
/// run ([`Exploration::cancel_token`]) stops at most this many points
/// after the request.
pub const CACHE_FLUSH_CHUNK: usize = 64;

impl<'db> Exploration<'db> {
    /// Starts a pipeline over `space` with the paper's default models
    /// (back-annotated components + paper interconnect constants), no
    /// workloads, and a serial sweep.
    pub fn over(space: TemplateSpace) -> Self {
        Exploration {
            space,
            workloads: Vec::new(),
            weights: Vec::new(),
            area: None,
            timing: None,
            test: None,
            interconnect: InterconnectModel::paper(),
            db: None,
            cache: None,
            parallel: false,
            threads: None,
            strategy: None,
            budget: None,
            seed: None,
            lift: LiftMode::default(),
            cycle_source: CycleSource::default(),
            eval_mode: EvalMode::default(),
            fidelity: FidelityMode::default(),
            cancel: None,
            progress: None,
            resume_from: None,
        }
    }

    /// Adds one workload to the suite at weight 1. With several
    /// workloads the sweep aggregates full-application cycles across
    /// the suite (weights scale each member's contribution); an
    /// architecture is feasible only if *every* workload schedules.
    pub fn workload(self, w: &Workload) -> Self {
        self.workload_weighted(w, 1.0)
    }

    /// Adds one workload with an explicit aggregation weight: the
    /// exec-time axis becomes `clock × Σ wᵢ·cyclesᵢ`, so weight 2 counts
    /// a member twice as heavily as weight 1. Weights must be finite
    /// and positive ([`Exploration::try_run`] reports
    /// [`ExploreError::InvalidWeight`] otherwise), and are part of the
    /// sweep-cache content address.
    pub fn workload_weighted(mut self, w: &Workload, weight: f64) -> Self {
        self.workloads.push(w.clone());
        self.weights.push(weight);
        self
    }

    /// Adds every workload of a suite at weight 1.
    pub fn workloads<'a>(mut self, ws: impl IntoIterator<Item = &'a Workload>) -> Self {
        for w in ws {
            self = self.workload(w);
        }
        self
    }

    /// Adds every member of a weighted suite (e.g. one instantiated by
    /// `tta_workloads::SuiteRegistry::instantiate`), carrying each
    /// member's weight into the aggregation.
    pub fn suite<'a>(mut self, members: impl IntoIterator<Item = &'a WeightedWorkload>) -> Self {
        for m in members {
            self = self.workload_weighted(&m.workload, m.weight);
        }
        self
    }

    /// Replaces all three cost models at once.
    pub fn models(
        mut self,
        area: impl AreaModel + 'static,
        timing: impl TimingModel + 'static,
        test: impl TestCostModel + 'static,
    ) -> Self {
        self.area = Some(Box::new(area));
        self.timing = Some(Box::new(timing));
        self.test = Some(Box::new(test));
        self
    }

    /// Replaces the area model.
    pub fn area_model(mut self, m: impl AreaModel + 'static) -> Self {
        self.area = Some(Box::new(m));
        self
    }

    /// Replaces the timing model.
    pub fn timing_model(mut self, m: impl TimingModel + 'static) -> Self {
        self.timing = Some(Box::new(m));
        self
    }

    /// Replaces the test-cost model.
    pub fn test_cost_model(mut self, m: impl TestCostModel + 'static) -> Self {
        self.test = Some(Box::new(m));
        self
    }

    /// Uses `ic` for whichever of the annotated default area/timing
    /// models are still in effect at [`Exploration::run`]. A custom
    /// model installed via [`Exploration::models`] /
    /// [`Exploration::area_model`] / [`Exploration::timing_model`]
    /// always wins, regardless of call order.
    pub fn interconnect(mut self, ic: InterconnectModel) -> Self {
        self.interconnect = ic;
        self
    }

    /// Shares an existing back-annotation database, so repeated runs
    /// (different workloads, weights or models) reuse component records.
    pub fn with_db(mut self, db: &'db ComponentDb) -> Self {
        self.db = Some(db);
        self
    }

    /// Attaches a persistent evaluation cache ([`crate::cache`]):
    /// points whose content address is already cached skip scheduling
    /// and model evaluation, and fresh results are persisted in chunks
    /// so an interrupted sweep resumes where it stopped. Warm-cache
    /// results are bit-identical to cold ones.
    ///
    /// Caching silently disables itself when any installed cost model
    /// returns `None` from its `fingerprint()` method (the result could
    /// not be content-addressed). Flush failures never abort the sweep
    /// — a read-only cache directory costs persistence, not results —
    /// but they are reported through
    /// [`ExploreResult::cache_status`] instead of being swallowed.
    pub fn cache(mut self, cache: &'db SweepCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Chooses when the test axis joins the objective space (default
    /// [`LiftMode::ParetoOnly`], the paper's post-hoc lift, which is
    /// bit-identical to the pre-lift-mode engine).
    /// [`LiftMode::Full`] costs *every* feasible point on the test
    /// axis and maintains the true 3-D front.
    pub fn lift(mut self, mode: LiftMode) -> Self {
        self.lift = mode;
        self
    }

    /// Chooses where cycle counts come from (default
    /// [`CycleSource::Model`], the analytic scheduler count,
    /// bit-identical to the engine without the knob).
    /// [`CycleSource::Simulate`] executes every scheduled workload on
    /// the cycle-accurate simulator instead — slower, but it turns any
    /// scheduler/model drift into a visible objective change.
    pub fn cycle_source(mut self, source: CycleSource) -> Self {
        self.cycle_source = source;
        self
    }

    /// Chooses how the *default* cost models evaluate a point (default
    /// [`EvalMode::Delta`], the memoizing incremental path). Results
    /// are bit-identical between the modes — this knob trades lock/hash
    /// traffic, never output. See [`EvalMode`].
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Chooses where the area and clock axes come from (default
    /// [`FidelityMode::Table`], the back-annotated per-component fold,
    /// bit-identical to the engine without the knob).
    /// [`FidelityMode::Netlist`] elaborates every visited point to a
    /// gate-level netlist and reads both axes off the elaborated
    /// design; see [`FidelityMode`].
    pub fn fidelity(mut self, mode: FidelityMode) -> Self {
        self.fidelity = mode;
        self
    }

    /// Evaluates the sweep (and the pre-warm and lift stages) on worker
    /// threads. Results are bit-identical to the serial sweep.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Worker-thread count for [`Exploration::parallel`] (defaults to
    /// the machine's available parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Replaces the search strategy deciding *which* points of the
    /// space get evaluated (see [`crate::search`]). The default is
    /// [`Exhaustive`], which visits every point in enumeration order
    /// and is bit-identical — results and cache keys — to the classic
    /// sweep. Non-exhaustive strategies are folded into the sweep-cache
    /// content address, so sampled runs never share entries with
    /// exhaustive ones.
    pub fn strategy(mut self, s: impl SearchStrategy + 'static) -> Self {
        self.strategy = Some(Box::new(s));
        self
    }

    /// Caps the number of points visited (feasible or not, cached or
    /// not — a warm cache changes the cost of a budgeted run, never its
    /// trajectory). Unlimited by default; the [`Exhaustive`] strategy
    /// under a budget evaluates the first `n` points in enumeration
    /// order.
    pub fn budget(mut self, n: usize) -> Self {
        self.budget = Some(n);
        self
    }

    /// Seeds the strategy's random generator (default 0). Runs with the
    /// same strategy, budget and seed evaluate the same points in the
    /// same order, bit-identically.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Installs a cooperative cancellation token (see [`CancelToken`]):
    /// cancelling it stops the sweep at the next chunk boundary — at
    /// most [`CACHE_FLUSH_CHUNK`] points late — instead of running the
    /// in-flight batch to completion. The cancelled run still returns a
    /// consistent partial [`ExploreResult`] carrying a
    /// [`SearchCheckpoint`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Installs a progress observer, called after every evaluated chunk
    /// with a [`SweepProgress`] snapshot (live front size, visit
    /// counts, incremental-engine counters). Pure observability: the
    /// callback cannot change any result bit — though it may share a
    /// [`CancelToken`] with the run and cancel it.
    pub fn progress(mut self, observer: impl FnMut(&SweepProgress) + 'db) -> Self {
        self.progress = Some(Box::new(observer));
        self
    }

    /// Re-seeds the run from a cancelled run's
    /// [`ExploreResult::checkpoint`]. The checkpointed indices replay
    /// through the normal evaluation pipeline *before* the strategy
    /// plans anything — with a warm [`SweepCache`] the replay is pure
    /// cache hits — and the strategy then continues with those points
    /// already seen. For the stateless strategies (exhaustive,
    /// neighbour, random) the resumed result is bit-identical to an
    /// uninterrupted run; see [`SearchCheckpoint`] for the `HillClimb`
    /// caveat.
    pub fn resume_search(mut self, checkpoint: SearchCheckpoint) -> Self {
        self.resume_from = Some(checkpoint);
        self
    }

    fn thread_count(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        self.threads.unwrap_or_else(default_threads)
    }

    /// Runs the staged flow: strategy-driven sweep (with per-batch
    /// pre-warm) → streaming Pareto front → test-cost lifting of the
    /// front.
    ///
    /// # Panics
    ///
    /// Panics if no workload was added; [`Exploration::try_run`] is the
    /// fallible variant.
    pub fn run(self) -> ExploreResult {
        match self.try_run() {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Exploration::run`].
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::EmptyWorkloads`] when no workload was
    /// added to the builder.
    pub fn try_run(mut self) -> Result<ExploreResult, ExploreError> {
        if self.workloads.is_empty() {
            return Err(ExploreError::EmptyWorkloads);
        }
        if let Some(i) = self
            .weights
            .iter()
            .position(|w| !w.is_finite() || *w <= 0.0)
        {
            return Err(ExploreError::InvalidWeight(i));
        }
        // Netlist fidelity fills the *empty* area/timing slots with the
        // elaboration-backed models before anything inspects the slots:
        // downstream, the slots simply hold custom models (carried folds
        // disengage, the delta wrappers keep serving the test axis, and
        // the cache addresses change through the model fingerprints).
        if self.fidelity == FidelityMode::Netlist {
            let eval = Arc::new(NetlistEvaluator::new());
            if self.area.is_none() {
                self.area = Some(Box::new(NetlistAreaModel::new(
                    self.interconnect,
                    Arc::clone(&eval),
                )));
            }
            if self.timing.is_none() {
                self.timing = Some(Box::new(NetlistTimingModel::new(
                    self.interconnect,
                    Arc::clone(&eval),
                )));
            }
        }
        // Custom models may never read the annotation database; only
        // pre-warm when at least one default (db-backed) model is in
        // effect.
        let uses_db_defaults = self.area.is_none() || self.timing.is_none() || self.test.is_none();
        // The carried-fold fast path substitutes *all three* axes at
        // once, so it engages only when every model slot is a default.
        let all_defaults = self.area.is_none() && self.timing.is_none() && self.test.is_none();
        let interconnect = self.interconnect;
        let (area, timing, test, delta_eval) = self.resolve_models();
        let owned_db;
        let db: &ComponentDb = match self.db {
            Some(db) => db,
            None => {
                owned_db = ComponentDb::new();
                &owned_db
            }
        };
        let threads = self.thread_count();
        let mut strategy: Box<dyn SearchStrategy> =
            self.strategy.take().unwrap_or_else(|| Box::new(Exhaustive));
        let strategy_name = strategy.name();
        let strategy_salt = strategy.cache_salt();
        let budget = self.budget.unwrap_or(usize::MAX);
        let seed = self.seed.unwrap_or(0);
        // True incremental evaluation: under the delta engine, default
        // models and a strategy that asks for the Gray-code neighbour
        // walk, a serial pre-pass advances per-point cost folds by
        // retracting/applying only the one changed component — O(1)
        // arithmetic per walk step instead of a full refold. Results
        // are bit-identical to the scratch models (CarriedFolds'
        // contract); everything else falls back to per-point folds.
        let mut carry: Option<(CarriedFolds, Arc<DeltaEvaluator>)> = match &delta_eval {
            Some(eval) if all_defaults && strategy.walk_order() == WalkOrder::Neighbour => {
                Some((CarriedFolds::new(interconnect), Arc::clone(eval)))
            }
            _ => None,
        };

        // Content-address bases for the persistent cache: everything
        // that determines a point's result except the point itself.
        // `None` (no cache attached, or an unfingerprintable model)
        // bypasses caching entirely. Non-exhaustive strategies fold
        // their identity (plus budget and seed, which shape the
        // trajectory) into the base, so a sampled run's entries can
        // never be confused with an exhaustive sweep's.
        let salted = |f: Fingerprint| match strategy_salt {
            None => f,
            Some(salt) => f
                .str("strategy")
                .str(strategy_name)
                .u64(salt)
                .u64(self.budget.map_or(u64::MAX, |b| b as u64))
                .u64(seed),
        };
        let test_fp = test.fingerprint();
        let eval_cache = self.cache.and_then(|cache| {
            let base = Fingerprint::new()
                .str("eval")
                .u64(u64::from(CACHE_ADDRESS_VERSION))
                .u64(area.fingerprint()?)
                .u64(timing.fingerprint()?)
                .u64(db.fingerprint())
                .u64(self.workloads.len() as u64);
            // Weights ride along with each workload: a reweighted suite
            // changes the exec-time axis, so it must change the address.
            let base = self
                .workloads
                .iter()
                .zip(&self.weights)
                .fold(base, |f, (w, &weight)| {
                    f.u64(workload_fingerprint(w)).f64(weight)
                });
            // Simulated cycle counts are a different observable (they
            // *should* equal the model, but proving that is the point),
            // so they get their own address family. `Model` leaves the
            // address untouched — bit-identical to pre-knob sweeps.
            let base = match self.cycle_source {
                CycleSource::Model => base,
                CycleSource::Simulate => base.str("cycles").str("simulate"),
            };
            Some((cache, salted(base).finish()))
        });
        // A full lift stores per-point test totals *inline* in the eval
        // entries, tagged with the test model's fingerprint — an
        // unfingerprintable test model therefore bypasses the eval
        // cache entirely in that mode (the totals could not be
        // validated). The eval content address itself is deliberately
        // unchanged, so both lift modes (and pre-v3 sweeps) share their
        // scheduling work.
        let eval_cache = match self.lift {
            LiftMode::ParetoOnly => eval_cache,
            LiftMode::Full => eval_cache.filter(|_| test_fp.is_some()),
        };
        let full_test_fp = test_fp.unwrap_or(0);
        let test_cache = self.cache.and_then(|cache| {
            let base = Fingerprint::new()
                .str("test")
                .u64(u64::from(CACHE_ADDRESS_VERSION))
                .u64(test_fp?)
                .u64(db.fingerprint());
            Some((cache, salted(base).finish()))
        });
        let point_key = |base: u64, arch: &Architecture| {
            Fingerprint::new()
                .u64(base)
                .u64(arch_fingerprint(arch))
                .finish()
        };

        // Stages 0–2, batched: the strategy proposes point indices, the
        // engine lazily builds and evaluates them, and every feasible
        // result streams into an incrementally maintained Pareto
        // archive that guides the next proposal round. No stage ever
        // materialises the space.
        let space = &self.space;
        let space_len = space.len();
        let workloads = &self.workloads;
        let weights = &self.weights;
        let mut evaluated: Vec<EvaluatedArch> = Vec::new();
        let mut blocked: Vec<usize> = vec![0; workloads.len()];
        let mut eval_space_index: Vec<usize> = Vec::new();
        let mut state = SearchState::new();
        let mut archive = ParetoArchive::new();
        let mut infeasible = 0usize;
        let lift = self.lift;
        let fidelity = self.fidelity;
        let cycle_source = self.cycle_source;
        let cancel = self.cancel.take();
        let mut progress = self.progress.take();
        // A checkpointed trajectory replays its visited indices through
        // the normal pipeline before the strategy plans anything: with a
        // warm cache the replay is pure hits, the observation log and
        // archive are rebuilt exactly, and the strategy then continues
        // from round 0 with the replayed points already claimed.
        let mut replay: Option<Vec<usize>> = self.resume_from.take().map(|cp| cp.indices());
        // First flush failure, if any — reported via CacheStatus, never
        // allowed to abort the sweep.
        let mut flush_error: Option<String> = None;
        let mut was_cancelled = false;
        // Points replayed from a checkpoint are budget-free: the
        // interrupted run already paid for them, and charging them again
        // would make a resumed budgeted sweep propose fewer fresh points
        // than the uninterrupted run it must match bit-for-bit.
        let mut replayed = 0usize;

        'search: loop {
            if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                was_cancelled = true;
                break;
            }
            let remaining = budget.saturating_sub(state.visited().saturating_sub(replayed));
            if remaining == 0 {
                break;
            }
            let front_spaces: Vec<usize> = archive
                .ids()
                .iter()
                .map(|&id| eval_space_index[id])
                .collect();
            let replaying = replay.is_some();
            let batch = match replay.take() {
                // The replay batch bypasses the strategy and spends no
                // round: once it is evaluated, the strategy plans from
                // round 0 exactly as in an uninterrupted run.
                Some(batch) => batch,
                None => {
                    let ctx = state.context(space, seed, remaining, &front_spaces);
                    strategy.next_batch(&ctx)
                }
            };
            // Keep only in-range, never-seen proposals, within budget.
            let mut fresh: Vec<usize> = Vec::new();
            for i in batch {
                if i < space_len && state.claim(i) {
                    fresh.push(i);
                    if fresh.len() == remaining {
                        break;
                    }
                }
            }
            if replaying {
                replayed += fresh.len();
            }
            if fresh.is_empty() {
                if replaying {
                    // An empty (or fully filtered) replay must not end
                    // the search — the strategy has not planned yet.
                    continue;
                }
                break;
            }
            // A strategy may ask for its batches to be *evaluated* in
            // neighbour (Gray-walk) order: consecutive points then
            // differ in one template knob, which maximises reuse in the
            // delta evaluator's memo arena. The re-sort happens after
            // budget truncation, so it changes when a point is
            // evaluated, never whether — and per-point cache addresses
            // are visit-order independent.
            if strategy.walk_order() == WalkOrder::Neighbour {
                fresh.sort_by_key(|&i| space.neighbour_rank(i));
            }
            if !replaying {
                state.begin_round();
            }
            // Materialise at most one chunk of architectures at a time
            // (indices are cheap, built points are not), so even the
            // exhaustive strategy's whole-space batch streams through
            // bounded memory instead of re-creating the old
            // `enumerate()` vector.
            for index_chunk in fresh.chunks(CACHE_FLUSH_CHUNK) {
                // The cooperative cancellation point: a cancel request
                // lands between chunks, so a cancelled run stops at
                // most one chunk after the request — never after the
                // whole in-flight batch.
                if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    was_cancelled = true;
                    break 'search;
                }
                let archs: Vec<Architecture> =
                    index_chunk.iter().map(|&i| space.point(i)).collect();

                // Stage 0: pre-warm the component database for every
                // key this chunk can touch, so parallel workers never
                // duplicate an annotation. A serial sweep annotates
                // lazily instead — it only ever pays for keys that
                // feasible points actually read — and a fully-custom
                // model stack may never read the database at all.
                // Cached points never read the database either, so
                // only cache-missing architectures contribute keys
                // (and keys warmed by earlier chunks are filtered by
                // `db.contains`).
                if self.parallel && uses_db_defaults {
                    let mut keys: Vec<_> = archs
                        .iter()
                        .filter(|arch| match &eval_cache {
                            // A full lift reads the database for the
                            // test axis too, so an entry missing its
                            // inline test total still needs warm keys.
                            Some((cache, base)) => match lift {
                                LiftMode::ParetoOnly => {
                                    !cache.contains_eval(point_key(*base, arch))
                                }
                                LiftMode::Full => !cache
                                    .contains_eval_with_test(point_key(*base, arch), full_test_fp),
                            },
                            None => true,
                        })
                        .filter_map(keys_of)
                        .flatten()
                        .collect();
                    keys.sort_unstable();
                    keys.dedup();
                    keys.retain(|&k| !db.contains(k));
                    par_map(&keys, threads, |_, &key| {
                        db.get(key);
                    });
                }

                // Stage ½ (serial): advance the carried folds across
                // the chunk, one Gray-walk step per cache-missing
                // point. The pre-pass is serial by construction (the
                // carry is a running accumulator), but it only performs
                // O(1) retract/apply arithmetic per step — the
                // expensive work (scheduling) stays parallel below.
                // Answered-from-cache points skip their walk step, so
                // they reset the carry instead of advancing it.
                let staged: Vec<Option<PointCosts>> = match carry.as_mut() {
                    None => vec![None; archs.len()],
                    Some((carry, eval)) => index_chunk
                        .iter()
                        .zip(&archs)
                        .map(|(&index, arch)| {
                            let cached = match &eval_cache {
                                Some((cache, base)) => match lift {
                                    LiftMode::ParetoOnly => {
                                        cache.contains_eval(point_key(*base, arch))
                                    }
                                    LiftMode::Full => cache.contains_eval_with_test(
                                        point_key(*base, arch),
                                        full_test_fp,
                                    ),
                                },
                                None => false,
                            };
                            if cached {
                                carry.reset();
                                None
                            } else {
                                Some(carry.advance(arch, space.neighbour_rank(index), eval, db))
                            }
                        })
                        .collect(),
                };
                let staged = &staged;

                // Stage 1: evaluate the chunk on the full workload
                // suite — answering from the cache where possible and
                // persisting fresh results chunk by chunk, so an
                // interrupted run resumes from the last completed
                // chunk.
                let evaluations: Vec<PointOutcome> = match &eval_cache {
                    None => par_map(&archs, threads, |k, arch| match lift {
                        LiftMode::ParetoOnly => evaluate_point(
                            arch,
                            workloads,
                            weights,
                            axis_source(staged[k], &*area, &*timing),
                            db,
                            cycle_source,
                        ),
                        LiftMode::Full => {
                            match evaluate_point(
                                arch,
                                workloads,
                                weights,
                                axis_source(staged[k], &*area, &*timing),
                                db,
                                cycle_source,
                            ) {
                                Ok(e) => {
                                    let total = match staged[k] {
                                        Some(s) => s.test_total,
                                        None => test.test_cost(arch, db).total,
                                    };
                                    finish_full(e, total)
                                }
                                Err(why) => Err(why),
                            }
                        }
                    }),
                    Some((cache, base)) => {
                        // Struct-of-arrays chunk layout: `archs`, `keys`
                        // and `prefetched` are parallel columns indexed
                        // by the chunk position `k`. The cache is read
                        // ONCE per chunk (one lock acquisition for the
                        // whole batch) instead of once per point inside
                        // the hot loop; only stores stay per-point,
                        // since they happen on misses alone.
                        let keys: Vec<u64> =
                            archs.iter().map(|arch| point_key(*base, arch)).collect();
                        let prefetched = cache.lookup_eval_batch(&keys);
                        let out = par_map(&archs, threads, |k, arch| {
                            let key = keys[k];
                            // A cache entry inconsistent with this suite
                            // (corrupt or hash-colliding) rehydrates to
                            // None and is re-evaluated — a bad cache may
                            // cost time, never correctness or a panic.
                            match lift {
                                LiftMode::ParetoOnly => {
                                    if let Some(outcome) = prefetched[k].clone().and_then(|entry| {
                                        rehydrate(arch, workloads.len(), weights, entry)
                                    }) {
                                        return outcome;
                                    }
                                    let e = evaluate_point(
                                        arch,
                                        workloads,
                                        weights,
                                        axis_source(staged[k], &*area, &*timing),
                                        db,
                                        cycle_source,
                                    );
                                    cache.store_eval(key, dehydrate(&e, None));
                                    e
                                }
                                LiftMode::Full => {
                                    match prefetched[k].clone().and_then(|entry| {
                                        rehydrate_full(
                                            arch,
                                            workloads.len(),
                                            weights,
                                            entry,
                                            full_test_fp,
                                        )
                                    }) {
                                        Some(FullRehydration::Done(outcome)) => return outcome,
                                        // A v2 entry (or one written by
                                        // another test model): the
                                        // scheduling work is reused and
                                        // only the test total recomputes;
                                        // the upgraded entry is stored
                                        // back.
                                        Some(FullRehydration::NeedsTest(e)) => {
                                            let total = match staged[k] {
                                                Some(s) => s.test_total,
                                                None => test.test_cost(arch, db).total,
                                            };
                                            cache.store_eval(
                                                key,
                                                dehydrate_feasible(
                                                    &e,
                                                    Some((full_test_fp, total.to_bits())),
                                                ),
                                            );
                                            return finish_full(e, total);
                                        }
                                        None => {}
                                    }
                                    match evaluate_point(
                                        arch,
                                        workloads,
                                        weights,
                                        axis_source(staged[k], &*area, &*timing),
                                        db,
                                        cycle_source,
                                    ) {
                                        Err(why) => {
                                            cache.store_eval(key, dehydrate(&Err(why), None));
                                            Err(why)
                                        }
                                        Ok(e) => {
                                            let total = match staged[k] {
                                                Some(s) => s.test_total,
                                                None => test.test_cost(arch, db).total,
                                            };
                                            cache.store_eval(
                                                key,
                                                dehydrate_feasible(
                                                    &e,
                                                    Some((full_test_fp, total.to_bits())),
                                                ),
                                            );
                                            finish_full(e, total)
                                        }
                                    }
                                }
                            }
                        });
                        if let Err(e) = cache.flush() {
                            flush_error.get_or_insert_with(|| e.to_string());
                        }
                        out
                    }
                };

                // Stage 2, streaming: feasible results join the
                // evaluated set and are offered to the archive
                // (insert-time dominance check — no full-set re-scan);
                // every outcome becomes an observation the strategy
                // can steer by.
                for (k, e) in evaluations.into_iter().enumerate() {
                    let index = index_chunk[k];
                    match e {
                        Ok(e) => {
                            let id = evaluated.len();
                            // ParetoOnly points carry [area, time], Full
                            // points [area, time, test] — the archive
                            // streams whichever front the mode defines.
                            archive.try_insert(id, e.objectives.values());
                            state.record(Observation {
                                index,
                                objectives: Some((e.area(), e.exec_time())),
                            });
                            eval_space_index.push(index);
                            evaluated.push(e);
                        }
                        Err(why) => {
                            infeasible += 1;
                            if let Some(w) = why {
                                blocked[w] += 1;
                            }
                            state.record(Observation {
                                index,
                                objectives: None,
                            });
                        }
                    }
                }

                // Per-chunk progress: live telemetry for streaming
                // clients. Observability only — the snapshot is built
                // from state the chunk already produced.
                if let Some(observer) = progress.as_mut() {
                    observer(&SweepProgress {
                        round: state.round(),
                        visited: state.observations().len(),
                        feasible: evaluated.len(),
                        infeasible,
                        front: archive.len(),
                        space_len,
                        delta: delta_snapshot(&delta_eval, &carry),
                    });
                }
            }
            state.finish_round();
        }

        // The streaming archive *is* the mode's Pareto front — the 2-D
        // (area, time) front of Figure 2 under ParetoOnly, the true 3-D
        // front under Full. `pareto_front` stays on as the verification
        // oracle.
        let pareto = archive.ids();
        #[cfg(debug_assertions)]
        {
            let pts: Vec<Vec<f64>> = evaluated
                .iter()
                .map(|e| e.objectives.values().to_vec())
                .collect();
            debug_assert_eq!(
                pareto,
                pareto_front(&pts),
                "streaming front must match the batch oracle"
            );
        }

        // Stage 3 (ParetoOnly): lift the front with the test axis —
        // Figure 8. "only the architectures that correspond to the
        // Pareto points in the design space are evaluated in terms of
        // testing". A Full sweep already carries the axis on every
        // point, so the stage disappears.
        if lift == LiftMode::ParetoOnly {
            // Pre-warm first (parallel, db-backed test model): when the
            // sweep was answered from the cache, stage 0 warmed nothing,
            // but an uncached lift still reads the database — without
            // this, parallel lift workers would each recompute shared
            // ATPG records.
            if self.parallel && uses_db_defaults {
                let mut keys: Vec<_> = pareto
                    .iter()
                    .map(|&i| &evaluated[i].architecture)
                    .filter(|arch| match &test_cache {
                        Some((cache, base)) => !cache.contains_test(point_key(*base, arch)),
                        None => true,
                    })
                    .filter_map(keys_of)
                    .flatten()
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                keys.retain(|&k| !db.contains(k));
                par_map(&keys, threads, |_, &key| {
                    db.get(key);
                });
            }
            let costs = par_map(&pareto, threads, |_, &i| {
                let arch = &evaluated[i].architecture;
                if let Some((cache, base)) = &test_cache {
                    let key = point_key(*base, arch);
                    if let Some(total) = cache.lookup_test(key) {
                        return total;
                    }
                    let total = test.test_cost(arch, db).total;
                    cache.store_test(key, total);
                    return total;
                }
                test.test_cost(arch, db).total
            });
            if let Some((cache, _)) = &test_cache {
                if let Err(e) = cache.flush() {
                    flush_error.get_or_insert_with(|| e.to_string());
                }
            }
            for (&i, total) in pareto.iter().zip(costs) {
                evaluated[i].objectives.push(Objective::TestCost, total);
            }
        }

        let delta = delta_snapshot(&delta_eval, &carry);

        let caching_active =
            eval_cache.is_some() || (lift == LiftMode::ParetoOnly && test_cache.is_some());
        let cache_status = if self.cache.is_none() {
            CacheStatus::NotAttached
        } else if !caching_active {
            CacheStatus::Bypassed
        } else if let Some(msg) = flush_error {
            CacheStatus::FlushFailed(msg)
        } else {
            CacheStatus::Flushed
        };

        Ok(ExploreResult {
            evaluated,
            pareto,
            infeasible,
            workloads: self.workloads.iter().map(|w| w.name.clone()).collect(),
            weights: self.weights.clone(),
            blocked,
            search: SearchInfo {
                strategy: strategy_name.to_string(),
                budget: self.budget,
                seed: self.seed,
                space_len,
                evaluations: state.observations().len(),
                rounds: state.round(),
            },
            lift,
            fidelity,
            cache_status,
            delta,
            cancelled: was_cancelled,
            checkpoint: was_cancelled.then(|| state.checkpoint()),
        })
    }

    /// Resolves the installed or default models (defaults parameterised
    /// by the configured [`InterconnectModel`]). Under
    /// [`EvalMode::Delta`] the default slots get the delta wrappers,
    /// all sharing one memo arena for the run; custom models are never
    /// wrapped (and unfingerprintable ones therefore never memoize).
    fn resolve_models(&mut self) -> ResolvedModels {
        let ic = self.interconnect;
        match self.eval_mode {
            EvalMode::Scratch => (
                self.area
                    .take()
                    .unwrap_or_else(|| Box::new(AnnotatedAreaModel::new(ic))),
                self.timing
                    .take()
                    .unwrap_or_else(|| Box::new(AnnotatedTimingModel::new(ic))),
                self.test
                    .take()
                    .unwrap_or_else(|| Box::new(Eq14TestCostModel)),
                None,
            ),
            EvalMode::Delta => {
                let eval = Arc::new(DeltaEvaluator::new(ic));
                (
                    self.area
                        .take()
                        .unwrap_or_else(|| Box::new(DeltaAreaModel::new(ic, Arc::clone(&eval)))),
                    self.timing
                        .take()
                        .unwrap_or_else(|| Box::new(DeltaTimingModel::new(ic, Arc::clone(&eval)))),
                    self.test
                        .take()
                        .unwrap_or_else(|| Box::new(DeltaTestCostModel::new(Arc::clone(&eval)))),
                    Some(eval),
                )
            }
        }
    }
}

/// The incremental-engine counters at one instant of a run: `Some`
/// exactly under [`EvalMode::Delta`]; carried-fold counts when the
/// carry engaged, zeros otherwise. Shared by the per-chunk
/// [`SweepProgress`] snapshots and the final [`ExploreResult::delta`].
fn delta_snapshot(
    delta_eval: &Option<Arc<DeltaEvaluator>>,
    carry: &Option<(CarriedFolds, Arc<DeltaEvaluator>)>,
) -> Option<DeltaStats> {
    delta_eval.as_ref().map(|eval| {
        let (fold_carries, scratch_fallbacks) = carry.as_ref().map_or((0, 0), |(c, _)| c.stats());
        let (arena_hits, arena_misses, arena_evictions) = eval.arena_counters();
        DeltaStats {
            fold_carries,
            scratch_fallbacks,
            arena_hits,
            arena_misses,
            arena_evictions,
        }
    })
}

/// The three resolved model slots plus the shared memo arena (present
/// only under [`EvalMode::Delta`] with default slots to wrap).
type ResolvedModels = (
    Box<dyn AreaModel>,
    Box<dyn TimingModel>,
    Box<dyn TestCostModel>,
    Option<Arc<DeltaEvaluator>>,
);

/// One sweep evaluation: a feasible point, or why the point dropped
/// (`Err(Some(i))` = suite member `i` failed to schedule first,
/// `Err(None)` = the cost models returned a non-finite value).
type PointOutcome = Result<EvaluatedArch, Option<usize>>;

/// Weight-scaled aggregate cycles. Each term `wᵢ·cᵢ` and every partial
/// sum is an exact integer below 2⁵³ when all weights are 1, so the
/// unit-weight aggregate is bit-identical to `(Σ cᵢ) as f64` — weighted
/// suites change results only when they actually reweight.
fn weighted_sum(workload_cycles: &[u64], weights: &[f64]) -> f64 {
    workload_cycles
        .iter()
        .zip(weights)
        .map(|(&c, &w)| w * c as f64)
        .sum()
}

/// Rebuilds an evaluation from its cache entry. The floats come back as
/// the exact bit patterns the original evaluation produced (the
/// weighted aggregate is deterministically recomputed from the cached
/// per-workload cycles), so a warm sweep is bit-identical to a cold
/// one. Entries inconsistent with a suite of `n_workloads` members (a
/// corrupt cache file, or a content-address collision) return `None`,
/// which sends the point back to a fresh evaluation.
fn rehydrate(
    arch: &Architecture,
    n_workloads: usize,
    weights: &[f64],
    entry: EvalEntry,
) -> Option<PointOutcome> {
    match entry {
        EvalEntry::Infeasible { blocked } => {
            let blocked = match blocked {
                None => None,
                Some(w) if (w as usize) < n_workloads => Some(w as usize),
                Some(_) => return None,
            };
            Some(Err(blocked))
        }
        EvalEntry::Feasible {
            cycles,
            workload_cycles,
            spills,
            area_bits,
            exec_bits,
            test: _,
        } => {
            if workload_cycles.len() != n_workloads {
                return None;
            }
            let weighted_cycles = weighted_sum(&workload_cycles, weights);
            Some(Ok(EvaluatedArch {
                architecture: arch.clone(),
                cycles,
                workload_cycles,
                spills,
                weighted_cycles,
                objectives: ObjectiveVector::new([
                    (Objective::Area, f64::from_bits(area_bits)),
                    (Objective::ExecTime, f64::from_bits(exec_bits)),
                ]),
            }))
        }
    }
}

/// Outcome of rehydrating a cache entry for a [`LiftMode::Full`]
/// sweep.
enum FullRehydration {
    /// The entry answered completely, test axis included.
    Done(PointOutcome),
    /// Feasible, but the inline test total is missing (a v2 or
    /// Pareto-only entry) or was produced by a different test model:
    /// the scheduling payload is reusable, the test total is not.
    NeedsTest(EvaluatedArch),
}

/// Full-lift rehydration: like [`rehydrate`], but also resolves the
/// inline test total when it matches the active model's fingerprint.
fn rehydrate_full(
    arch: &Architecture,
    n_workloads: usize,
    weights: &[f64],
    entry: EvalEntry,
    test_fp: u64,
) -> Option<FullRehydration> {
    let inline_test = match &entry {
        EvalEntry::Feasible { test, .. } => *test,
        EvalEntry::Infeasible { .. } => None,
    };
    Some(match rehydrate(arch, n_workloads, weights, entry)? {
        Err(blocked) => FullRehydration::Done(Err(blocked)),
        Ok(e) => match inline_test {
            Some((fp, bits)) if fp == test_fp => {
                FullRehydration::Done(finish_full(e, f64::from_bits(bits)))
            }
            _ => FullRehydration::NeedsTest(e),
        },
    })
}

/// Pushes the test axis onto a feasible 2-D evaluation, turning a
/// non-finite total into an infeasible point (the same convention as
/// the area/timing axes: an infinite coordinate would poison the norm
/// selection downstream). The cache keeps the *feasible* 2-D entry
/// either way, so a Pareto-only run sharing the cache still sees the
/// point.
fn finish_full(mut e: EvaluatedArch, total: f64) -> PointOutcome {
    if !total.is_finite() {
        return Err(None);
    }
    e.objectives.push(Objective::TestCost, total);
    Ok(e)
}

/// The cache entry for a fresh evaluation; `test` carries the inline
/// `(model fingerprint, total bits)` pair of a full-lift sweep.
fn dehydrate(e: &PointOutcome, test: Option<(u64, u64)>) -> EvalEntry {
    match e {
        Err(blocked) => EvalEntry::Infeasible {
            blocked: blocked.map(|w| w as u32),
        },
        Ok(e) => dehydrate_feasible(e, test),
    }
}

/// The cache entry for a feasible evaluation (2-D payload; the test
/// axis, if already pushed, is *not* read from the objectives — the
/// caller passes it explicitly as `test`).
fn dehydrate_feasible(e: &EvaluatedArch, test: Option<(u64, u64)>) -> EvalEntry {
    EvalEntry::Feasible {
        cycles: e.cycles,
        workload_cycles: e.workload_cycles.clone(),
        spills: e.spills,
        area_bits: e.area().to_bits(),
        exec_bits: e.exec_time().to_bits(),
        test,
    }
}

/// Where a point's area and clock-period axes come from: the cost
/// models (scratch or delta fold, both O(components) per point), or an
/// already-advanced carried fold (the O(1) incremental path). The two
/// sources are bit-identical by [`CarriedFolds`]' contract.
#[derive(Clone, Copy)]
enum AxisSource<'a> {
    /// Fold the axes through the installed models.
    Models(&'a dyn AreaModel, &'a dyn TimingModel),
    /// Use the carried fold's pre-computed axes.
    Carried(PointCosts),
}

/// Picks the axis source for one chunk position: the staged carried
/// fold when the serial pre-pass produced one, the models otherwise.
fn axis_source<'a>(
    staged: Option<PointCosts>,
    area: &'a dyn AreaModel,
    timing: &'a dyn TimingModel,
) -> AxisSource<'a> {
    match staged {
        Some(costs) => AxisSource::Carried(costs),
        None => AxisSource::Models(area, timing),
    }
}

/// Evaluates one architecture on a workload suite (area + throughput
/// only; the test axis is lifted later, on front points). Infeasibility
/// is entirely the models’ verdict: a non-finite area or clock period
/// (the default annotated models return infinity for out-of-
/// [`crate::backannotate::ComponentKey`]-domain geometries) or an
/// unschedulable workload drops the point — the error records which.
fn evaluate_point(
    arch: &Architecture,
    workloads: &[Workload],
    weights: &[f64],
    axes: AxisSource<'_>,
    db: &ComponentDb,
    cycle_source: CycleSource,
) -> PointOutcome {
    let mut workload_cycles = Vec::with_capacity(workloads.len());
    let mut spills = 0u32;
    for (i, w) in workloads.iter().enumerate() {
        let schedule = Scheduler::new(arch).run(&w.dfg).map_err(|_| Some(i))?;
        let trace_cycles = match cycle_source {
            CycleSource::Model => schedule.cycles,
            // Execute the lowered program and trust the machine, not
            // the model. A program that cannot lower or run is as
            // infeasible as one that cannot schedule.
            CycleSource::Simulate => executed_cycles(arch, w, &schedule).ok_or(Some(i))?,
        };
        workload_cycles.push(w.application_cycles(trace_cycles));
        spills += schedule.spills;
    }
    let cycles: u64 = workload_cycles.iter().sum();
    let weighted_cycles = weighted_sum(&workload_cycles, weights);
    let (area, clock) = match axes {
        AxisSource::Models(area_model, timing_model) => (
            area_model.area(arch, db),
            timing_model.clock_period(arch, db),
        ),
        AxisSource::Carried(costs) => (costs.area, costs.clock_period),
    };
    // Exec time must be finite too: a finite-but-extreme weight can
    // overflow the weighted aggregate, and an infinite axis would turn
    // the norm selection into NaN comparisons downstream.
    let exec_time = weighted_cycles * clock;
    if !area.is_finite() || !clock.is_finite() || !exec_time.is_finite() {
        return Err(None);
    }
    Ok(EvaluatedArch {
        architecture: arch.clone(),
        cycles,
        workload_cycles,
        spills,
        weighted_cycles,
        objectives: ObjectiveVector::new([
            (Objective::Area, area),
            (Objective::ExecTime, exec_time),
        ]),
    })
}

/// One workload's executed (simulated) trace cycle count on `arch`,
/// or `None` when the lowered program cannot run there.
fn executed_cycles(
    arch: &Architecture,
    w: &Workload,
    schedule: &tta_movec::schedule::Schedule,
) -> Option<u32> {
    let program = tta_sim::lower(arch, &w.dfg, schedule, &w.inputs, &w.mem).ok()?;
    let options = tta_sim::SimOptions {
        allow_register_overflow: true,
        ..Default::default()
    };
    let trace = tta_sim::Simulator::new(arch)
        .options(options)
        .run(&program)
        .ok()?;
    u32::try_from(trace.cycles).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_arch::FuKind;
    use tta_workloads::suite;

    #[test]
    fn fast_exploration_produces_a_front() {
        let result = Exploration::over(TemplateSpace::fast_default())
            .workload(&suite::crypt(1))
            .run();
        assert!(result.evaluated.len() >= 6, "{}", result.evaluated.len());
        assert!(!result.pareto.is_empty());
        assert!(result.projection_holds());
        // Test axis present exactly on the front.
        for (i, e) in result.evaluated.iter().enumerate() {
            assert_eq!(e.test_cost().is_some(), result.is_on_front(i));
        }
        let best = result.select_equal_weights();
        assert!(best.test_cost().is_some());
        assert_eq!(
            result.axes(),
            [Objective::Area, Objective::ExecTime, Objective::TestCost]
        );
    }

    #[test]
    fn neighbour_walk_carries_folds_and_reports_stats() {
        let w = suite::crypt(1);
        let db = ComponentDb::new();
        let walked = Exploration::over(TemplateSpace::fast_default())
            .workload(&w)
            .with_db(&db)
            .strategy(crate::search::Exhaustive::neighbour())
            .run();
        let stats = walked.delta.as_ref().expect("delta engine reports stats");
        // A full neighbour walk carries almost every step (fallbacks
        // happen only at the walk start and out-of-model resets).
        assert!(stats.fold_carries > 0, "{stats:?}");
        assert_eq!(
            stats.fold_carries + stats.scratch_fallbacks,
            walked.search.evaluations as u64,
            "every visited point advances the carry exactly once: {stats:?}"
        );
        // Enumeration order never requests the walk: stats exist, the
        // carry never engages.
        let plain = Exploration::over(TemplateSpace::fast_default())
            .workload(&w)
            .with_db(&db)
            .run();
        let plain_stats = plain.delta.as_ref().expect("delta is the default mode");
        assert_eq!(plain_stats.fold_carries, 0, "{plain_stats:?}");
        // Scratch mode has no delta engine at all.
        let scratch = Exploration::over(TemplateSpace::fast_default())
            .workload(&w)
            .with_db(&db)
            .strategy(crate::search::Exhaustive::neighbour())
            .eval_mode(EvalMode::Scratch)
            .run();
        assert!(scratch.delta.is_none());
        // And the three runs agree bit-for-bit.
        for (a, b) in walked.evaluated.iter().zip(&scratch.evaluated) {
            assert_eq!(a.architecture.name, b.architecture.name);
            assert_eq!(a.objectives, b.objectives);
        }
        assert_eq!(walked.pareto, scratch.pareto);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let w = suite::crypt(1);
        let db = ComponentDb::new();
        let serial = Exploration::over(TemplateSpace::fast_default())
            .workload(&w)
            .with_db(&db)
            .parallel(false)
            .run();
        let parallel = Exploration::over(TemplateSpace::fast_default())
            .workload(&w)
            .with_db(&db)
            .parallel(true)
            .run();
        assert_eq!(serial.evaluated.len(), parallel.evaluated.len());
        for (a, b) in serial.evaluated.iter().zip(&parallel.evaluated) {
            assert_eq!(a.architecture.name, b.architecture.name);
            assert_eq!(a.objectives, b.objectives);
            assert_eq!(a.cycles, b.cycles);
        }
        assert_eq!(serial.pareto, parallel.pareto);
        assert_eq!(
            serial.select_equal_weights().architecture.name,
            parallel.select_equal_weights().architecture.name
        );
    }

    #[test]
    fn multi_workload_aggregates_cycles() {
        let crypt = suite::crypt(1);
        let checksum = suite::checksum32();
        let db = ComponentDb::new();
        let combined = Exploration::over(TemplateSpace::fast_default())
            .workloads([&crypt, &checksum])
            .with_db(&db)
            .run();
        let solo = Exploration::over(TemplateSpace::fast_default())
            .workload(&crypt)
            .with_db(&db)
            .run();
        assert_eq!(
            combined.workloads,
            vec![crypt.name.clone(), checksum.name.clone()]
        );
        // Aggregate cycles are the per-workload sum, and are at least
        // the single-workload cycles for the same architecture.
        for e in &combined.evaluated {
            assert_eq!(e.cycles, e.workload_cycles.iter().sum::<u64>());
            assert_eq!(e.workload_cycles.len(), 2);
            if let Some(s) = solo
                .evaluated
                .iter()
                .find(|s| s.architecture.name == e.architecture.name)
            {
                assert!(e.cycles >= s.cycles);
            }
        }
    }

    #[test]
    fn custom_interconnect_shifts_the_space() {
        let w = suite::crypt(1);
        let db = ComponentDb::new();
        let paper = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .run();
        let free = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .interconnect(InterconnectModel::free())
            .run();
        for (p, f) in paper.evaluated.iter().zip(&free.evaluated) {
            assert!(f.area() < p.area(), "free interconnect must shrink area");
            assert!(f.exec_time() < p.exec_time());
        }
    }

    #[test]
    fn custom_model_wins_over_interconnect_regardless_of_order() {
        struct FlatArea;
        impl crate::models::AreaModel for FlatArea {
            fn area(&self, _: &Architecture, _: &ComponentDb) -> f64 {
                42.0
            }
        }
        let w = suite::crypt(1);
        let db = ComponentDb::new();
        // interconnect() *after* the custom model must not displace it.
        let result = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .area_model(FlatArea)
            .interconnect(InterconnectModel::free())
            .run();
        for e in &result.evaluated {
            assert_eq!(e.area(), 42.0);
        }
        // …and the free interconnect still reaches the default timing
        // model: zero bus penalty means a smaller clock than paper's.
        let paper = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .run();
        for (f, p) in result.evaluated.iter().zip(&paper.evaluated) {
            assert!(f.exec_time() < p.exec_time());
        }
    }

    #[test]
    fn unit_weights_are_bit_identical_to_unweighted() {
        let crypt = suite::crypt(1);
        let checksum = suite::checksum32();
        let db = ComponentDb::new();
        let plain = Exploration::over(TemplateSpace::tiny())
            .workloads([&crypt, &checksum])
            .with_db(&db)
            .run();
        let weighted = Exploration::over(TemplateSpace::tiny())
            .workload_weighted(&crypt, 1.0)
            .workload_weighted(&checksum, 1.0)
            .with_db(&db)
            .run();
        for (a, b) in plain.evaluated.iter().zip(&weighted.evaluated) {
            assert_eq!(a.objectives, b.objectives);
            assert_eq!(a.weighted_cycles, a.cycles as f64);
        }
    }

    #[test]
    fn weights_scale_the_exec_time_axis() {
        let w = suite::crypt(1);
        let db = ComponentDb::new();
        let base = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .run();
        let doubled = Exploration::over(TemplateSpace::tiny())
            .workload_weighted(&w, 2.0)
            .with_db(&db)
            .run();
        for (a, b) in base.evaluated.iter().zip(&doubled.evaluated) {
            assert_eq!(a.area(), b.area(), "weights never touch area");
            assert_eq!(2.0 * a.exec_time(), b.exec_time());
            assert_eq!(a.cycles, b.cycles, "raw cycles stay unweighted");
            assert_eq!(b.weighted_cycles, 2.0 * a.cycles as f64);
        }
    }

    #[test]
    fn weights_can_move_the_selection() {
        // crypt (no MUL needed) vs dct8 (MUL-bound) on a space with a
        // MUL knob: cranking the DSP member's weight far enough must
        // shift the equal-weight selection toward a machine that serves
        // it, and per-workload breakdowns must blame dct8 for every
        // MUL-less point.
        let crypt = suite::crypt(1);
        let dct = suite::dct8();
        let db = ComponentDb::new();
        let mut space = TemplateSpace::tiny();
        space.muls = vec![0, 1];
        let crypt_heavy = Exploration::over(space.clone())
            .workload_weighted(&crypt, 1000.0)
            .workload_weighted(&dct, 1.0)
            .with_db(&db)
            .run();
        let dct_heavy = Exploration::over(space)
            .workload_weighted(&crypt, 1.0)
            .workload_weighted(&dct, 1000.0)
            .with_db(&db)
            .run();
        // dct8 is in both suites, so only MUL-bearing points are
        // feasible and dct8 gets the blame for the rest.
        assert_eq!(crypt_heavy.blocked, vec![0, crypt_heavy.infeasible]);
        let b = crypt_heavy.workload_breakdown();
        assert_eq!(b[1].name, "dct8");
        assert_eq!(b[1].blocked, crypt_heavy.infeasible);
        assert!(b[1].selected_cycles.is_some());
        // The exec-time axis ordering may differ between the two
        // weightings; the selections both exist.
        assert!(crypt_heavy
            .try_select(&Weights::equal(3), Norm::Euclidean)
            .is_some());
        assert!(dct_heavy
            .try_select(&Weights::equal(3), Norm::Euclidean)
            .is_some());
    }

    #[test]
    fn overflowing_weighted_exec_time_drops_the_point() {
        // A finite-but-absurd weight overflows the weighted aggregate;
        // the point must drop as infeasible instead of carrying an
        // infinite axis into the norm selection (NaN comparisons).
        let w = suite::crypt(1);
        let result = Exploration::over(TemplateSpace::tiny())
            .workload_weighted(&w, 1e308)
            .run();
        assert!(result.evaluated.is_empty());
        assert_eq!(result.infeasible, TemplateSpace::tiny().len());
        assert!(result
            .try_select(&Weights::equal(0), Norm::Euclidean)
            .is_none());
    }

    #[test]
    fn invalid_weights_are_reported() {
        let w = suite::crypt(1);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let e = Exploration::over(TemplateSpace::tiny())
                .workload(&w)
                .workload_weighted(&w, bad)
                .try_run()
                .unwrap_err();
            assert_eq!(e, ExploreError::InvalidWeight(1), "{bad}");
        }
    }

    #[test]
    fn area_grows_with_units() {
        use tta_arch::template::TemplateBuilder;
        let db = ComponentDb::new();
        let model = AnnotatedAreaModel::default();
        let small = TemplateBuilder::new("s", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .build();
        let big = TemplateBuilder::new("b", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Alu)
            .fu(FuKind::Cmp)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .rf(8, 1, 2)
            .build();
        assert!(model.area(&big, &db) > model.area(&small, &db));
    }

    #[test]
    fn full_lift_costs_every_point_and_keeps_the_design_front() {
        let db = ComponentDb::new();
        let w = suite::crypt(1);
        let full = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .lift(LiftMode::Full)
            .run();
        assert_eq!(full.lift, LiftMode::Full);
        for e in &full.evaluated {
            assert_eq!(
                e.objectives.axes(),
                [Objective::Area, Objective::ExecTime, Objective::TestCost]
            );
            assert!(e.test_cost().is_some());
        }
        // The 3-D front contains the whole 2-D design front.
        let design = full.design_front();
        assert!(design.iter().all(|i| full.pareto.contains(i)));
        // Selection works over the 3-D front.
        assert!(full.try_select_equal_weights().is_some());
    }

    #[test]
    fn cache_status_distinguishes_missing_bypassed_and_flushed() {
        use crate::cache::SweepCache;
        let db = ComponentDb::new();
        let w = suite::crypt(1);
        let none = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .run();
        assert_eq!(none.cache_status, CacheStatus::NotAttached);

        let cache = SweepCache::in_memory();
        let flushed = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .cache(&cache)
            .run();
        assert_eq!(flushed.cache_status, CacheStatus::Flushed);

        // A fully unfingerprintable model stack bypasses caching.
        struct Opaque;
        impl crate::models::AreaModel for Opaque {
            fn area(&self, _: &Architecture, _: &ComponentDb) -> f64 {
                1.0
            }
        }
        struct OpaqueTime;
        impl crate::models::TimingModel for OpaqueTime {
            fn clock_period(&self, _: &Architecture, _: &ComponentDb) -> f64 {
                1.0
            }
        }
        struct OpaqueTest;
        impl crate::models::TestCostModel for OpaqueTest {
            fn test_cost(
                &self,
                a: &Architecture,
                db: &ComponentDb,
            ) -> crate::testcost::ArchTestCost {
                crate::testcost::architecture_test_cost(a, db)
            }
        }
        let cache = SweepCache::in_memory();
        let bypassed = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .models(Opaque, OpaqueTime, OpaqueTest)
            .cache(&cache)
            .run();
        assert_eq!(bypassed.cache_status, CacheStatus::Bypassed);
        assert!(cache.is_empty(), "nothing may be stored when bypassed");

        // In Full mode an unfingerprintable *test* model alone bypasses
        // the eval cache too (inline totals could not be validated).
        let cache = SweepCache::in_memory();
        let full_bypassed = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .test_cost_model(OpaqueTest)
            .lift(LiftMode::Full)
            .cache(&cache)
            .run();
        assert_eq!(full_bypassed.cache_status, CacheStatus::Bypassed);
        assert!(cache.is_empty());
    }

    #[test]
    fn simulated_cycles_reproduce_the_model_bit_identically() {
        // The analytic model is honest (the sim crate's property test),
        // so swapping the cycle source must not move a single bit of
        // the objectives, front or selection.
        let db = ComponentDb::new();
        let reg = tta_workloads::SuiteRegistry::standard();
        let members = reg
            .instantiate("paper", &tta_workloads::SuiteParams::fast())
            .unwrap();
        let model = Exploration::over(TemplateSpace::fast_default())
            .suite(&members)
            .with_db(&db)
            .run();
        let sim = Exploration::over(TemplateSpace::fast_default())
            .suite(&members)
            .with_db(&db)
            .cycle_source(CycleSource::Simulate)
            .run();
        assert_eq!(model.evaluated.len(), sim.evaluated.len());
        assert_eq!(model.pareto, sim.pareto);
        for (m, s) in model.evaluated.iter().zip(&sim.evaluated) {
            assert_eq!(m.cycles, s.cycles);
            assert_eq!(m.workload_cycles, s.workload_cycles);
            assert_eq!(
                m.objectives.values().to_vec(),
                s.objectives.values().to_vec()
            );
        }
        assert_eq!(
            model.select_equal_weights().architecture.name,
            sim.select_equal_weights().architecture.name
        );
    }

    #[test]
    fn cycle_source_separates_cache_addresses() {
        use crate::cache::SweepCache;
        let db = ComponentDb::new();
        let w = suite::crypt(1);
        let cache = SweepCache::in_memory();
        let model = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .cache(&cache)
            .run();
        let after_model = cache.len();
        assert!(after_model > 0);
        // A simulated sweep must not answer from (or collide with) the
        // model sweep's entries: same results, disjoint addresses.
        let sim = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .cache(&cache)
            .cycle_source(CycleSource::Simulate)
            .run();
        // Eval addresses must be disjoint: the simulated sweep cannot
        // answer from the model sweep's entries, so it stores one fresh
        // eval entry per point. (Test-lift entries *are* shared — the
        // test axis does not depend on the cycle source.)
        let after_sim = cache.len();
        assert_eq!(
            after_sim,
            after_model + sim.evaluated.len() + sim.infeasible,
            "one fresh eval entry per simulated point"
        );
        assert_eq!(model.pareto, sim.pareto);
        // Warm re-runs of each source stay bit-identical to cold ones.
        let model2 = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .with_db(&db)
            .cache(&cache)
            .run();
        assert_eq!(cache.len(), after_sim, "warm model run added entries");
        assert_eq!(model.pareto, model2.pareto);
        assert_eq!(model.evaluated.len(), model2.evaluated.len());
    }

    #[test]
    fn pre_cancelled_run_evaluates_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let result = Exploration::over(TemplateSpace::fast_default())
            .workload(&suite::crypt(1))
            .cancel_token(token)
            .run();
        assert!(result.cancelled);
        assert_eq!(result.search.evaluations, 0);
        assert!(result.evaluated.is_empty());
        let cp = result
            .checkpoint
            .expect("cancelled runs carry a checkpoint");
        assert!(cp.observations.is_empty());
    }

    #[test]
    fn cancellation_stops_within_one_chunk_of_the_request() {
        // Regression (PR 9): the batch loop used to have no cancellation
        // check between chunks — cancelling a huge-space job only took
        // effect after the entire in-flight batch. Cancel from the first
        // progress callback; the run must stop before a second chunk.
        let token = CancelToken::new();
        let cancel = token.clone();
        let result = Exploration::over(TemplateSpace::huge())
            .workload(&suite::crypt(1))
            .strategy(crate::search::Exhaustive::neighbour())
            .cancel_token(token)
            .progress(move |_| cancel.cancel())
            .run();
        assert!(result.cancelled);
        assert!(result.search.evaluations >= 1);
        assert!(
            result.search.evaluations <= CACHE_FLUSH_CHUNK,
            "cancelled after the first chunk must stop before the second: {}",
            result.search.evaluations
        );
        let cp = result.checkpoint.expect("checkpoint");
        assert_eq!(cp.observations.len(), result.search.evaluations);
    }

    #[test]
    fn progress_streams_every_chunk_without_changing_results() {
        let w = suite::crypt(1);
        let db = ComponentDb::new();
        let spec = || {
            Exploration::over(TemplateSpace::huge())
                .workload(&w)
                .with_db(&db)
                .strategy(crate::search::Exhaustive::neighbour())
                .budget(160)
        };
        let plain = spec().run();
        let snaps: Arc<std::sync::Mutex<Vec<SweepProgress>>> = Arc::default();
        let sink = Arc::clone(&snaps);
        let observed = spec()
            .progress(move |p| sink.lock().unwrap().push(p.clone()))
            .run();
        let snaps = snaps.lock().unwrap();
        // One snapshot per chunk, monotone, ending at the final tally.
        assert_eq!(snaps.len(), 160usize.div_ceil(CACHE_FLUSH_CHUNK));
        assert!(snaps.windows(2).all(|w| w[0].visited < w[1].visited));
        let last = snaps.last().unwrap();
        assert_eq!(last.visited, observed.search.evaluations);
        assert_eq!(last.feasible, observed.evaluated.len());
        assert_eq!(last.infeasible, observed.infeasible);
        assert_eq!(last.space_len, TemplateSpace::huge().len());
        // The result's stats are snapshotted after the lift stage, which
        // keeps using the memo arena — so the last chunk's snapshot
        // agrees on the fold counters and lower-bounds the arena ones.
        let (snap, fin) = (last.delta.unwrap(), observed.delta.unwrap());
        assert_eq!(snap.fold_carries, fin.fold_carries);
        assert_eq!(snap.scratch_fallbacks, fin.scratch_fallbacks);
        assert!(snap.arena_hits <= fin.arena_hits);
        // Observability only: the observer changes no result bit.
        assert_eq!(observed.pareto, plain.pareto);
        for (a, b) in observed.evaluated.iter().zip(&plain.evaluated) {
            assert_eq!(a.objectives, b.objectives);
        }
    }

    #[test]
    fn resumed_run_matches_uninterrupted_bit_for_bit() {
        use crate::cache::SweepCache;
        let w = suite::crypt(1);
        let db = ComponentDb::new();
        let spec = || {
            Exploration::over(TemplateSpace::huge())
                .workload(&w)
                .with_db(&db)
                .strategy(crate::search::Exhaustive::neighbour())
                .budget(160)
        };
        let full = spec().run();
        // Interrupt a caching run after its first chunk…
        let token = CancelToken::new();
        let cancel = token.clone();
        let cache = SweepCache::in_memory();
        let partial = spec()
            .cache(&cache)
            .cancel_token(token)
            .progress(move |_| cancel.cancel())
            .run();
        assert!(partial.cancelled);
        let cp = partial.checkpoint.expect("checkpoint");
        assert!(!cp.observations.is_empty());
        assert!(cp.observations.len() < 160);
        // …and resume it: the warm cache answers the replayed prefix
        // and the final result is bit-identical to the uninterrupted
        // run.
        let before_resume = cache.misses();
        let resumed = spec().cache(&cache).resume_search(cp).run();
        assert!(!resumed.cancelled);
        assert!(resumed.checkpoint.is_none());
        assert_eq!(resumed.evaluated.len(), full.evaluated.len());
        for (a, b) in resumed.evaluated.iter().zip(&full.evaluated) {
            assert_eq!(a.architecture.name, b.architecture.name);
            assert_eq!(a.objectives, b.objectives);
        }
        assert_eq!(resumed.pareto, full.pareto);
        assert_eq!(resumed.search.evaluations, full.search.evaluations);
        assert_eq!(resumed.search.rounds, full.search.rounds);
        // The replayed prefix was answered from the warm cache.
        assert!(cache.misses() - before_resume < 160);
    }

    #[test]
    fn objective_vector_is_typed_and_total() {
        let mut v = ObjectiveVector::new([(Objective::Area, 10.0)]);
        v.push(Objective::ExecTime, 20.0);
        assert_eq!(v.get(Objective::Area), Some(10.0));
        assert_eq!(v.get(Objective::TestCost), None);
        assert_eq!(v.values(), &[10.0, 20.0]);
        assert_eq!(v.project(&[Objective::ExecTime]).unwrap().values(), &[20.0]);
        assert!(v.project(&[Objective::Area, Objective::TestCost]).is_none());
    }

    #[test]
    fn netlist_fidelity_sweeps_and_differs_from_table() {
        let w = suite::crypt(1);
        let table = Exploration::over(TemplateSpace::tiny()).workload(&w).run();
        let netlist = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .fidelity(FidelityMode::Netlist)
            .run();
        assert_eq!(table.fidelity, FidelityMode::Table);
        assert_eq!(netlist.fidelity, FidelityMode::Netlist);
        // Same points are feasible under both fidelities; the exec-time
        // axis still carries the clock scale, the area axis the gate
        // count — both finite and positive.
        assert_eq!(table.evaluated.len(), netlist.evaluated.len());
        let mut area_differs = false;
        for (t, n) in table.evaluated.iter().zip(&netlist.evaluated) {
            assert_eq!(t.architecture.name, n.architecture.name);
            assert_eq!(t.cycles, n.cycles, "fidelity must not touch scheduling");
            let area = n.objectives.get(Objective::Area).unwrap();
            let exec = n.objectives.get(Objective::ExecTime).unwrap();
            assert!(area.is_finite() && area > 0.0, "{area}");
            assert!(exec.is_finite() && exec > 0.0, "{exec}");
            if area != t.objectives.get(Objective::Area).unwrap() {
                area_differs = true;
            }
        }
        assert!(
            area_differs,
            "elaborated area should not coincide with the table figures"
        );
        assert!(!netlist.pareto.is_empty());
        assert!(netlist.projection_holds());
    }

    #[test]
    fn netlist_fidelity_parallel_is_bit_identical_to_serial() {
        let w = suite::crypt(1);
        let serial = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .fidelity(FidelityMode::Netlist)
            .parallel(false)
            .run();
        let parallel = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .fidelity(FidelityMode::Netlist)
            .parallel(true)
            .run();
        assert_eq!(serial.evaluated.len(), parallel.evaluated.len());
        for (a, b) in serial.evaluated.iter().zip(&parallel.evaluated) {
            assert_eq!(a.architecture.name, b.architecture.name);
            assert_eq!(a.objectives, b.objectives);
        }
        assert_eq!(serial.pareto, parallel.pareto);
    }

    #[test]
    fn netlist_fidelity_respects_custom_models() {
        // An installed custom model wins over the fidelity knob: the
        // knob only fills *empty* slots.
        #[derive(Debug)]
        struct FlatArea;
        impl AreaModel for FlatArea {
            fn area(&self, _arch: &Architecture, _db: &ComponentDb) -> f64 {
                42.0
            }
        }
        let w = suite::crypt(1);
        let result = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .area_model(FlatArea)
            .fidelity(FidelityMode::Netlist)
            .run();
        for e in &result.evaluated {
            assert_eq!(e.objectives.get(Objective::Area), Some(42.0));
        }
    }

    #[test]
    fn netlist_fidelity_walk_matches_enumeration_order() {
        // The incremental elaborator reuses netlist segments along the
        // Gray-code neighbour walk; results must not depend on visit
        // order.
        let w = suite::crypt(1);
        let walked = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .fidelity(FidelityMode::Netlist)
            .strategy(crate::search::Exhaustive::neighbour())
            .run();
        let plain = Exploration::over(TemplateSpace::tiny())
            .workload(&w)
            .fidelity(FidelityMode::Netlist)
            .run();
        let mut walked: Vec<_> = walked
            .evaluated
            .iter()
            .map(|e| (e.architecture.name.clone(), e.objectives.clone()))
            .collect();
        let mut plain: Vec<_> = plain
            .evaluated
            .iter()
            .map(|e| (e.architecture.name.clone(), e.objectives.clone()))
            .collect();
        walked.sort_by(|a, b| a.0.cmp(&b.0));
        plain.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(walked, plain);
    }
}
