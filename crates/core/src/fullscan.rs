//! The classical full-scan baseline of Table 1.
//!
//! Full scan replaces *every* flip-flop — pipeline registers, socket
//! state and (for the flip-flop implementation) register-file storage —
//! by scan flip-flops on one chain, and shifts every pattern through it:
//! `cycles = np·(nl+1) + nl`. The paper's point is that this costs an
//! order of magnitude more cycles than applying the same structural
//! patterns functionally over the move buses.

use std::collections::HashMap;

use tta_atpg::{Atpg, AtpgConfig};
use tta_dft::scan::insert_scan;
use tta_dft::testtime::full_scan_cycles;

use crate::backannotate::ComponentKey;
use crate::testcost::socket_state_bits;

/// Full-scan figures for one component.
#[derive(Debug, Clone)]
pub struct FullScanRecord {
    /// Scan pattern count (component logic + socket logic).
    pub np: usize,
    /// Total chain length: every flip-flop of component + sockets.
    pub nl: usize,
    /// Test application cycles `np·(nl+1) + nl`.
    pub cycles: usize,
    /// Area overhead of scan insertion, NAND2 equivalents.
    pub area_overhead: f64,
    /// Fault coverage of the scan pattern set (testable faults).
    pub fault_coverage: f64,
}

/// Lazy cache of full-scan baselines.
#[derive(Debug)]
pub struct FullScanDb {
    atpg: Atpg,
    cache: HashMap<ComponentKey, FullScanRecord>,
}

impl Default for FullScanDb {
    fn default() -> Self {
        Self::new()
    }
}

impl FullScanDb {
    /// Database with default ATPG settings.
    pub fn new() -> Self {
        FullScanDb {
            atpg: Atpg::new(AtpgConfig::default()),
            cache: HashMap::new(),
        }
    }

    /// Fetches (computing on first use) the full-scan record for `key`.
    ///
    /// The component is scan-inserted structurally; ATPG then runs on the
    /// scanned netlist's full-scan view. Socket logic patterns and state
    /// bits are added on top (one chain, as the paper assumes).
    pub fn get(&mut self, key: ComponentKey, n_input_ports: usize) -> &FullScanRecord {
        if !self.cache.contains_key(&key) {
            let record = self.compute(key, n_input_ports);
            self.cache.insert(key, record);
        }
        &self.cache[&key]
    }

    fn compute(&self, key: ComponentKey, n_input_ports: usize) -> FullScanRecord {
        let component = key.generate();
        let scanned = insert_scan(&component.netlist);
        let comp_result = self.atpg.run(&component.netlist);
        // Socket logic joins the same chain. Checked narrowing, like the
        // other cost paths: an out-of-model geometry must fail loudly
        // instead of scanning a silently truncated socket group.
        let width = u16::try_from(component.width).expect("component width fits the key fields");
        let sock = ComponentKey::socket_group(width, n_input_ports)
            .expect("socket group port count fits the key fields")
            .generate();
        let sock_result = self.atpg.run(&sock.netlist);
        let np = comp_result.pattern_count() + sock_result.pattern_count();
        let nl = component.netlist.dff_count() + socket_state_bits(n_input_ports);
        FullScanRecord {
            np,
            nl,
            cycles: full_scan_cycles(np, nl),
            area_overhead: scanned.area_overhead(),
            fault_coverage: comp_result.adjusted_coverage(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backannotate::ComponentDb;
    use crate::testcost::architecture_test_cost;
    use tta_arch::template::TemplateBuilder;
    use tta_arch::FuKind;

    #[test]
    fn full_scan_costs_an_order_of_magnitude_more() {
        // The paper's headline comparison, at 8 bits: the functional
        // approach needs far fewer cycles than full scan.
        let mut fsdb = FullScanDb::new();
        let db = ComponentDb::new();
        let arch = TemplateBuilder::new("t", 8, 2)
            .fu(FuKind::Alu)
            .fu(FuKind::Cmp)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .fu(FuKind::Immediate)
            .rf(8, 1, 2)
            .build();
        let ours = architecture_test_cost(&arch, &db);
        let alu_ours = ours
            .components
            .iter()
            .find(|c| c.name.starts_with("alu"))
            .unwrap()
            .our_approach_cycles();
        let alu_scan = fsdb.get(ComponentKey::Alu(8), 2).cycles as f64;
        assert!(
            alu_scan > 3.0 * alu_ours,
            "full scan {alu_scan} vs ours {alu_ours}"
        );
    }

    #[test]
    fn scan_adds_area() {
        let mut fsdb = FullScanDb::new();
        let rec = fsdb.get(ComponentKey::Cmp(8), 2).clone();
        assert!(rec.area_overhead > 0.0);
        assert!(rec.fault_coverage > 0.98);
        assert_eq!(rec.cycles, full_scan_cycles(rec.np, rec.nl));
    }
}
