//! Pareto filtering in N dimensions (minimisation).
//!
//! "Pareto points limit the design space such that ∀ (a, t) ∈ ϑ²(a, t),
//! (a ≥ ap ∨ t ≥ tp)" — generalised here to any dimensionality so the
//! same code produces the 2-D front of Figure 2 and the 3-D front of
//! Figure 8.

/// Does `a` dominate `b` (all coordinates ≤, at least one <)?
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the Pareto-optimal points of `points` (minimisation in
/// every coordinate). Duplicate coordinate vectors all survive.
///
/// 2-D NaN-free inputs — the sweep's hot shape — take an O(n log n)
/// sort-and-scan path; everything else falls back to the O(n²)
/// pairwise scan ([`pareto_front_reference`], which also serves as the
/// verification oracle the fast path is property-tested against).
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    let fast_2d = points
        .iter()
        .all(|p| p.len() == 2 && !p[0].is_nan() && !p[1].is_nan());
    if fast_2d {
        pareto_front_2d(points)
    } else {
        pareto_front_reference(points)
    }
}

/// The generic O(n²) pairwise Pareto filter — the reference
/// implementation every optimised path (the 2-D sort-and-scan of
/// [`pareto_front`], the streaming [`ParetoArchive`]) must agree with.
pub fn pareto_front_reference(points: &[Vec<f64>]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && dominates(q, p) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

/// O(n log n) 2-D front: sort by (x, y) ascending, then sweep. Every
/// dominator of a point sorts strictly before it, so a point survives
/// exactly when its y is strictly below the best y seen in earlier
/// *coordinate groups* (exact duplicates share a group and survive or
/// fall together, matching [`dominates`]' strictness requirement).
/// Requires NaN-free 2-D input — callers check. The sort must use
/// arithmetic comparison (total on NaN-free data), not `total_cmp`:
/// `dominates` sees -0.0 and 0.0 as equal, and `total_cmp` ordering
/// them apart would let a 0.0-coordinate dominator sort *after* its
/// -0.0 victim, breaking the sweep invariant.
fn pareto_front_2d(points: &[Vec<f64>]) -> Vec<usize> {
    let cmp = |a: f64, b: f64| a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| cmp(points[a][0], points[b][0]).then(cmp(points[a][1], points[b][1])));
    let mut front = Vec::new();
    let mut best_y = f64::INFINITY;
    let mut i = 0;
    while i < order.len() {
        let (x, y) = (points[order[i]][0], points[order[i]][1]);
        let mut j = i;
        while j < order.len() && points[order[j]][0] == x && points[order[j]][1] == y {
            j += 1;
        }
        if y < best_y {
            front.extend_from_slice(&order[i..j]);
            best_y = y;
        }
        i = j;
    }
    front.sort_unstable();
    front
}

/// Checks the paper's boundary property: no kept point is dominated.
pub fn is_pareto_set(points: &[Vec<f64>], kept: &[usize]) -> bool {
    kept.iter().all(|&i| {
        points
            .iter()
            .enumerate()
            .all(|(j, q)| i == j || !dominates(q, &points[i]))
    })
}

/// An incrementally maintained Pareto front (minimisation).
///
/// [`pareto_front`] re-scans the full point set, which is fine for one
/// batch sweep but O(n²) when evaluations *stream* in — exactly what
/// budgeted search strategies produce, and what their guidance loop
/// reads after every batch. The archive instead does an insert-time
/// dominance check against the current front only: a dominated
/// candidate is rejected outright, an accepted one evicts whatever it
/// dominates. Because domination is transitive, the surviving set is
/// always exactly the Pareto front of everything offered so far,
/// regardless of insertion order (property-tested against
/// [`pareto_front_reference`]).
///
/// Each point carries a caller-chosen `id` (the sweep uses the index
/// into its `evaluated` vector); [`ParetoArchive::ids`] returns the
/// front's ids in ascending order, matching [`pareto_front`]'s output
/// order.
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive {
    entries: Vec<(usize, Vec<f64>)>,
    offered: usize,
    /// Position (into `entries`) of the member that rejected the most
    /// recent dominated candidate. Streamed candidates arrive in walk
    /// or enumeration order, so consecutive rejections overwhelmingly
    /// share a dominator — probing it first turns the common rejection
    /// from an O(front) scan into O(1). Pure caching: which member
    /// rejects a candidate never changes the outcome, so the front is
    /// bit-identical with or without the hint. Invalidated on accept
    /// (eviction may shift positions).
    last_dominator: Option<usize>,
}

impl ParetoArchive {
    /// An empty archive.
    pub fn new() -> Self {
        ParetoArchive::default()
    }

    /// Offers a point. Returns `true` when the point joins the front
    /// (evicting any members it dominates), `false` when an existing
    /// member dominates it. Duplicate coordinate vectors all survive,
    /// like [`pareto_front`].
    ///
    /// Rejection cost: O(1) when the previous rejection's dominator
    /// also dominates this candidate (the streaming hot path — see
    /// `last_dominator`), O(front) otherwise. Acceptance stays
    /// O(front) — it must, to evict everything the newcomer dominates.
    pub fn try_insert(&mut self, id: usize, point: &[f64]) -> bool {
        self.offered += 1;
        if let Some(d) = self.last_dominator {
            if let Some((_, q)) = self.entries.get(d) {
                if dominates(q, point) {
                    return false;
                }
            }
        }
        if let Some(d) = self.entries.iter().position(|(_, q)| dominates(q, point)) {
            self.last_dominator = Some(d);
            return false;
        }
        self.entries.retain(|(_, q)| !dominates(point, q));
        self.entries.push((id, point.to_vec()));
        self.last_dominator = None;
        true
    }

    /// Ids of the current front, ascending.
    pub fn ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.entries.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// The current front as `(id, coordinates)` pairs, in insertion
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.entries.iter().map(|(id, p)| (*id, p.as_slice()))
    }

    /// Whether `id` is currently on the front.
    pub fn contains(&self, id: usize) -> bool {
        self.entries.iter().any(|&(i, _)| i == id)
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of points offered via [`ParetoArchive::try_insert`].
    pub fn offered(&self) -> usize {
        self.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_2d_front() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 4.0], // dominated by (2,3)
            vec![4.0, 1.0],
            vec![4.0, 4.0], // dominated
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1, 3]);
        assert!(is_pareto_set(&pts, &front));
    }

    #[test]
    fn three_d_front_keeps_tradeoffs() {
        let pts = vec![
            vec![1.0, 9.0, 9.0],
            vec![9.0, 1.0, 9.0],
            vec![9.0, 9.0, 1.0],
            vec![8.0, 8.0, 8.0], // not dominated by any single point
            vec![9.5, 9.5, 9.5], // dominated by (8,8,8)
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1, 2, 3]);
    }

    #[test]
    fn equal_points_both_survive() {
        let pts = vec![vec![2.0, 2.0], vec![2.0, 2.0]];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn domination_requires_strictness() {
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[2.0, 1.0], &[1.0, 3.0]));
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn fast_2d_path_agrees_with_reference_on_ties_and_duplicates() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![1.0, 5.0], // duplicate of a front point: both survive
            vec![1.0, 6.0], // same x, larger y: dominated
            vec![2.0, 5.0], // same y as (1,5), larger x: dominated
            vec![2.0, 3.0],
            vec![4.0, 1.0],
            vec![4.0, 4.0],
        ];
        assert_eq!(pareto_front(&pts), pareto_front_reference(&pts));
        assert_eq!(pareto_front(&pts), vec![0, 1, 4, 5]);
    }

    #[test]
    fn nan_coordinates_fall_back_to_the_reference_scan() {
        let pts = vec![vec![f64::NAN, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        // `dominates` sees NaN comparisons as false, so a NaN
        // coordinate acts like "≤ everything": (NaN, 1) dominates both
        // finite points here. The fast path cannot reproduce that, so
        // NaN inputs must take the reference scan.
        assert_eq!(pareto_front(&pts), pareto_front_reference(&pts));
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn fast_2d_path_handles_signed_zero_like_the_reference() {
        // `dominates` treats -0.0 and 0.0 as equal, so (0.0, 3) must
        // dominate (-0.0, 5) even though total_cmp would sort the
        // dominator *after* its victim.
        let pts = vec![vec![-0.0, 5.0], vec![0.0, 3.0]];
        assert_eq!(pareto_front_reference(&pts), vec![1]);
        assert_eq!(pareto_front(&pts), pareto_front_reference(&pts));
        // And exact signed-zero duplicates all survive, like any
        // coordinate-equal pair.
        let dups = vec![vec![-0.0, 3.0], vec![0.0, 3.0]];
        assert_eq!(pareto_front(&dups), pareto_front_reference(&dups));
        assert_eq!(pareto_front(&dups), vec![0, 1]);
    }

    #[test]
    fn archive_streams_to_the_same_front() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 4.0],
            vec![4.0, 1.0],
            vec![4.0, 4.0],
        ];
        let mut archive = ParetoArchive::new();
        let accepted: Vec<bool> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| archive.try_insert(i, p))
            .collect();
        assert_eq!(accepted, vec![true, true, false, true, false]);
        assert_eq!(archive.ids(), pareto_front(&pts));
        assert_eq!(archive.offered(), pts.len());
        assert!(archive.contains(3) && !archive.contains(2));
    }

    #[test]
    fn cached_dominator_survives_eviction_reshuffles() {
        // Stress the last_dominator hint across every state change:
        // repeated rejections by the same member, rejection by a
        // *different* member (cache miss → rescan), and an accept that
        // evicts members and shifts positions. The verdicts must match
        // a hint-free archive exactly.
        let offers: Vec<Vec<f64>> = vec![
            vec![5.0, 5.0],   // accept
            vec![50.0, 50.0], // rejected by (5,5) — cache primed
            vec![51.0, 50.0], // rejected, cache hit
            vec![52.0, 50.0], // rejected, cache hit
            vec![1.0, 9.0],   // accept (cache cleared)
            vec![2.0, 9.5],   // rejected by (1,9), not by cached slot
            vec![0.5, 0.5],   // accept: evicts BOTH members
            vec![3.0, 3.0],   // rejected by the survivor at position 0
            vec![0.5, 0.5],   // duplicate of the survivor: accepted
        ];
        let mut archive = ParetoArchive::new();
        let verdicts: Vec<bool> = offers
            .iter()
            .enumerate()
            .map(|(i, p)| archive.try_insert(i, p))
            .collect();
        assert_eq!(
            verdicts,
            vec![true, false, false, false, true, false, true, false, true]
        );
        assert_eq!(archive.ids(), pareto_front(&offers));
        assert_eq!(archive.offered(), offers.len());
    }

    #[test]
    fn archive_evicts_dominated_members() {
        let mut archive = ParetoArchive::new();
        assert!(archive.try_insert(0, &[5.0, 5.0]));
        assert!(archive.try_insert(1, &[6.0, 4.0]));
        // Dominates both members: they are evicted, the newcomer stays.
        assert!(archive.try_insert(2, &[4.0, 3.0]));
        assert_eq!(archive.ids(), vec![2]);
        // A duplicate of a member survives alongside it.
        assert!(archive.try_insert(3, &[4.0, 3.0]));
        assert_eq!(archive.ids(), vec![2, 3]);
        assert_eq!(archive.len(), 2);
    }
}
