//! Pareto filtering in N dimensions (minimisation).
//!
//! "Pareto points limit the design space such that ∀ (a, t) ∈ ϑ²(a, t),
//! (a ≥ ap ∨ t ≥ tp)" — generalised here to any dimensionality so the
//! same code produces the 2-D front of Figure 2 and the 3-D front of
//! Figure 8.

/// Does `a` dominate `b` (all coordinates ≤, at least one <)?
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the Pareto-optimal points of `points` (minimisation in
/// every coordinate). Duplicate coordinate vectors all survive.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && dominates(q, p) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

/// Checks the paper's boundary property: no kept point is dominated.
pub fn is_pareto_set(points: &[Vec<f64>], kept: &[usize]) -> bool {
    kept.iter().all(|&i| {
        points
            .iter()
            .enumerate()
            .all(|(j, q)| i == j || !dominates(q, &points[i]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_2d_front() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 4.0], // dominated by (2,3)
            vec![4.0, 1.0],
            vec![4.0, 4.0], // dominated
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1, 3]);
        assert!(is_pareto_set(&pts, &front));
    }

    #[test]
    fn three_d_front_keeps_tradeoffs() {
        let pts = vec![
            vec![1.0, 9.0, 9.0],
            vec![9.0, 1.0, 9.0],
            vec![9.0, 9.0, 1.0],
            vec![8.0, 8.0, 8.0], // not dominated by any single point
            vec![9.5, 9.5, 9.5], // dominated by (8,8,8)
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1, 2, 3]);
    }

    #[test]
    fn equal_points_both_survive() {
        let pts = vec![vec![2.0, 2.0], vec![2.0, 2.0]];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn domination_requires_strictness() {
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[2.0, 1.0], &[1.0, 3.0]));
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }
}
