//! Persistent, content-addressed evaluation cache for the sweep.
//!
//! Paper-scale explorations re-evaluate the same `(architecture,
//! workload suite, cost models)` points across runs — every figure
//! regeneration, every weight-sensitivity study, every interrupted
//! sweep restarted from scratch pays the full scheduling + annotation
//! bill again. [`SweepCache`] removes that bill: each evaluated point is
//! stored under a 64-bit *content address* derived from everything that
//! determines its result —
//!
//! * the architecture itself (width, buses, every FU/RF with its
//!   port→bus assignment),
//! * the workload suite (names, traces, memory images, iteration
//!   counts, in order),
//! * the cost-model fingerprints ([`crate::models::AreaModel::fingerprint`]
//!   and friends — models that cannot describe themselves opt the run
//!   out of caching entirely),
//! * the cache format version.
//!
//! Change any input and the address changes, so stale entries are never
//! *returned*, only *ignored* — there is no invalidation protocol to get
//! wrong. Results are stored as raw `f64` bit patterns, which makes a
//! warm-cache run **bit-identical** to a cold one (and to serial vs
//! parallel runs, which were already bit-identical).
//!
//! # On-disk format
//!
//! One plain-text file, `ttadse-cache.v3`, under the chosen cache
//! directory. The first line is a versioned header; each subsequent
//! line is one entry:
//!
//! ```text
//! ttadse-sweep-cache 3
//! E <key> F <cycles> <spills> <area-bits> <exec-bits> <wl-cycles>... [T <model-fp> <test-bits>]
//! E <key> I [<blocked-workload>]
//! T <key> <testcost-bits>
//! ```
//!
//! `E` lines are sweep evaluations (`F`easible with payload,
//! `I`nfeasible, optionally recording which suite member failed to
//! schedule), `T` lines are test-cost lifts of Pareto points. The
//! optional `T <model-fp> <test-bits>` suffix on a feasible `E` line is
//! new in v3: a full-lift sweep
//! ([`crate::explore::LiftMode::Full`]) stores every point's test
//! total inline, tagged with the test-cost model's fingerprint so a
//! different model recomputes instead of trusting a stale total. A
//! legacy `ttadse-cache.v2` file (same line grammar minus the suffix)
//! is still loaded when no v3 file exists — its evaluations hit under
//! unchanged content addresses, and the missing per-point test fields
//! are simply recomputed. A missing file, a wrong header, or any
//! malformed line degrades to a clean re-evaluation — a corrupt cache
//! can cost time, never correctness.
//! [`SweepCache::flush`] merges with whatever is on disk before an
//! atomic rename, so concurrent sweeps sharing one directory union
//! their work on a best-effort basis: the rename keeps the file valid
//! at all times, but two *simultaneous* flushes race and the loser's
//! newest entries may need re-evaluating later — again time, never
//! correctness.
//!
//! # Example
//!
//! ```no_run
//! use tta_arch::template::TemplateSpace;
//! use tta_core::cache::SweepCache;
//! use tta_core::explore::Exploration;
//! use tta_workloads::suite;
//!
//! let cache = SweepCache::open("/tmp/ttadse-cache").unwrap();
//! let result = Exploration::over(TemplateSpace::paper_default())
//!     .workload(&suite::crypt(16))
//!     .cache(&cache)
//!     .run(); // second run: every point is a cache hit
//! println!("hits {}, misses {}", cache.hits(), cache.misses());
//! # let _ = result;
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use tta_arch::Architecture;
use tta_workloads::Workload;

/// On-disk *file layout* version: the header number and line grammar.
/// v3 added the optional inline test field on feasible `E` lines; v2
/// files (the previous layout) are still loaded when no v3 file exists.
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// *Content-address* version, folded into every entry's key. Bump it
/// whenever cached results could stop matching fresh ones: a
/// fingerprint-recipe change, but also any change to *evaluation
/// semantics* the fingerprints cannot see — the scheduler, the
/// component netlist generators, the ATPG/march engines, or the cost
/// formulas. The content address covers a point's inputs, not the code
/// that evaluates it; this constant is the version of that code. It is
/// deliberately separate from [`CACHE_FORMAT_VERSION`]: the v3 file
/// layout changed how entries are *stored*, not what they *mean*, so
/// v2 entries keep their addresses and stay hittable after an upgrade.
pub const CACHE_ADDRESS_VERSION: u32 = 2;

/// File name of the cache inside the cache directory (versioned, so a
/// future format lives alongside instead of tripping over this one).
pub const CACHE_FILE_NAME: &str = "ttadse-cache.v3";

/// File name of the legacy v2 cache, read (never written) when no v3
/// file exists so an upgraded binary resumes from pre-v3 sweeps.
pub const LEGACY_CACHE_FILE_NAME: &str = "ttadse-cache.v2";

const HEADER: &str = "ttadse-sweep-cache 3";

const LEGACY_HEADER: &str = "ttadse-sweep-cache 2";

// ---------------------------------------------------------------------
// Content addressing
// ---------------------------------------------------------------------

/// Incremental FNV-1a 64-bit hasher — the workspace has no external
/// hashing crate, and the cache needs a *stable* hash (Rust's `Hasher`
/// default is randomised per process), so the recipe is spelled out
/// here.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Starts a fingerprint from the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Absorbs a string (length-prefixed, so `"ab" + "c"` and
    /// `"a" + "bc"` hash differently).
    pub fn str(self, s: &str) -> Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Absorbs a `u64`.
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs an `f64` as its exact bit pattern.
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// The accumulated 64-bit digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// Content address of one architecture: width, bus count, and every
/// FU/RF instance with its full port→bus assignment (the assignment
/// changes transport cycles and hence both schedules and test cost).
pub fn arch_fingerprint(arch: &Architecture) -> u64 {
    let mut f = Fingerprint::new()
        .str("arch")
        .u64(arch.width as u64)
        .u64(arch.buses as u64)
        .u64(arch.fus.len() as u64)
        .u64(arch.rfs.len() as u64);
    for fu in &arch.fus {
        f = f
            .str(fu.kind.mnemonic())
            .str(&fu.name)
            .u64(u64::from(fu.operand_bus.0))
            .u64(u64::from(fu.trigger_bus.0))
            .u64(u64::from(fu.result_bus.0));
    }
    for rf in &arch.rfs {
        f = f
            .str(&rf.name)
            .u64(rf.regs as u64)
            .u64(rf.write_ports.len() as u64)
            .u64(rf.read_ports.len() as u64);
        for b in rf.write_ports.iter().chain(&rf.read_ports) {
            f = f.u64(u64::from(b.0));
        }
    }
    f.finish()
}

/// Content address of one workload: name, iteration multiplier, inputs,
/// memory image and the full dataflow trace (via its `Debug` rendering,
/// which lists every node, operation and edge).
pub fn workload_fingerprint(w: &Workload) -> u64 {
    let mut f = Fingerprint::new()
        .str("workload")
        .str(&w.name)
        .u64(w.trace_iterations)
        .u64(w.inputs.len() as u64);
    for &v in &w.inputs {
        f = f.u64(v);
    }
    f = f.u64(w.mem.len() as u64);
    for &v in &w.mem {
        f = f.u64(v);
    }
    f.str(&format!("{:?}", w.dfg)).finish()
}

// ---------------------------------------------------------------------
// Entries
// ---------------------------------------------------------------------

/// A cached sweep evaluation of one architecture on one workload suite.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalEntry {
    /// The point was infeasible — cached so re-runs skip the scheduling
    /// attempt.
    Infeasible {
        /// Suite index of the first workload that failed to schedule,
        /// or `None` when the point fell outside the component model's
        /// domain instead. Cached so warm per-workload feasibility
        /// breakdowns are identical to cold ones.
        blocked: Option<u32>,
    },
    /// A feasible evaluation; floats are carried as exact bit patterns.
    Feasible {
        /// Aggregate full-application cycles.
        cycles: u64,
        /// Per-workload cycle counts, in suite order.
        workload_cycles: Vec<u64>,
        /// Register-pressure spill events.
        spills: u32,
        /// `f64::to_bits` of the area objective.
        area_bits: u64,
        /// `f64::to_bits` of the exec-time objective.
        exec_bits: u64,
        /// Inline test total from a full-lift sweep
        /// ([`crate::explore::LiftMode::Full`]): the test-cost model's
        /// fingerprint plus `f64::to_bits` of the total. `None` for
        /// entries written by Pareto-only sweeps (or upgraded from a v2
        /// file), where the lift stage keys its totals separately as
        /// `T` lines. The fingerprint tag means a run with a different
        /// test model recomputes instead of trusting a stale total.
        test: Option<(u64, u64)>,
    },
}

#[derive(Debug, Clone, PartialEq)]
enum Entry {
    Eval(EvalEntry),
    /// `f64::to_bits` of a lifted eq.-(14) test-cost total.
    Test(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Kind {
    Eval,
    Test,
}

// ---------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------

/// Number of independent lock shards the in-memory map is split over.
/// Entries are assigned by the low bits of their content address —
/// FNV-1a output, so the low nibble is uniformly distributed — which
/// lets concurrent sweeps (the serve daemon runs many jobs against one
/// process-wide cache) proceed without serialising on a single mutex.
const SHARDS: usize = 16;

/// Shard index of a content address (kind-independent: `E` and `T`
/// entries for the same point land in the same shard, which keeps a
/// point's full record under one lock).
fn shard_of(key: u64) -> usize {
    (key & (SHARDS as u64 - 1)) as usize
}

/// A persistent, thread-safe evaluation cache (see the [module
/// docs](self) for the design and the on-disk format).
///
/// The in-memory map is split over 16 lock shards keyed by
/// the low bits of the content address, so concurrent jobs sharing one
/// warm cache contend only when their chunks touch the same shard. All
/// shard locks are *poison-tolerant*: a panicking evaluation thread
/// (the serve daemon isolates worker panics with `catch_unwind`) never
/// renders the shared cache unusable — the map data is always in a
/// consistent state when a lock is released, because no cache method
/// leaves an entry half-written.
#[derive(Debug)]
pub struct SweepCache {
    path: PathBuf,
    shards: [Mutex<HashMap<(Kind, u64), Entry>>; SHARDS],
    dirty: std::sync::atomic::AtomicBool,
    /// `(len, mtime)` of the on-disk file as of the last load or flush —
    /// an rsync-style quick check so chunked flushes skip re-parsing a
    /// file nobody else has touched (re-reading a growing file every
    /// chunk would make persistence O(N²) over a large sweep).
    disk_state: Mutex<Option<(u64, std::time::SystemTime)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Counted *lookup operations* (lock acquisitions for reading), as
    /// opposed to the per-key hit/miss tallies: a batched lookup of 64
    /// keys is 1 read but 64 hit/miss counts. Regression guard for the
    /// sweep loop's access pattern — see [`SweepCache::reads`].
    reads: AtomicU64,
}

/// Quick-check signature of the file at `path`.
fn stat_sig(path: &Path) -> Option<(u64, std::time::SystemTime)> {
    let meta = fs::metadata(path).ok()?;
    Some((meta.len(), meta.modified().ok()?))
}

impl SweepCache {
    /// Opens (creating the directory if needed) the cache under `dir`,
    /// loading whatever valid entries the on-disk file holds. When no
    /// v3 file exists, a legacy `ttadse-cache.v2` file is loaded
    /// instead (entries keep their content addresses; the first flush
    /// persists them in the v3 layout). A missing, corrupt or
    /// version-mismatched file yields an empty cache — never an error;
    /// only an unusable *directory* is reported.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when `dir` cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<SweepCache> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(CACHE_FILE_NAME);
        let (entries, disk_state) = match load_entries(&path, HEADER) {
            Some(entries) => (entries, stat_sig(&path)),
            None => match load_entries(&dir.join(LEGACY_CACHE_FILE_NAME), LEGACY_HEADER) {
                // Upgrade path: the legacy entries live in memory only
                // until something is stored and flushed; the v2 file is
                // left untouched for any older binary still around.
                Some(entries) => (entries, None),
                None => (HashMap::new(), None),
            },
        };
        let mut shards: [HashMap<(Kind, u64), Entry>; SHARDS] =
            std::array::from_fn(|_| HashMap::new());
        for (k, v) in entries {
            shards[shard_of(k.1)].insert(k, v);
        }
        Ok(SweepCache {
            path,
            shards: shards.map(Mutex::new),
            dirty: std::sync::atomic::AtomicBool::new(false),
            disk_state: Mutex::new(disk_state),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        })
    }

    /// An in-memory cache that never touches disk ([`SweepCache::flush`]
    /// is a no-op). Useful for tests and for sharing work between
    /// repeated in-process runs.
    pub fn in_memory() -> SweepCache {
        SweepCache {
            path: PathBuf::new(),
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            dirty: std::sync::atomic::AtomicBool::new(false),
            disk_state: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        }
    }

    /// Locks shard `i`, shrugging off poison: the map data protected by
    /// a shard lock is never left half-written (every cache method
    /// completes its single map operation before anything that can
    /// panic), so a poisoned guard's contents are safe to keep serving.
    /// Without this, one panicking job in a long-lived daemon would
    /// permanently wedge every later job on `PoisonError`.
    fn shard(&self, i: usize) -> MutexGuard<'_, HashMap<(Kind, u64), Entry>> {
        self.shards[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the shard owning `key`.
    fn shard_for(&self, key: u64) -> MutexGuard<'_, HashMap<(Kind, u64), Entry>> {
        self.shard(shard_of(key))
    }

    /// The on-disk file this cache persists to (empty for
    /// [`SweepCache::in_memory`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up a sweep evaluation. Hit/miss counters are updated, and
    /// the operation counts as one read.
    pub fn lookup_eval(&self, key: u64) -> Option<EvalEntry> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let found = match self.shard_for(key).get(&(Kind::Eval, key)) {
            Some(Entry::Eval(e)) => Some(e.clone()),
            _ => None,
        };
        self.count(found.is_some());
        found
    }

    /// Looks up a whole batch of sweep evaluations, acquiring each
    /// *touched shard's* lock exactly once — the sweep engine
    /// prefetches each planned chunk this way instead of probing the
    /// cache once per point inside the hot loop. Per-key hit/miss
    /// counters are updated exactly as `n` individual
    /// [`SweepCache::lookup_eval`] calls would, but the whole batch
    /// counts as a single read ([`SweepCache::reads`]).
    pub fn lookup_eval_batch(&self, keys: &[u64]) -> Vec<Option<EvalEntry>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        // Group key positions per shard so each shard lock is taken at
        // most once per batch, then answered in input order.
        let mut by_shard: [Vec<usize>; SHARDS] = std::array::from_fn(|_| Vec::new());
        for (pos, &key) in keys.iter().enumerate() {
            by_shard[shard_of(key)].push(pos);
        }
        let mut out: Vec<Option<EvalEntry>> = vec![None; keys.len()];
        let mut hits = 0u64;
        for (i, positions) in by_shard.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let shard = self.shard(i);
            for &pos in positions {
                if let Some(Entry::Eval(e)) = shard.get(&(Kind::Eval, keys[pos])) {
                    hits += 1;
                    out[pos] = Some(e.clone());
                }
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses
            .fetch_add(keys.len() as u64 - hits, Ordering::Relaxed);
        out
    }

    /// Whether an evaluation for `key` is present, *without* touching
    /// the hit/miss counters — for planning passes (e.g. deciding which
    /// component keys still need pre-warming) that precede the counted
    /// lookup.
    pub fn contains_eval(&self, key: u64) -> bool {
        matches!(
            self.shard_for(key).get(&(Kind::Eval, key)),
            Some(Entry::Eval(_))
        )
    }

    /// Whether `key` holds an evaluation that a *full-lift* sweep
    /// ([`crate::explore::LiftMode::Full`]) can answer without touching
    /// the component database: an infeasible entry, or a feasible one
    /// whose inline test total was produced by the test model with
    /// fingerprint `test_fp`. Counter-free, like
    /// [`SweepCache::contains_eval`] — used by the pre-warm planning
    /// pass, where an entry missing its test field still needs its
    /// component keys annotated.
    pub fn contains_eval_with_test(&self, key: u64, test_fp: u64) -> bool {
        match self.shard_for(key).get(&(Kind::Eval, key)) {
            Some(Entry::Eval(EvalEntry::Infeasible { .. })) => true,
            Some(Entry::Eval(EvalEntry::Feasible {
                test: Some((fp, _)),
                ..
            })) => *fp == test_fp,
            _ => false,
        }
    }

    /// Whether a test-cost lift for `key` is present, *without* touching
    /// the hit/miss counters — the lift-stage mirror of
    /// [`SweepCache::contains_eval`].
    pub fn contains_test(&self, key: u64) -> bool {
        matches!(
            self.shard_for(key).get(&(Kind::Test, key)),
            Some(Entry::Test(_))
        )
    }

    /// Stores a sweep evaluation (in memory; [`SweepCache::flush`]
    /// persists).
    pub fn store_eval(&self, key: u64, entry: EvalEntry) {
        self.shard_for(key)
            .insert((Kind::Eval, key), Entry::Eval(entry));
        self.dirty.store(true, Ordering::Release);
    }

    /// Looks up a lifted test-cost total (exact bit pattern). One read.
    pub fn lookup_test(&self, key: u64) -> Option<f64> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let found = match self.shard_for(key).get(&(Kind::Test, key)) {
            Some(Entry::Test(bits)) => Some(f64::from_bits(*bits)),
            _ => None,
        };
        self.count(found.is_some());
        found
    }

    /// Stores a lifted test-cost total.
    pub fn store_test(&self, key: u64, total: f64) {
        self.shard_for(key)
            .insert((Kind::Test, key), Entry::Test(total.to_bits()));
        self.dirty.store(true, Ordering::Release);
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lookups answered from the cache since it was opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a fresh evaluation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Read *operations* since the cache was opened: each
    /// [`SweepCache::lookup_eval`] / [`SweepCache::lookup_test`] call
    /// is one read, and each [`SweepCache::lookup_eval_batch`] call is
    /// one read regardless of batch size. The sweep engine performs one
    /// batched read per planned chunk plus one per lifted front point —
    /// a regression test pins that access pattern, because an
    /// accidental return to per-point probing multiplies lock traffic
    /// by the chunk size without changing any result.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of entries currently held (evaluations + test lifts).
    /// Shards are counted one at a time, so the total is a consistent
    /// snapshot only when no writer is concurrently storing.
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.shard(i).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persists the cache: merges the in-memory entries with whatever is
    /// on disk (another process may have flushed meanwhile), then writes
    /// the union atomically (a per-process temp file + rename), so an
    /// interrupted or concurrent flush leaves a valid file intact.
    /// A no-op when nothing was stored since the last flush, so warm
    /// re-runs never rewrite the file.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] on write failure. In-memory
    /// caches return `Ok(())` without touching disk.
    pub fn flush(&self) -> io::Result<()> {
        if self.path.as_os_str().is_empty() || !self.dirty.load(Ordering::Acquire) {
            return Ok(());
        }
        // All shard locks are taken in index order (every whole-cache
        // operation uses this order, so two concurrent flushes cannot
        // deadlock) and held for the duration: the flushed file is a
        // consistent snapshot even while other jobs keep storing.
        let mut shards: Vec<MutexGuard<'_, HashMap<(Kind, u64), Entry>>> =
            (0..SHARDS).map(|i| self.shard(i)).collect();
        let mut disk_state = self
            .disk_state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Merge from disk only when another writer has plausibly touched
        // the file since we last read or wrote it.
        if stat_sig(&self.path) != *disk_state {
            if let Some(disk) = load_entries(&self.path, HEADER) {
                for (k, v) in disk {
                    shards[shard_of(k.1)].entry(k).or_insert(v);
                }
            }
        }
        let mut lines: Vec<String> = shards
            .iter()
            .flat_map(|shard| shard.iter().map(|(k, v)| render_line(k, v)))
            .collect();
        // Deterministic file contents: sort lines, not hash order.
        lines.sort_unstable();
        let mut body = String::with_capacity(lines.len() * 48 + HEADER.len() + 1);
        body.push_str(HEADER);
        body.push('\n');
        for line in lines {
            body.push_str(&line);
            body.push('\n');
        }
        // Unique temp name per flush: concurrent flushers (other
        // processes, or two instances in this one) must never interleave
        // writes into one temp file.
        static FLUSH_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            FLUSH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, &self.path)?;
        self.dirty.store(false, Ordering::Release);
        *disk_state = stat_sig(&self.path);
        Ok(())
    }

    /// Drops every entry, in memory and on disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the cache file exists
    /// but cannot be removed.
    pub fn invalidate(&self) -> io::Result<()> {
        for i in 0..SHARDS {
            self.shard(i).clear();
        }
        self.dirty.store(false, Ordering::Release);
        *self
            .disk_state
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        if !self.path.as_os_str().is_empty() && self.path.exists() {
            fs::remove_file(&self.path)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------

fn render_line(key: &(Kind, u64), entry: &Entry) -> String {
    let mut s = String::new();
    match entry {
        Entry::Eval(EvalEntry::Infeasible { blocked }) => {
            let _ = write!(s, "E {:016x} I", key.1);
            if let Some(w) = blocked {
                let _ = write!(s, " {w}");
            }
        }
        Entry::Eval(EvalEntry::Feasible {
            cycles,
            workload_cycles,
            spills,
            area_bits,
            exec_bits,
            test,
        }) => {
            let _ = write!(
                s,
                "E {:016x} F {cycles} {spills} {area_bits:016x} {exec_bits:016x}",
                key.1
            );
            for c in workload_cycles {
                let _ = write!(s, " {c}");
            }
            // The `T` sentinel is unambiguous: workload-cycle tokens are
            // decimal integers and can never equal it.
            if let Some((fp, bits)) = test {
                let _ = write!(s, " T {fp:016x} {bits:016x}");
            }
        }
        Entry::Test(bits) => {
            let _ = write!(s, "T {:016x} {bits:016x}", key.1);
        }
    }
    s
}

/// Parses the cache file at `path`, expecting `header` on its first
/// line (the v3 header, or the legacy v2 one on the upgrade path — the
/// line grammar below is a superset of v2's, so one parser serves
/// both). Returns `None` (≙ empty cache) for a missing file, a bad
/// header, or *any* malformed line — a cache that cannot be trusted in
/// full is not trusted at all.
fn load_entries(path: &Path, header: &str) -> Option<HashMap<(Kind, u64), Entry>> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next() != Some(header) {
        return None;
    }
    let mut map = HashMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (key, entry) = parse_line(line)?;
        map.insert(key, entry);
    }
    Some(map)
}

fn parse_line(line: &str) -> Option<((Kind, u64), Entry)> {
    let mut parts = line.split(' ');
    let tag = parts.next()?;
    let key = u64::from_str_radix(parts.next()?, 16).ok()?;
    match tag {
        "E" => match parts.next()? {
            "I" => {
                let blocked = match parts.next() {
                    None => None,
                    Some(w) => Some(w.parse().ok()?),
                };
                if parts.next().is_some() {
                    return None;
                }
                Some((
                    (Kind::Eval, key),
                    Entry::Eval(EvalEntry::Infeasible { blocked }),
                ))
            }
            "F" => {
                let cycles = parts.next()?.parse().ok()?;
                let spills = parts.next()?.parse().ok()?;
                let area_bits = u64::from_str_radix(parts.next()?, 16).ok()?;
                let exec_bits = u64::from_str_radix(parts.next()?, 16).ok()?;
                // Workload cycles run until the optional `T` sentinel
                // opening the inline test pair (fingerprint + bits).
                let mut workload_cycles = Vec::new();
                let mut test = None;
                for p in parts.by_ref() {
                    if p == "T" {
                        let fp = u64::from_str_radix(parts.next()?, 16).ok()?;
                        let bits = u64::from_str_radix(parts.next()?, 16).ok()?;
                        if parts.next().is_some() {
                            return None;
                        }
                        test = Some((fp, bits));
                        break;
                    }
                    workload_cycles.push(p.parse().ok()?);
                }
                Some((
                    (Kind::Eval, key),
                    Entry::Eval(EvalEntry::Feasible {
                        cycles,
                        workload_cycles,
                        spills,
                        area_bits,
                        exec_bits,
                        test,
                    }),
                ))
            }
            _ => None,
        },
        "T" => {
            let bits = u64::from_str_radix(parts.next()?, 16).ok()?;
            if parts.next().is_some() {
                return None;
            }
            Some(((Kind::Test, key), Entry::Test(bits)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ttadse-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_feasible() -> EvalEntry {
        EvalEntry::Feasible {
            cycles: 1234,
            workload_cycles: vec![1000, 234],
            spills: 3,
            area_bits: 4000.5f64.to_bits(),
            exec_bits: 77.25f64.to_bits(),
            test: None,
        }
    }

    fn sample_feasible_with_test() -> EvalEntry {
        EvalEntry::Feasible {
            cycles: 1234,
            workload_cycles: vec![1000, 234],
            spills: 3,
            area_bits: 4000.5f64.to_bits(),
            exec_bits: 77.25f64.to_bits(),
            test: Some((0xdead_beef, 512.25f64.to_bits())),
        }
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = tmpdir("roundtrip");
        let cache = SweepCache::open(&dir).unwrap();
        cache.store_eval(42, sample_feasible());
        cache.store_eval(43, EvalEntry::Infeasible { blocked: Some(1) });
        cache.store_test(42, 99.75);
        cache.flush().unwrap();

        let reloaded = SweepCache::open(&dir).unwrap();
        assert_eq!(reloaded.len(), 3);
        assert_eq!(reloaded.lookup_eval(42), Some(sample_feasible()));
        assert_eq!(
            reloaded.lookup_eval(43),
            Some(EvalEntry::Infeasible { blocked: Some(1) })
        );
        assert_eq!(reloaded.lookup_test(42), Some(99.75));
        assert_eq!(reloaded.lookup_eval(44), None);
        assert_eq!(reloaded.hits(), 3);
        assert_eq!(reloaded.misses(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn inline_test_field_roundtrips_and_gates_contains() {
        let dir = tmpdir("inline-test");
        let cache = SweepCache::open(&dir).unwrap();
        cache.store_eval(1, sample_feasible_with_test());
        cache.store_eval(2, sample_feasible());
        cache.store_eval(3, EvalEntry::Infeasible { blocked: None });
        cache.flush().unwrap();

        let reloaded = SweepCache::open(&dir).unwrap();
        assert_eq!(reloaded.lookup_eval(1), Some(sample_feasible_with_test()));
        assert_eq!(reloaded.lookup_eval(2), Some(sample_feasible()));
        // A full-lift sweep can answer entry 1 only with the matching
        // model, entry 3 always (nothing to lift), entry 2 never.
        assert!(reloaded.contains_eval_with_test(1, 0xdead_beef));
        assert!(!reloaded.contains_eval_with_test(1, 0xbad));
        assert!(!reloaded.contains_eval_with_test(2, 0xdead_beef));
        assert!(reloaded.contains_eval_with_test(3, 0xdead_beef));
        assert!(!reloaded.contains_eval_with_test(4, 0xdead_beef));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_v2_file_loads_when_no_v3_exists() {
        let dir = tmpdir("legacy");
        fs::create_dir_all(&dir).unwrap();
        // A v2 file as the previous release wrote it: v2 header, no
        // inline test suffix, standalone T lines for lifted fronts.
        fs::write(
            dir.join(LEGACY_CACHE_FILE_NAME),
            format!(
                "{LEGACY_HEADER}\n\
                 E 000000000000002a F 1234 3 {:016x} {:016x} 1000 234\n\
                 E 000000000000002b I 1\n\
                 T 000000000000002a {:016x}\n",
                4000.5f64.to_bits(),
                77.25f64.to_bits(),
                99.75f64.to_bits(),
            ),
        )
        .unwrap();
        let cache = SweepCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lookup_eval(0x2a), Some(sample_feasible()));
        assert_eq!(cache.lookup_test(0x2a), Some(99.75));
        // The upgraded entries have no inline test field yet.
        assert!(!cache.contains_eval_with_test(0x2a, 7));
        // A store + flush persists everything in the v3 layout; the v2
        // file is left for older binaries.
        cache.store_eval(0x2c, sample_feasible_with_test());
        cache.flush().unwrap();
        assert!(dir.join(CACHE_FILE_NAME).exists());
        assert!(dir.join(LEGACY_CACHE_FILE_NAME).exists());
        let reloaded = SweepCache::open(&dir).unwrap();
        assert_eq!(reloaded.len(), 4);
        assert_eq!(reloaded.lookup_eval(0x2a), Some(sample_feasible()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v3_file_wins_over_a_legacy_one() {
        let dir = tmpdir("v3-wins");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(LEGACY_CACHE_FILE_NAME),
            format!("{LEGACY_HEADER}\nE 0000000000000001 I\n"),
        )
        .unwrap();
        fs::write(
            dir.join(CACHE_FILE_NAME),
            format!("{HEADER}\nE 0000000000000002 I\n"),
        )
        .unwrap();
        let cache = SweepCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.lookup_eval(2),
            Some(EvalEntry::Infeasible { blocked: None })
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_to_an_unwritable_target_reports_the_error() {
        let dir = tmpdir("unwritable");
        let cache = SweepCache::open(&dir).unwrap();
        // Make the cache *file* path unwritable even for root: a
        // directory sits where the rename must land.
        fs::create_dir_all(cache.path()).unwrap();
        cache.store_eval(1, EvalEntry::Infeasible { blocked: None });
        assert!(cache.flush().is_err(), "rename onto a directory fails");
        // The entries are still served from memory.
        assert_eq!(
            cache.lookup_eval(1),
            Some(EvalEntry::Infeasible { blocked: None })
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_and_test_keys_do_not_collide() {
        let cache = SweepCache::in_memory();
        cache.store_test(7, 1.0);
        assert_eq!(cache.lookup_eval(7), None);
        cache.store_eval(7, EvalEntry::Infeasible { blocked: None });
        assert_eq!(cache.lookup_test(7), Some(1.0));
    }

    #[test]
    fn corrupt_file_degrades_to_empty() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CACHE_FILE_NAME), format!("{HEADER}\nE zzzz I\n")).unwrap();
        let cache = SweepCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_degrades_to_empty() {
        let dir = tmpdir("version");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(CACHE_FILE_NAME),
            "ttadse-sweep-cache 999\nE 000000000000002a I\n",
        )
        .unwrap();
        let cache = SweepCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_merges_with_concurrent_writers() {
        let dir = tmpdir("merge");
        let a = SweepCache::open(&dir).unwrap();
        let b = SweepCache::open(&dir).unwrap();
        a.store_eval(1, EvalEntry::Infeasible { blocked: None });
        b.store_eval(2, sample_feasible());
        a.flush().unwrap();
        b.flush().unwrap();
        let merged = SweepCache::open(&dir).unwrap();
        assert_eq!(merged.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_is_deterministic() {
        let dir = tmpdir("determ");
        let cache = SweepCache::open(&dir).unwrap();
        for k in 0..32u64 {
            cache.store_eval(
                k.wrapping_mul(0x9E37_79B9),
                EvalEntry::Infeasible { blocked: None },
            );
        }
        cache.flush().unwrap();
        let first = fs::read_to_string(cache.path()).unwrap();
        cache.flush().unwrap();
        let second = fs::read_to_string(cache.path()).unwrap();
        assert_eq!(first, second);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_clears_memory_and_disk() {
        let dir = tmpdir("invalidate");
        let cache = SweepCache::open(&dir).unwrap();
        cache.store_eval(1, EvalEntry::Infeasible { blocked: None });
        cache.flush().unwrap();
        assert!(cache.path().exists());
        cache.invalidate().unwrap();
        assert!(cache.is_empty());
        assert!(!cache.path().exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_lookup_spans_shards_in_one_read() {
        let cache = SweepCache::in_memory();
        // Keys 0..64 cover every shard four times over.
        for k in 0..64u64 {
            cache.store_eval(k, EvalEntry::Infeasible { blocked: None });
        }
        let keys: Vec<u64> = (0..128u64).rev().collect();
        let out = cache.lookup_eval_batch(&keys);
        assert_eq!(
            cache.reads(),
            1,
            "one batch is one read, however many shards"
        );
        for (pos, &key) in keys.iter().enumerate() {
            assert_eq!(out[pos].is_some(), key < 64, "answers stay in input order");
        }
        assert_eq!(cache.hits(), 64);
        assert_eq!(cache.misses(), 64);
    }

    #[test]
    fn concurrent_writers_over_shared_shards_lose_nothing() {
        let cache = SweepCache::in_memory();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                scope.spawn(move || {
                    for k in 0..256u64 {
                        // Overlapping key ranges: every thread stores the
                        // same 256 keys (same values), racing per shard.
                        cache.store_eval(k, EvalEntry::Infeasible { blocked: None });
                        cache.store_test(k.wrapping_mul(0x9E37_79B9), 1.5);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 512);
        for k in 0..256u64 {
            assert_eq!(
                cache.lookup_eval(k),
                Some(EvalEntry::Infeasible { blocked: None })
            );
        }
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let a = Fingerprint::new().str("ab").str("c").finish();
        let b = Fingerprint::new().str("a").str("bc").finish();
        assert_ne!(a, b, "length prefix must separate string boundaries");
        let arch1 = Architecture::figure9();
        let mut arch2 = Architecture::figure9();
        assert_eq!(arch_fingerprint(&arch1), arch_fingerprint(&arch2));
        arch2.fus[0].trigger_bus = tta_arch::BusId(0);
        assert_ne!(
            arch_fingerprint(&arch1),
            arch_fingerprint(&arch2),
            "port→bus assignment is part of the identity"
        );
    }
}
