//! Plain-text rendering of exploration results (the harness output the
//! figures and tables are regenerated from).

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.chars().count();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], width: &[usize], out: &mut String| {
            for (c, cell) in row.iter().enumerate() {
                let _ = write!(out, "| {:<w$} ", cell, w = width[c]);
            }
            out.push_str("|\n");
        };
        fmt_row(&self.header, &width, &mut out);
        for (c, w) in width.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            let _ = c;
        }
        out.push_str("|\n");
        for row in &self.rows {
            fmt_row(row, &width, &mut out);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["component", "np"]);
        t.row(["ALU", "14"]);
        t.row(["RF1 (8 regs)", "80"]);
        let s = t.render();
        assert!(s.contains("| ALU"));
        assert!(s.lines().count() == 4);
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned: {s}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
