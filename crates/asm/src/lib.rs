//! Text assembler / disassembler for TTA move programs.
//!
//! The format is line-oriented; one line is one instruction (one
//! cycle of parallel moves). `docs/SIMULATOR.md` documents it in
//! full; the shape:
//!
//! ```text
//! ; comments run to end of line
//! .width 16
//! .rf rf1 4 = 10 20 0 0
//! .mem = 7 7 7
//! .out rf1[2]
//! rf1[0] -> alu0.o, rf1[1] -> alu0.add
//! -
//! alu0.r -> rf1[2]
//! ```
//!
//! * `.width`, `.rf`, `.mem`, `.out` mirror the [`Program`] fields;
//! * a move is `src -> dst`; sources are `rf[reg]`, `fu.r` (result)
//!   or `imm0:42` (a constant riding an immediate unit); destinations
//!   are `fu.o` (operand), `fu.<opcode>` (trigger) or `rf[reg]`;
//! * `-` is an empty instruction (a stall cycle);
//! * `label:` names the next instruction index and `imm0:@label`
//!   delivers it, which is how jumps are written.
//!
//! [`disassemble`] emits a *canonical* form (no labels, decimal
//! constants, single spaces) and the pair round-trips exactly:
//! `assemble(disassemble(p)) == p` for any well-formed program, and
//! canonical text is a fixed point of `disassemble ∘ assemble` —
//! byte-identical, which CI checks with `cmp`.

#![warn(missing_docs)]

use std::fmt::Write as _;

use tta_sim::program::{MoveDst, MoveOp, MoveSrc, OpCode, OutputLoc, Program, RfImage};

/// An assembly failure, pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, AsmError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    match parsed {
        Ok(v) => Ok(v),
        Err(_) => err(line, format!("expected a number, found `{tok}`")),
    }
}

/// Parses `name[idx]` into its parts, if the token has that shape.
fn parse_indexed(tok: &str, line: usize) -> Result<Option<(String, usize)>, AsmError> {
    let Some(open) = tok.find('[') else {
        return Ok(None);
    };
    let Some(rest) = tok[open..].strip_prefix('[') else {
        return Ok(None);
    };
    let Some(idx) = rest.strip_suffix(']') else {
        return err(line, format!("malformed register reference `{tok}`"));
    };
    let name = &tok[..open];
    if !is_ident(name) {
        return err(line, format!("bad register-file name in `{tok}`"));
    }
    let reg = idx.parse::<usize>().map_err(|_| AsmError {
        line,
        msg: format!("bad register index in `{tok}`"),
    })?;
    Ok(Some((name.to_string(), reg)))
}

fn parse_src(
    tok: &str,
    labels: &std::collections::HashMap<String, usize>,
    line: usize,
) -> Result<MoveSrc, AsmError> {
    if let Some((rf, reg)) = parse_indexed(tok, line)? {
        return Ok(MoveSrc::RfRead { rf, reg });
    }
    if let Some((unit, val)) = tok.split_once(':') {
        if !is_ident(unit) {
            return err(line, format!("bad immediate-unit name in `{tok}`"));
        }
        let value = if let Some(label) = val.strip_prefix('@') {
            match labels.get(label) {
                Some(&idx) => idx as u64,
                None => return err(line, format!("unknown label `{label}`")),
            }
        } else {
            parse_u64(val, line)?
        };
        return Ok(MoveSrc::Imm {
            unit: unit.to_string(),
            value,
        });
    }
    if let Some((fu, port)) = tok.split_once('.') {
        if port == "r" && is_ident(fu) {
            return Ok(MoveSrc::FuResult(fu.to_string()));
        }
        return err(line, format!("`{tok}` is not a readable port (only `.r`)"));
    }
    err(line, format!("unrecognised move source `{tok}`"))
}

fn parse_dst(tok: &str, line: usize) -> Result<MoveDst, AsmError> {
    if let Some((rf, reg)) = parse_indexed(tok, line)? {
        return Ok(MoveDst::RfWrite { rf, reg });
    }
    if let Some((fu, port)) = tok.split_once('.') {
        if !is_ident(fu) {
            return err(line, format!("bad unit name in `{tok}`"));
        }
        if port == "o" {
            return Ok(MoveDst::FuOperand(fu.to_string()));
        }
        if let Some(op) = OpCode::parse(port) {
            return Ok(MoveDst::FuTrigger {
                fu: fu.to_string(),
                op,
            });
        }
        return err(line, format!("unknown opcode or port `{port}` in `{tok}`"));
    }
    err(line, format!("unrecognised move destination `{tok}`"))
}

/// What a trimmed, comment-stripped line is.
enum LineKind<'a> {
    Blank,
    Directive(&'a str),
    Label(&'a str),
    Instruction(&'a str),
}

fn classify(line: &str) -> LineKind<'_> {
    let t = strip_comment(line).trim();
    if t.is_empty() {
        LineKind::Blank
    } else if let Some(d) = t.strip_prefix('.') {
        LineKind::Directive(d)
    } else if let Some(l) = t.strip_suffix(':') {
        if is_ident(l.trim()) {
            LineKind::Label(l.trim())
        } else {
            LineKind::Instruction(t)
        }
    } else {
        LineKind::Instruction(t)
    }
}

/// Assembles program text into a [`Program`].
///
/// # Errors
///
/// Returns the first syntax or consistency error with its 1-based
/// line number; see the module docs for the grammar.
pub fn assemble(text: &str) -> Result<Program, AsmError> {
    // Pass 1: bind labels to instruction indices.
    let mut labels = std::collections::HashMap::new();
    let mut n_instr = 0usize;
    for (i, raw) in text.lines().enumerate() {
        match classify(raw) {
            LineKind::Label(l) if labels.contains_key(l) => {
                return err(i + 1, format!("duplicate label `{l}`"));
            }
            LineKind::Label(l) => {
                labels.insert(l.to_string(), n_instr);
            }
            LineKind::Instruction(_) => n_instr += 1,
            _ => {}
        }
    }

    // Pass 2: directives and instructions.
    let mut width: Option<u32> = None;
    let mut rfs: Vec<RfImage> = Vec::new();
    let mut mem: Vec<u64> = Vec::new();
    let mut outputs: Vec<OutputLoc> = Vec::new();
    let mut instructions: Vec<Vec<MoveOp>> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        match classify(raw) {
            LineKind::Blank | LineKind::Label(_) => {}
            LineKind::Directive(d) => {
                let mut parts = d.split_whitespace();
                match parts.next() {
                    Some("width") => {
                        let tok = parts.next().ok_or(AsmError {
                            line,
                            msg: ".width needs a bit count".into(),
                        })?;
                        let w = parse_u64(tok, line)?;
                        if !(2..=64).contains(&w) {
                            return err(line, format!("width {w} out of range 2–64"));
                        }
                        if width.replace(w as u32).is_some() {
                            return err(line, "duplicate .width");
                        }
                        if parts.next().is_some() {
                            return err(line, "trailing tokens after .width");
                        }
                    }
                    Some("rf") => {
                        let name = parts.next().unwrap_or("");
                        if !is_ident(name) {
                            return err(line, ".rf needs a name");
                        }
                        if rfs.iter().any(|r| r.name == name) {
                            return err(line, format!("duplicate .rf `{name}`"));
                        }
                        let regs = parse_u64(parts.next().unwrap_or(""), line)? as usize;
                        if parts.next() != Some("=") {
                            return err(line, ".rf expects `= v0 v1 …`");
                        }
                        let mut init = Vec::new();
                        for tok in parts {
                            init.push(parse_u64(tok, line)?);
                        }
                        if init.len() > regs {
                            return err(
                                line,
                                format!(".rf `{name}`: {} values for {regs} registers", init.len()),
                            );
                        }
                        init.resize(regs, 0);
                        rfs.push(RfImage {
                            name: name.to_string(),
                            regs,
                            init,
                        });
                    }
                    Some("mem") => {
                        if parts.next() != Some("=") {
                            return err(line, ".mem expects `= v0 v1 …`");
                        }
                        for tok in parts {
                            mem.push(parse_u64(tok, line)?);
                        }
                    }
                    Some("out") => {
                        for tok in parts {
                            match parse_indexed(tok, line)? {
                                Some((rf, reg)) => outputs.push(OutputLoc { rf, reg }),
                                None => {
                                    return err(
                                        line,
                                        format!(".out expects `rf[reg]`, found `{tok}`"),
                                    )
                                }
                            }
                        }
                    }
                    Some(other) => return err(line, format!("unknown directive `.{other}`")),
                    None => return err(line, "empty directive"),
                }
            }
            LineKind::Instruction(t) => {
                let mut moves = Vec::new();
                if t != "-" {
                    for mv in t.split(',') {
                        let mv = mv.trim();
                        let Some((src, dst)) = mv.split_once("->") else {
                            return err(line, format!("move `{mv}` has no `->`"));
                        };
                        moves.push(MoveOp {
                            src: parse_src(src.trim(), &labels, line)?,
                            dst: parse_dst(dst.trim(), line)?,
                        });
                    }
                }
                instructions.push(moves);
            }
        }
    }
    let Some(width) = width else {
        return err(text.lines().count().max(1), "missing .width directive");
    };
    Ok(Program {
        width,
        rfs,
        mem,
        outputs,
        instructions,
    })
}

// The canonical spellings live on the program types themselves
// (`Display` in `tta_sim::program`), so the parser here and any
// renderer elsewhere (e.g. the CLI trace printer) can never drift.
fn write_src(out: &mut String, src: &MoveSrc) {
    let _ = write!(out, "{src}");
}

fn write_dst(out: &mut String, dst: &MoveDst) {
    let _ = write!(out, "{dst}");
}

/// Renders `program` in the canonical text form.
///
/// The output is deterministic, label-free and a fixed point:
/// assembling it and disassembling again is byte-identical.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".width {}", program.width);
    for rf in &program.rfs {
        let _ = write!(out, ".rf {} {} =", rf.name, rf.regs);
        for v in &rf.init {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
    }
    if !program.mem.is_empty() {
        let _ = write!(out, ".mem =");
        for v in &program.mem {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
    }
    if !program.outputs.is_empty() {
        let _ = write!(out, ".out");
        for o in &program.outputs {
            let _ = write!(out, " {}[{}]", o.rf, o.reg);
        }
        out.push('\n');
    }
    for instr in &program.instructions {
        if instr.is_empty() {
            out.push('-');
        } else {
            for (k, mv) in instr.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                write_src(&mut out, &mv.src);
                out.push_str(" -> ");
                write_dst(&mut out, &mv.dst);
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const HELLO: &str = "\
; add two registers, store the sum
.width 16
.rf rf1 4 = 10 20 0 0
.out rf1[2]
rf1[0] -> alu0.o, rf1[1] -> alu0.add
-
alu0.r -> rf1[2]
";

    #[test]
    fn assembles_and_round_trips() {
        let p = assemble(HELLO).unwrap();
        assert_eq!(p.width, 16);
        assert_eq!(p.instructions.len(), 3);
        assert_eq!(p.instructions[1].len(), 0);
        assert_eq!(p.outputs.len(), 1);
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p, p2);
        assert_eq!(disassemble(&p2), text, "canonical text is a fixed point");
    }

    #[test]
    fn labels_resolve_to_instruction_indices() {
        let src = "\
.width 8
.rf rf1 1 = 5
top:
rf1[0] -> alu0.o, imm0:1 -> alu0.sub
imm0:@top -> pc0.jmp
";
        let p = assemble(src).unwrap();
        let MoveSrc::Imm { value, .. } = &p.instructions[1][0].src else {
            panic!("expected imm");
        };
        assert_eq!(*value, 0, "label binds to the next instruction index");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".width 16\nrf1[0] ->\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble(".width 16\nalu0.r -> alu0.frobnicate\n").unwrap_err();
        assert!(e.msg.contains("frobnicate"), "{}", e.msg);
        let e = assemble("imm0:@nowhere -> pc0.jmp\n.width 8\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn missing_width_rejected() {
        assert!(assemble("-\n").is_err());
        assert!(assemble("").is_err());
    }

    #[test]
    fn rf_init_padded_and_bounded() {
        let p = assemble(".width 8\n.rf rf1 3 = 1\n").unwrap();
        assert_eq!(p.rfs[0].init, vec![1, 0, 0]);
        assert!(assemble(".width 8\n.rf rf1 1 = 1 2\n").is_err());
    }
}
