//! Round-trip stability of the assembler on randomized programs:
//! `assemble(disassemble(p)) == p`, and canonical text is a byte-exact
//! fixed point of `disassemble ∘ assemble`.

use proptest::prelude::*;
use tta_asm::{assemble, disassemble};
use tta_sim::program::{MoveDst, MoveOp, MoveSrc, OutputLoc, Program, RfImage, OPCODES};

const FUS: [&str; 5] = ["alu0", "cmp0", "ldst0", "imm0", "pc0"];
const RFS: [&str; 2] = ["rf1", "rf2"];

/// Deterministically expands generated tuples into a (syntactically
/// arbitrary, not necessarily executable) program — round-trip is a
/// purely textual property.
#[allow(clippy::type_complexity)]
fn build_program(
    width: u32,
    rf1_init: Vec<u64>,
    rf2_init: Vec<u64>,
    mem: Vec<u64>,
    outs: Vec<(u8, usize)>,
    moves: Vec<(u8, u8, u8, usize, u64, bool)>,
) -> Program {
    let mut instructions: Vec<Vec<MoveOp>> = vec![Vec::new()];
    for (srcsel, dstsel, fu, reg, val, brk) in moves {
        let fu_name = FUS[fu as usize % FUS.len()].to_string();
        let rf_name = RFS[reg % RFS.len()].to_string();
        let src = match srcsel % 3 {
            0 => MoveSrc::FuResult(fu_name.clone()),
            1 => MoveSrc::RfRead {
                rf: rf_name.clone(),
                reg,
            },
            _ => MoveSrc::Imm {
                unit: "imm0".to_string(),
                value: val,
            },
        };
        let dst = match dstsel % 3 {
            0 => MoveDst::FuOperand(fu_name),
            1 => MoveDst::FuTrigger {
                fu: fu_name,
                op: OPCODES[(reg + val as usize) % OPCODES.len()],
            },
            _ => MoveDst::RfWrite { rf: rf_name, reg },
        };
        instructions
            .last_mut()
            .expect("non-empty")
            .push(MoveOp { src, dst });
        if brk {
            instructions.push(Vec::new());
        }
    }
    Program {
        width,
        rfs: vec![
            RfImage {
                name: "rf1".to_string(),
                regs: rf1_init.len(),
                init: rf1_init,
            },
            RfImage {
                name: "rf2".to_string(),
                regs: rf2_init.len(),
                init: rf2_init,
            },
        ],
        mem,
        outputs: outs
            .into_iter()
            .map(|(rf, reg)| OutputLoc {
                rf: RFS[rf as usize % RFS.len()].to_string(),
                reg,
            })
            .collect(),
        instructions,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn assemble_inverts_disassemble(
        width in 2u32..=64,
        rf1_init in proptest::collection::vec(0u64..70000, 0..8),
        rf2_init in proptest::collection::vec(0u64..70000, 0..8),
        mem in proptest::collection::vec(0u64..70000, 0..12),
        outs in proptest::collection::vec((0u8..2, 0usize..8), 0..4),
        moves in proptest::collection::vec(
            (0u8..3, 0u8..3, 0u8..5, 0usize..10, 0u64..70000, proptest::bool::ANY),
            0..32,
        ),
    ) {
        let p = build_program(width, rf1_init, rf2_init, mem, outs, moves);
        let text = disassemble(&p);
        let p2 = assemble(&text)
            .unwrap_or_else(|e| panic!("canonical text must assemble: {e}\n{text}"));
        prop_assert_eq!(&p2, &p, "assemble ∘ disassemble is not the identity");
        // Byte-exact fixed point (what CI checks with `cmp`).
        prop_assert_eq!(disassemble(&p2), text);
    }
}
