//! Concrete test patterns and test sets.

use std::fmt;

use crate::view::CombView;

/// One fully-specified test pattern over the inputs of a [`CombView`]
/// (real primary inputs first, then pseudo inputs / flip-flop loads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    bits: Vec<bool>,
}

impl Pattern {
    /// Creates a pattern from explicit bits.
    pub fn new(bits: Vec<bool>) -> Self {
        Pattern { bits }
    }

    /// The input bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of inputs covered.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the pattern is empty (zero-input view).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bits {
            write!(f, "{}", u8::from(*b))?;
        }
        Ok(())
    }
}

/// An ordered set of test patterns for one component.
#[derive(Debug, Clone, Default)]
pub struct TestSet {
    patterns: Vec<Pattern>,
}

impl TestSet {
    /// Empty test set.
    pub fn new() -> Self {
        TestSet::default()
    }

    /// Appends a pattern.
    pub fn push(&mut self, p: Pattern) {
        self.patterns.push(p);
    }

    /// The patterns, in application order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// `np` — the pattern count the paper's cost functions consume.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Keeps only the patterns whose indices are in `keep` (sorted).
    pub fn retain_indices(&mut self, keep: &[usize]) {
        let mut keep_iter = keep.iter().peekable();
        let mut idx = 0usize;
        self.patterns.retain(|_| {
            let keep_this = keep_iter.peek() == Some(&&idx);
            if keep_this {
                keep_iter.next();
            }
            idx += 1;
            keep_this
        });
    }
}

impl FromIterator<Pattern> for TestSet {
    fn from_iter<T: IntoIterator<Item = Pattern>>(iter: T) -> Self {
        TestSet {
            patterns: iter.into_iter().collect(),
        }
    }
}

impl Extend<Pattern> for TestSet {
    fn extend<T: IntoIterator<Item = Pattern>>(&mut self, iter: T) {
        self.patterns.extend(iter);
    }
}

/// Packs up to 64 patterns into one bit-parallel word per view input.
///
/// Pattern `k` of the batch occupies bit `k` of every word; unused slots
/// replicate pattern 0 (harmless for detection masks, which are ANDed with
/// [`PatternBatch::active_mask`]).
#[derive(Debug, Clone)]
pub struct PatternBatch {
    /// One word per view input.
    pub words: Vec<u64>,
    /// Bit `k` set ⇔ slot `k` holds a real pattern.
    pub active_mask: u64,
    /// Number of real patterns in the batch.
    pub count: usize,
}

impl PatternBatch {
    /// Packs `patterns` (≤ 64) over `view`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 patterns are given or widths mismatch.
    pub fn pack(view: &CombView, patterns: &[&Pattern]) -> Self {
        assert!(patterns.len() <= 64, "a batch holds at most 64 patterns");
        let n_inputs = view.inputs().len();
        let mut words = vec![0u64; n_inputs];
        for (k, p) in patterns.iter().enumerate() {
            assert_eq!(p.len(), n_inputs, "pattern width mismatch");
            for (i, bit) in p.bits().iter().enumerate() {
                if *bit {
                    words[i] |= 1 << k;
                }
            }
        }
        let active_mask = if patterns.len() == 64 {
            u64::MAX
        } else {
            (1u64 << patterns.len()) - 1
        };
        PatternBatch {
            words,
            active_mask,
            count: patterns.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retain_indices_keeps_selected() {
        let mut ts: TestSet = (0..5).map(|i| Pattern::new(vec![i % 2 == 0])).collect();
        ts.retain_indices(&[0, 3]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.patterns()[0].bits(), &[true]);
        assert_eq!(ts.patterns()[1].bits(), &[false]);
    }

    #[test]
    fn display_pattern() {
        let p = Pattern::new(vec![true, false, true]);
        assert_eq!(p.to_string(), "101");
    }
}
