//! Parallel-pattern single-fault-propagation fault simulation.
//!
//! For every fault, the simulator re-evaluates only the cone of logic the
//! fault effect actually reaches (event-driven, in topological order),
//! comparing 64 patterns at once against the fault-free reference.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tta_netlist::netlist::Fanout;
use tta_netlist::{GateId, Netlist, Simulator};

use crate::fault::{Fault, FaultSite};
use crate::pattern::{Pattern, PatternBatch};
use crate::view::CombView;

/// Fault simulator bound to one netlist + test-access view.
#[derive(Debug)]
pub struct FaultSimulator {
    nl: Netlist,
    view: CombView,
    fanout: Fanout,
    /// Topological position of every gate (for ordered event processing).
    topo_pos: Vec<u32>,
    sim: Simulator,
    /// Per-net flag: is this net a view observe point?
    observed: Vec<bool>,
    // --- scratch (reused across faults) ---
    faulty: Vec<u64>,
    touched: Vec<u32>,
    touched_flag: Vec<bool>,
    queued: Vec<bool>,
}

impl FaultSimulator {
    /// Builds a simulator for `nl` under the full-scan view.
    pub fn new(nl: Netlist) -> Self {
        let view = CombView::full_scan(&nl);
        Self::with_view(nl, view)
    }

    /// Builds a simulator with an explicit view.
    pub fn with_view(nl: Netlist, view: CombView) -> Self {
        let mut topo_pos = vec![0u32; nl.gate_count()];
        for (pos, gid) in nl.topo_order().iter().enumerate() {
            topo_pos[gid.index()] = pos as u32;
        }
        let fanout = nl.fanout_table();
        let sim = Simulator::new(&nl);
        let nets = nl.net_count();
        let gates = nl.gate_count();
        let mut observed = vec![false; nets];
        for net in view.observes() {
            observed[net.index()] = true;
        }
        FaultSimulator {
            nl,
            view,
            fanout,
            topo_pos,
            sim,
            observed,
            faulty: vec![0; nets],
            touched: Vec::with_capacity(64),
            touched_flag: vec![false; nets],
            queued: vec![false; gates],
        }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// The test-access view.
    pub fn view(&self) -> &CombView {
        &self.view
    }

    /// Simulates the fault-free circuit for a packed batch, returning the
    /// value word of every net.
    pub fn good_values(&self, batch: &PatternBatch) -> Vec<u64> {
        let (pi, state) = self.view.split_assignment(&batch.words);
        self.sim.eval(&self.nl, pi, state)
    }

    /// Returns the mask of batch patterns that detect `fault`, given the
    /// fault-free `good` net values of the same batch.
    pub fn detect_mask(&mut self, good: &[u64], batch: &PatternBatch, fault: Fault) -> u64 {
        // Seed the event queue with the fault injection site.
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        debug_assert!(self.touched.is_empty());
        let mut detected = 0u64;

        let schedule_readers = |net: tta_netlist::NetId,
                                heap: &mut BinaryHeap<Reverse<(u32, u32)>>,
                                queued: &mut [bool],
                                topo_pos: &[u32],
                                fanout: &Fanout| {
            for (gid, _pin) in &fanout.gate_pins[net.index()] {
                if !queued[gid.index()] {
                    queued[gid.index()] = true;
                    heap.push(Reverse((topo_pos[gid.index()], gid.index() as u32)));
                }
            }
        };

        match fault.site {
            FaultSite::Net(net) => {
                let forced = if fault.stuck { u64::MAX } else { 0 };
                let diff = good[net.index()] ^ forced;
                if diff & batch.active_mask == 0 {
                    return 0;
                }
                self.faulty[net.index()] = forced;
                self.touched.push(net.index() as u32);
                self.touched_flag[net.index()] = true;
                detected |= self.observe_diff(good, net);
                schedule_readers(
                    net,
                    &mut heap,
                    &mut self.queued,
                    &self.topo_pos,
                    &self.fanout,
                );
            }
            FaultSite::GatePin(gid, pin) => {
                // Only the faulted gate sees the stuck pin.
                let out = self.eval_gate_faulty(good, gid, Some((pin, fault.stuck)));
                let onet = self.nl.gate(gid).output();
                if (out ^ good[onet.index()]) & batch.active_mask == 0 {
                    return 0;
                }
                self.faulty[onet.index()] = out;
                self.touched.push(onet.index() as u32);
                self.touched_flag[onet.index()] = true;
                detected |= self.observe_diff(good, onet);
                schedule_readers(
                    onet,
                    &mut heap,
                    &mut self.queued,
                    &self.topo_pos,
                    &self.fanout,
                );
            }
        }

        // Event-driven propagation in topological order.
        while let Some(Reverse((_pos, gidx))) = heap.pop() {
            self.queued[gidx as usize] = false;
            let gid = GateId::from_index(gidx as usize);
            let out = self.eval_gate_faulty(good, gid, None);
            let onet = self.nl.gate(gid).output();
            let prev = self.current_value(good, onet);
            if out == prev {
                continue;
            }
            if !self.touched_flag[onet.index()] {
                self.touched.push(onet.index() as u32);
                self.touched_flag[onet.index()] = true;
            }
            self.faulty[onet.index()] = out;
            detected |= self.observe_diff(good, onet);
            schedule_readers(
                onet,
                &mut heap,
                &mut self.queued,
                &self.topo_pos,
                &self.fanout,
            );
        }

        // Restore scratch for the next fault.
        for &t in &self.touched {
            self.touched_flag[t as usize] = false;
        }
        self.touched.clear();

        detected & batch.active_mask
    }

    /// Value of `net` in the faulty circuit: the touched override if any,
    /// otherwise the good value.
    #[inline]
    fn current_value(&self, good: &[u64], net: tta_netlist::NetId) -> u64 {
        if self.touched_flag[net.index()] {
            self.faulty[net.index()]
        } else {
            good[net.index()]
        }
    }

    /// Evaluates one gate against the faulty circuit, with an optional
    /// stuck pin override.
    fn eval_gate_faulty(&self, good: &[u64], gid: GateId, pin_override: Option<(u8, bool)>) -> u64 {
        let gate = self.nl.gate(gid);
        let mut ins = [0u64; 3];
        for (k, net) in gate.inputs().iter().enumerate() {
            ins[k] = self.current_value(good, *net);
        }
        if let Some((pin, stuck)) = pin_override {
            ins[pin as usize] = if stuck { u64::MAX } else { 0 };
        }
        gate.kind().eval(&ins[..gate.inputs().len()])
    }

    /// Detection contribution of a changed net: differs at an observe
    /// point.
    fn observe_diff(&self, good: &[u64], net: tta_netlist::NetId) -> u64 {
        if self.is_observed(net) {
            good[net.index()] ^ self.faulty[net.index()]
        } else {
            0
        }
    }

    #[inline]
    fn is_observed(&self, net: tta_netlist::NetId) -> bool {
        self.observed[net.index()]
    }

    /// Runs the batch against `faults`, returning a detection mask per
    /// fault (bit `k` ⇔ pattern `k` detects it).
    pub fn run_batch(&mut self, batch: &PatternBatch, faults: &[Fault]) -> Vec<u64> {
        let good = self.good_values(batch);
        faults
            .iter()
            .map(|f| self.detect_mask(&good, batch, *f))
            .collect()
    }

    /// Simulates `patterns` against `faults` with fault dropping.
    ///
    /// Returns `(detected_flags, useful_pattern_indices)`:
    /// `detected_flags[i]` tells whether fault `i` was detected, and the
    /// index list names every pattern that was the *first* to detect some
    /// fault (the natural compaction seed).
    pub fn run_with_dropping(
        &mut self,
        patterns: &[Pattern],
        faults: &[Fault],
    ) -> (Vec<bool>, Vec<usize>) {
        let mut detected = vec![false; faults.len()];
        let mut useful = Vec::new();
        let mut remaining: Vec<usize> = (0..faults.len()).collect();
        for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
            if remaining.is_empty() {
                break;
            }
            let refs: Vec<&Pattern> = chunk.iter().collect();
            let batch = PatternBatch::pack(&self.view, &refs);
            let good = self.good_values(&batch);
            let mut first_detector_hit = vec![false; chunk.len()];
            remaining.retain(|&fi| {
                let mask = self.detect_mask(&good, &batch, faults[fi]);
                if mask != 0 {
                    detected[fi] = true;
                    first_detector_hit[mask.trailing_zeros() as usize] = true;
                    false
                } else {
                    true
                }
            });
            for (k, hit) in first_detector_hit.iter().enumerate() {
                if *hit {
                    useful.push(chunk_idx * 64 + k);
                }
            }
        }
        (detected, useful)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_netlist::{NetId, NetlistBuilder};

    fn and_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("and");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        b.finish()
    }

    #[test]
    fn sa0_on_and_output_detected_by_11() {
        let nl = and_circuit();
        let ynet = nl.primary_outputs()[0].1;
        let mut fs = FaultSimulator::new(nl);
        let p11 = Pattern::new(vec![true, true]);
        let p10 = Pattern::new(vec![true, false]);
        let batch = PatternBatch::pack(fs.view(), &[&p11, &p10]);
        let good = fs.good_values(&batch);
        let mask = fs.detect_mask(&good, &batch, Fault::sa0(ynet));
        assert_eq!(mask, 0b01, "only pattern 11 detects y/sa0");
    }

    #[test]
    fn sa1_on_input_detected_by_01() {
        let nl = and_circuit();
        let a = nl.find_net("a").unwrap();
        let mut fs = FaultSimulator::new(nl);
        // a=0, b=1: good y=0, faulty (a stuck 1) y=1.
        let p = Pattern::new(vec![false, true]);
        let batch = PatternBatch::pack(fs.view(), &[&p]);
        let good = fs.good_values(&batch);
        assert_eq!(fs.detect_mask(&good, &batch, Fault::sa1(a)), 1);
        // a=0, b=0 does not detect.
        let p0 = Pattern::new(vec![false, false]);
        let batch0 = PatternBatch::pack(fs.view(), &[&p0]);
        let good0 = fs.good_values(&batch0);
        assert_eq!(fs.detect_mask(&good0, &batch0, Fault::sa1(a)), 0);
    }

    #[test]
    fn pin_fault_affects_only_one_branch() {
        // y0 = a & b ; y1 = a | c. Branch fault on the OR's `a` pin must
        // leave y0 clean.
        let mut b = NetlistBuilder::new("branch");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        let y0 = b.and2(a, x);
        let y1 = b.or2(a, c);
        b.output("y0", y0);
        b.output("y1", y1);
        let nl = b.finish();
        let or_gate = nl
            .gates()
            .iter()
            .position(|g| g.kind() == tta_netlist::GateKind::Or)
            .unwrap();
        let mut fs = FaultSimulator::new(nl);
        let fault = Fault {
            site: FaultSite::GatePin(GateId::from_index(or_gate), 0),
            stuck: true,
        };
        // a=0,b=1,c=0: good y0=0,y1=0; faulty y1=1 (pin stuck 1), y0
        // unchanged.
        let p = Pattern::new(vec![false, true, false]);
        let batch = PatternBatch::pack(fs.view(), &[&p]);
        let good = fs.good_values(&batch);
        assert_eq!(fs.detect_mask(&good, &batch, fault), 1);
        // Stem fault on `a` sa1 flips y0 too — also detected, but through
        // a different cone; just confirm it is detected.
        let astem = fs.netlist().find_net("a").unwrap();
        let good = fs.good_values(&batch);
        assert_eq!(fs.detect_mask(&good, &batch, Fault::sa1(astem)), 1);
    }

    #[test]
    fn dropping_reports_useful_patterns() {
        let nl = and_circuit();
        let faults = vec![
            Fault::sa0(NetId::from_index(0)),
            Fault::sa1(NetId::from_index(0)),
        ];
        let mut fs = FaultSimulator::new(nl);
        let patterns = vec![
            Pattern::new(vec![false, false]), // detects nothing new
            Pattern::new(vec![true, true]),   // detects a/sa0
            Pattern::new(vec![false, true]),  // detects a/sa1
        ];
        let (det, useful) = fs.run_with_dropping(&patterns, &faults);
        assert_eq!(det, vec![true, true]);
        assert_eq!(useful, vec![1, 2]);
    }

    #[test]
    fn fault_behind_register_detected_via_pseudo_po() {
        // a -> AND(a,b) -> dff -> y. Full-scan view observes the D pin.
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.and2(a, c);
        let q = b.dff("r", x);
        b.output("y", q);
        let nl = b.finish();
        let xnet = nl.gates()[0].output();
        let mut fs = FaultSimulator::new(nl);
        let p = Pattern::new(vec![true, true, false]); // a, b, r.q
        let batch = PatternBatch::pack(fs.view(), &[&p]);
        let good = fs.good_values(&batch);
        assert_eq!(fs.detect_mask(&good, &batch, Fault::sa0(xnet)), 1);
    }
}
