//! The complete ATPG engine: random bootstrap → deterministic PODEM →
//! reverse-order static compaction.
//!
//! This is the "automatic test pattern generation tool" the paper uses to
//! back-annotate each predesigned component with its pattern count `np`
//! and fault coverage (Table 1, columns "our approach" and "FC").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tta_netlist::Netlist;

use crate::collapse;
use crate::fault::{Fault, FaultUniverse};
use crate::faultsim::FaultSimulator;
use crate::pattern::{Pattern, PatternBatch, TestSet};
use crate::podem::{Podem, PodemOutcome};
use crate::v5::V3;
use crate::view::CombView;

/// Tuning knobs of the ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// Maximum number of random bootstrap patterns (0 disables the phase).
    pub max_random_patterns: usize,
    /// Stop the random phase after this many consecutive batches without a
    /// new detection.
    pub random_stale_batches: usize,
    /// RNG seed — runs are fully deterministic.
    pub seed: u64,
    /// PODEM backtrack limit per fault. With X-path pruning most
    /// redundancy proofs finish in a handful of backtracks; the limit
    /// only bounds pathological reconvergent searches, so it sits in the
    /// classic tens-to-hundreds range used by industrial engines.
    pub backtrack_limit: u32,
    /// Run reverse-order static compaction at the end.
    pub compaction: bool,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            max_random_patterns: 512,
            random_stale_batches: 2,
            seed: 0xDA7E_2000,
            backtrack_limit: 512,
            compaction: true,
        }
    }
}

impl AtpgConfig {
    /// A configuration with the random phase disabled (deterministic-only
    /// generation; used by the ablation benches).
    pub fn deterministic_only() -> Self {
        AtpgConfig {
            max_random_patterns: 0,
            ..AtpgConfig::default()
        }
    }

    /// The throughput profile used for design-space sweeps: a tighter
    /// abort limit for the handful of pathological reconvergent faults.
    /// On the paper's components this produces the *same* test sets as
    /// [`AtpgConfig::default`] (the extra backtracks only ever resolved
    /// untestable-vs-aborted verdicts), but back-annotates an order of
    /// magnitude faster; only the reported untestable/aborted split — and
    /// with it the adjusted-coverage figure — can differ.
    pub fn sweep() -> Self {
        AtpgConfig {
            backtrack_limit: 128,
            ..AtpgConfig::default()
        }
    }
}

/// Per-fault final status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStatus {
    /// Detected by some pattern in the final set.
    Detected,
    /// Proven combinationally redundant by exhaustive PODEM.
    Untestable,
    /// PODEM hit its backtrack limit.
    Aborted,
}

/// Result of an ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// The final (possibly compacted) test set.
    pub test_set: TestSet,
    /// Collapsed fault universe the run targeted.
    pub faults: Vec<Fault>,
    /// Status per collapsed fault (same indexing as `faults`).
    pub status: Vec<FaultStatus>,
    /// Size of the uncollapsed universe (reporting only).
    pub uncollapsed_faults: usize,
    /// Patterns produced by the random phase (before compaction).
    pub random_phase_patterns: usize,
    /// Patterns produced by PODEM (before compaction).
    pub deterministic_patterns: usize,
}

impl AtpgResult {
    /// `np`: number of test patterns (the quantity eq. (11)/(12) consume).
    pub fn pattern_count(&self) -> usize {
        self.test_set.len()
    }

    /// Detected / total collapsed faults.
    pub fn fault_coverage(&self) -> f64 {
        let detected = self
            .status
            .iter()
            .filter(|s| **s == FaultStatus::Detected)
            .count();
        detected as f64 / self.faults.len().max(1) as f64
    }

    /// Detected / (total − proven-redundant): the coverage figure ATPG
    /// tools usually quote ("test efficiency" counts aborts as misses).
    pub fn adjusted_coverage(&self) -> f64 {
        let detected = self
            .status
            .iter()
            .filter(|s| **s == FaultStatus::Detected)
            .count();
        let redundant = self
            .status
            .iter()
            .filter(|s| **s == FaultStatus::Untestable)
            .count();
        detected as f64 / (self.faults.len() - redundant).max(1) as f64
    }

    /// Number of faults per status.
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let mut d = 0;
        let mut u = 0;
        let mut a = 0;
        for s in &self.status {
            match s {
                FaultStatus::Detected => d += 1,
                FaultStatus::Untestable => u += 1,
                FaultStatus::Aborted => a += 1,
            }
        }
        (d, u, a)
    }
}

/// The ATPG engine.
#[derive(Debug, Clone)]
pub struct Atpg {
    config: AtpgConfig,
}

impl Atpg {
    /// Creates an engine with the given configuration.
    pub fn new(config: AtpgConfig) -> Self {
        Atpg { config }
    }

    /// Runs ATPG on the full-scan view of `nl`.
    pub fn run(&self, nl: &Netlist) -> AtpgResult {
        self.run_view(nl, CombView::full_scan(nl))
    }

    /// Runs ATPG with an explicit test-access view.
    pub fn run_view(&self, nl: &Netlist, view: CombView) -> AtpgResult {
        let universe = FaultUniverse::enumerate(nl);
        let collapsed = collapse::collapse(nl, &universe);
        let faults: Vec<Fault> = collapsed.representatives.faults().to_vec();
        let n_inputs = view.inputs().len();
        let mut fs = FaultSimulator::with_view(nl.clone(), view.clone());
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut status = vec![FaultStatus::Aborted; faults.len()];
        let mut remaining: Vec<usize> = (0..faults.len()).collect();
        let mut test_set = TestSet::new();

        // ---- phase 1: random bootstrap --------------------------------
        let mut random_phase_patterns = 0usize;
        let mut stale = 0usize;
        let mut generated = 0usize;
        while generated < self.config.max_random_patterns
            && !remaining.is_empty()
            && stale < self.config.random_stale_batches
        {
            let count = 64.min(self.config.max_random_patterns - generated);
            let patterns: Vec<Pattern> = (0..count)
                .map(|_| Pattern::new((0..n_inputs).map(|_| rng.random()).collect()))
                .collect();
            generated += count;
            let refs: Vec<&Pattern> = patterns.iter().collect();
            let batch = PatternBatch::pack(fs.view(), &refs);
            let good = fs.good_values(&batch);
            let mut keep_mask = 0u64;
            let mut newly_detected = Vec::new();
            for &fi in &remaining {
                let mask = fs.detect_mask(&good, &batch, faults[fi]);
                if mask != 0 {
                    keep_mask |= 1 << mask.trailing_zeros();
                    newly_detected.push(fi);
                }
            }
            if newly_detected.is_empty() {
                stale += 1;
                continue;
            }
            stale = 0;
            for fi in &newly_detected {
                status[*fi] = FaultStatus::Detected;
            }
            remaining.retain(|fi| status[*fi] != FaultStatus::Detected);
            for (k, p) in patterns.into_iter().enumerate() {
                if keep_mask >> k & 1 == 1 {
                    test_set.push(p);
                    random_phase_patterns += 1;
                }
            }
        }

        // ---- phase 2: deterministic PODEM ------------------------------
        let mut deterministic_patterns = 0usize;
        let podem_view = fs.view().clone();
        let mut podem = Podem::new(nl, &podem_view, self.config.backtrack_limit);
        while let Some(&fi) = remaining.first() {
            match podem.generate(faults[fi]) {
                PodemOutcome::Test(cube) => {
                    let bits: Vec<bool> = cube
                        .iter()
                        .map(|v| match v {
                            V3::One => true,
                            V3::Zero => false,
                            V3::X => rng.random(),
                        })
                        .collect();
                    let pattern = Pattern::new(bits);
                    // Fault-sim the new pattern against everything still
                    // remaining (fault dropping).
                    let batch = PatternBatch::pack(fs.view(), &[&pattern]);
                    let good = fs.good_values(&batch);
                    let mut hit_target = false;
                    for &fj in &remaining {
                        if fs.detect_mask(&good, &batch, faults[fj]) != 0 {
                            status[fj] = FaultStatus::Detected;
                            hit_target |= fj == fi;
                        }
                    }
                    debug_assert!(
                        hit_target,
                        "PODEM pattern must detect its target {}",
                        faults[fi]
                    );
                    if !hit_target {
                        // Defensive: never loop forever on a bad cube.
                        status[fi] = FaultStatus::Aborted;
                    }
                    remaining.retain(|fj| {
                        status[*fj] != FaultStatus::Detected
                            && !(status[*fj] == FaultStatus::Aborted && *fj == fi)
                    });
                    test_set.push(pattern);
                    deterministic_patterns += 1;
                    // `remaining` shrank in place; do not advance `i`.
                }
                PodemOutcome::Untestable => {
                    status[fi] = FaultStatus::Untestable;
                    remaining.remove(0);
                }
                PodemOutcome::Aborted => {
                    status[fi] = FaultStatus::Aborted;
                    remaining.remove(0);
                }
            }
        }

        // ---- phase 3: reverse-order static compaction -------------------
        if self.config.compaction && !test_set.is_empty() {
            let detected_faults: Vec<Fault> = faults
                .iter()
                .zip(&status)
                .filter(|(_, s)| **s == FaultStatus::Detected)
                .map(|(f, _)| *f)
                .collect();
            let keep = compact_reverse(&mut fs, &test_set, &detected_faults);
            test_set.retain_indices(&keep);
        }

        AtpgResult {
            test_set,
            faults,
            status,
            uncollapsed_faults: collapsed.original_count,
            random_phase_patterns,
            deterministic_patterns,
        }
    }
}

/// Reverse-order static compaction: keep, for every fault, the *last*
/// pattern that detects it; drop every pattern that is nobody's last
/// detector. Returns the sorted indices of kept patterns.
fn compact_reverse(fs: &mut FaultSimulator, test_set: &TestSet, faults: &[Fault]) -> Vec<usize> {
    let patterns = test_set.patterns();
    let mut last_detector: Vec<Option<usize>> = vec![None; faults.len()];
    for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
        let refs: Vec<&Pattern> = chunk.iter().collect();
        let batch = PatternBatch::pack(fs.view(), &refs);
        let good = fs.good_values(&batch);
        for (fi, fault) in faults.iter().enumerate() {
            let mask = fs.detect_mask(&good, &batch, *fault);
            if mask != 0 {
                let hi = 63 - mask.leading_zeros() as usize;
                let idx = chunk_idx * 64 + hi;
                let cur = last_detector[fi].unwrap_or(0);
                if last_detector[fi].is_none() || idx > cur {
                    last_detector[fi] = Some(idx);
                }
            }
        }
    }
    let mut keep: Vec<usize> = last_detector.into_iter().flatten().collect();
    keep.sort_unstable();
    keep.dedup();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_netlist::components;

    #[test]
    fn full_coverage_on_small_alu() {
        let alu = components::alu(4);
        let result = Atpg::new(AtpgConfig::default()).run(&alu.netlist);
        let (detected, untestable, aborted) = result.status_counts();
        assert!(aborted == 0, "no aborts expected on a 4-bit ALU");
        assert!(
            result.adjusted_coverage() > 0.999,
            "coverage {:.4} (d={detected} u={untestable} a={aborted})",
            result.adjusted_coverage()
        );
        assert!(result.pattern_count() >= 5);
        assert!(result.pattern_count() < 200);
    }

    #[test]
    fn compaction_never_loses_coverage() {
        let cmp = components::cmp(4);
        let with = Atpg::new(AtpgConfig::default()).run(&cmp.netlist);
        let without = Atpg::new(AtpgConfig {
            compaction: false,
            ..AtpgConfig::default()
        })
        .run(&cmp.netlist);
        assert_eq!(
            with.status_counts().0,
            without.status_counts().0,
            "same detected count"
        );
        assert!(with.pattern_count() <= without.pattern_count());
    }

    #[test]
    fn deterministic_only_still_covers() {
        let alu = components::alu(4);
        let result = Atpg::new(AtpgConfig::deterministic_only()).run(&alu.netlist);
        assert!(result.adjusted_coverage() > 0.999);
        assert_eq!(result.random_phase_patterns, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let alu = components::alu(4);
        let r1 = Atpg::new(AtpgConfig::default()).run(&alu.netlist);
        let r2 = Atpg::new(AtpgConfig::default()).run(&alu.netlist);
        assert_eq!(r1.pattern_count(), r2.pattern_count());
        assert_eq!(r1.status, r2.status);
    }

    #[test]
    fn coverage_verified_by_independent_fault_sim() {
        // Re-simulate the final test set from scratch: every fault marked
        // Detected must actually be detected by it.
        let alu = components::alu(4);
        let result = Atpg::new(AtpgConfig::default()).run(&alu.netlist);
        let mut fs = FaultSimulator::new(alu.netlist.clone());
        let (redetected, _) = fs.run_with_dropping(result.test_set.patterns(), &result.faults);
        for (i, s) in result.status.iter().enumerate() {
            if *s == FaultStatus::Detected {
                assert!(
                    redetected[i],
                    "fault {} lost by compaction",
                    result.faults[i]
                );
            }
        }
    }
}
