//! SCOAP testability measures (Goldstein's controllability/observability
//! analysis — the classical "testability measure" family the paper cites
//! as refs \[8\]\[9\], here in its structural gate-level form).
//!
//! * `CC0(n)` / `CC1(n)` — the minimum number of line assignments needed
//!   to set net `n` to 0 / 1 (≥ 1; inputs cost 1);
//! * `CO(n)` — assignments needed to propagate `n`'s value to an observe
//!   point (0 at observe points).
//!
//! The measures guide PODEM's backtrace (choose the cheapest input to
//! satisfy, the hardest to violate) and give the exploration a
//! per-component testability indicator that needs no ATPG run.

use tta_netlist::netlist::NetDriver;
use tta_netlist::{GateKind, Netlist};

use crate::view::CombView;

/// SCOAP numbers for one netlist under one test-access view.
#[derive(Debug, Clone)]
pub struct Scoap {
    /// 0-controllability per net.
    pub cc0: Vec<u32>,
    /// 1-controllability per net.
    pub cc1: Vec<u32>,
    /// Observability per net.
    pub co: Vec<u32>,
}

/// Cost cap used for unreachable/uncontrollable nets.
pub const UNREACHABLE: u32 = u32::MAX / 4;

impl Scoap {
    /// Computes SCOAP measures for `nl` as seen through `view`.
    pub fn analyze(nl: &Netlist, view: &CombView) -> Self {
        let n = nl.net_count();
        let mut cc0 = vec![UNREACHABLE; n];
        let mut cc1 = vec![UNREACHABLE; n];
        // Controllable sources cost 1.
        for net in view.inputs() {
            cc0[net.index()] = 1;
            cc1[net.index()] = 1;
        }
        for (i, net) in nl.nets().iter().enumerate() {
            match net.driver() {
                NetDriver::Const0 => cc0[i] = 0,
                NetDriver::Const1 => cc1[i] = 0,
                _ => {}
            }
        }
        // Forward pass in topological order.
        for &gid in nl.topo_order() {
            let g = nl.gate(gid);
            let ins = g.inputs();
            let o = g.output().index();
            let c0 = |k: usize| cc0[ins[k].index()];
            let c1 = |k: usize| cc1[ins[k].index()];
            let (v0, v1) = match g.kind() {
                GateKind::Buf => (c0(0), c1(0)),
                GateKind::Not => (c1(0), c0(0)),
                GateKind::And => (c0(0).min(c0(1)), c1(0).saturating_add(c1(1))),
                GateKind::Nand => (c1(0).saturating_add(c1(1)), c0(0).min(c0(1))),
                GateKind::Or => (c0(0).saturating_add(c0(1)), c1(0).min(c1(1))),
                GateKind::Nor => (c1(0).min(c1(1)), c0(0).saturating_add(c0(1))),
                GateKind::Xor => (
                    (c0(0).saturating_add(c0(1))).min(c1(0).saturating_add(c1(1))),
                    (c0(0).saturating_add(c1(1))).min(c1(0).saturating_add(c0(1))),
                ),
                GateKind::Xnor => (
                    (c0(0).saturating_add(c1(1))).min(c1(0).saturating_add(c0(1))),
                    (c0(0).saturating_add(c0(1))).min(c1(0).saturating_add(c1(1))),
                ),
                GateKind::Mux2 => {
                    // out=0: (sel=0, a=0) or (sel=1, b=0); symmetric for 1.
                    let s0 = cc0[ins[0].index()];
                    let s1 = cc1[ins[0].index()];
                    let a0 = cc0[ins[1].index()];
                    let a1 = cc1[ins[1].index()];
                    let b0 = cc0[ins[2].index()];
                    let b1 = cc1[ins[2].index()];
                    (
                        (s0.saturating_add(a0)).min(s1.saturating_add(b0)),
                        (s0.saturating_add(a1)).min(s1.saturating_add(b1)),
                    )
                }
            };
            cc0[o] = v0.saturating_add(1).min(UNREACHABLE);
            cc1[o] = v1.saturating_add(1).min(UNREACHABLE);
        }
        // Backward pass for observability.
        let mut co = vec![UNREACHABLE; n];
        for net in view.observes() {
            co[net.index()] = 0;
        }
        for &gid in nl.topo_order().iter().rev() {
            let g = nl.gate(gid);
            let ins = g.inputs();
            let out_co = co[g.output().index()];
            if out_co >= UNREACHABLE {
                continue;
            }
            for (pin, inp) in ins.iter().enumerate() {
                // Cost to sensitise this pin through the gate: set the
                // side inputs to non-controlling values.
                let side_cost: u32 = match g.kind() {
                    GateKind::Buf | GateKind::Not => 0,
                    GateKind::And | GateKind::Nand => ins
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| *k != pin)
                        .map(|(_, s)| cc1[s.index()])
                        .fold(0u32, |a, v| a.saturating_add(v)),
                    GateKind::Or | GateKind::Nor => ins
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| *k != pin)
                        .map(|(_, s)| cc0[s.index()])
                        .fold(0u32, |a, v| a.saturating_add(v)),
                    GateKind::Xor | GateKind::Xnor => {
                        let other = ins[1 - pin];
                        cc0[other.index()].min(cc1[other.index()])
                    }
                    GateKind::Mux2 => {
                        if pin == 0 {
                            // Observe the select: data legs must differ.
                            let a = ins[1];
                            let b = ins[2];
                            (cc0[a.index()].saturating_add(cc1[b.index()]))
                                .min(cc1[a.index()].saturating_add(cc0[b.index()]))
                        } else {
                            // Observe a data leg: steer the select to it.
                            let sel = ins[0];
                            if pin == 1 {
                                cc0[sel.index()]
                            } else {
                                cc1[sel.index()]
                            }
                        }
                    }
                };
                let cost = out_co.saturating_add(side_cost).saturating_add(1);
                if cost < co[inp.index()] {
                    co[inp.index()] = cost;
                }
            }
        }
        Scoap { cc0, cc1, co }
    }

    /// A single testability figure for the whole design: the mean
    /// detect-difficulty `min(cc0, cc1) + co` over the *testable* nets
    /// (lower = easier to test). Structurally unobservable or
    /// uncontrollable nets are excluded — count them separately with
    /// [`Self::untestable_net_count`].
    pub fn mean_difficulty(&self) -> f64 {
        let mut n = 0u64;
        let mut total = 0u64;
        for i in 0..self.cc0.len() {
            let c = self.cc0[i].min(self.cc1[i]);
            let o = self.co[i];
            if c >= UNREACHABLE || o >= UNREACHABLE {
                continue;
            }
            total += u64::from(c) + u64::from(o);
            n += 1;
        }
        total as f64 / n.max(1) as f64
    }

    /// Nets that no assignment can control-and-observe (structural
    /// untestability — e.g. a dangling carry-out cone).
    pub fn untestable_net_count(&self) -> usize {
        (0..self.cc0.len())
            .filter(|&i| self.cc0[i].min(self.cc1[i]) >= UNREACHABLE || self.co[i] >= UNREACHABLE)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_netlist::{components, NetlistBuilder};

    #[test]
    fn inputs_cost_one_outputs_observe_free() {
        let mut b = NetlistBuilder::new("and");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let nl = b.finish();
        let view = CombView::full_scan(&nl);
        let s = Scoap::analyze(&nl, &view);
        let an = nl.find_net("a").unwrap();
        let yn = nl.primary_outputs()[0].1;
        assert_eq!(s.cc0[an.index()], 1);
        assert_eq!(s.cc1[an.index()], 1);
        assert_eq!(s.co[yn.index()], 0);
        // AND output: 1 needs both inputs 1 (+1); 0 needs one input (+1).
        assert_eq!(s.cc1[yn.index()], 3);
        assert_eq!(s.cc0[yn.index()], 2);
        // Observing `a` needs b=1 (+1 level).
        assert_eq!(s.co[an.index()], 2);
    }

    #[test]
    fn deep_logic_is_harder() {
        let mut b = NetlistBuilder::new("deep");
        let a = b.input("a");
        let c = b.input("b");
        let mut x = b.and2(a, c);
        for _ in 0..6 {
            x = b.and2(x, c);
        }
        b.output("y", x);
        let nl = b.finish();
        let view = CombView::full_scan(&nl);
        let s = Scoap::analyze(&nl, &view);
        let first = nl.gates()[0].output();
        let last = nl.gates()[6].output();
        assert!(s.cc1[last.index()] > s.cc1[first.index()]);
        assert!(s.co[first.index()] > s.co[last.index()]);
    }

    #[test]
    fn registers_make_components_controllable() {
        // Full-scan view: the ALU's deep core stays cheap because the
        // pipeline registers are direct inputs.
        let alu = components::alu(8);
        let view = CombView::full_scan(&alu.netlist);
        let s = Scoap::analyze(&alu.netlist, &view);
        assert!(s.mean_difficulty() < 64.0, "{}", s.mean_difficulty());
        // Only the dangling carry-out cone is structurally untestable.
        assert!(s.untestable_net_count() < 8, "{}", s.untestable_net_count());
        // The combinational-only view (no register access) leaves nearly
        // everything unobservable: the registers cut all paths.
        let blind = CombView::combinational(&alu.netlist);
        let s2 = Scoap::analyze(&alu.netlist, &blind);
        assert!(s2.untestable_net_count() > s.untestable_net_count());
    }

    #[test]
    fn constants_are_free_one_way_only() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let zero = b.const0();
        let y = b.or2(a, zero);
        b.output("y", y);
        let nl = b.finish();
        let view = CombView::full_scan(&nl);
        let s = Scoap::analyze(&nl, &view);
        let zn = nl.find_net("const0").unwrap();
        assert_eq!(s.cc0[zn.index()], 0);
        assert_eq!(s.cc1[zn.index()], UNREACHABLE, "const0 can never be 1");
    }
}
