//! Stuck-at test generation for the TTA datapath components.
//!
//! The paper back-annotates every predesigned component with the number of
//! test patterns `np` obtained from "an automatic test pattern generation
//! (ATPG) tool". This crate is that tool: single-stuck-at fault universe
//! with equivalence collapsing, a 64-way parallel-pattern fault simulator
//! with fault dropping, a 5-valued PODEM deterministic generator, a
//! random-pattern bootstrap phase, and reverse-order static compaction.
//!
//! Components are hybrid-pipelined (Figure 3 of the paper): their operand,
//! trigger and result registers are directly controllable/observable over
//! the move buses, so ATPG runs on the *full-scan view* of the netlist —
//! flip-flop outputs act as pseudo primary inputs and flip-flop D pins as
//! pseudo primary outputs. The resulting structural patterns are exactly
//! the ones the paper applies *functionally* through the sockets
//! (Figure 5).
//!
//! # Quickstart
//!
//! ```
//! use tta_netlist::components;
//! use tta_atpg::{Atpg, AtpgConfig};
//!
//! let alu = components::alu(4);
//! let result = Atpg::new(AtpgConfig::default()).run(&alu.netlist);
//! // Coverage of testable faults (proven-redundant ones excluded).
//! assert!(result.adjusted_coverage() > 0.99);
//! assert!(result.pattern_count() > 0);
//! ```

#![warn(missing_docs)]

pub mod collapse;
pub mod fault;
pub mod faultsim;
pub mod pattern;
pub mod podem;
pub mod scoap;
pub mod tpg;
pub mod transition;
pub mod v5;
pub mod view;

pub use fault::{Fault, FaultSite, FaultUniverse};
pub use faultsim::FaultSimulator;
pub use pattern::{Pattern, TestSet};
pub use scoap::Scoap;
pub use tpg::{Atpg, AtpgConfig, AtpgResult};
pub use transition::{grade_sequence, TransitionCoverage, TransitionFault};
pub use view::CombView;
