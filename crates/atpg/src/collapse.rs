//! Structural fault-equivalence collapsing.
//!
//! Two faults are equivalent when every test for one detects the other;
//! the classic gate-local rules are:
//!
//! * AND: any input sa0 ≡ output sa0;   NAND: any input sa0 ≡ output sa1;
//! * OR:  any input sa1 ≡ output sa1;   NOR:  any input sa1 ≡ output sa0;
//! * BUF: input sa(v) ≡ output sa(v);   NOT:  input sa(v) ≡ output sa(¬v).
//!
//! Collapsing keeps one representative per equivalence class, shrinking
//! the universe by roughly 40–60 % on datapath logic and speeding up both
//! fault simulation and deterministic generation.

use std::collections::HashMap;

use tta_netlist::netlist::Fanout;
use tta_netlist::{GateKind, Netlist};

use crate::fault::{Fault, FaultSite, FaultUniverse};

/// Union-find over fault indices.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Result of collapsing: the representative universe plus bookkeeping.
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    /// One representative fault per equivalence class.
    pub representatives: FaultUniverse,
    /// Size of the original (uncollapsed) universe.
    pub original_count: usize,
}

impl CollapsedFaults {
    /// Collapse ratio `collapsed / original` (≤ 1).
    pub fn ratio(&self) -> f64 {
        self.representatives.len() as f64 / self.original_count.max(1) as f64
    }
}

/// Collapses `universe` over `nl` using gate-local equivalence rules.
pub fn collapse(nl: &Netlist, universe: &FaultUniverse) -> CollapsedFaults {
    let faults = universe.faults();
    let index: HashMap<Fault, u32> = faults
        .iter()
        .enumerate()
        .map(|(i, f)| (*f, i as u32))
        .collect();
    let mut dsu = Dsu::new(faults.len());
    let fanout: Fanout = nl.fanout_table();

    // The "line fault" on a gate input pin: the branch fault if the net
    // fans out, else the stem fault on the driving net.
    let line_fault = |gi: usize, pin: usize, stuck: bool| -> Fault {
        let gate = nl.gate(tta_netlist::GateId::from_index(gi));
        let net = gate.inputs()[pin];
        if fanout.reader_count(net) > 1 {
            Fault {
                site: FaultSite::GatePin(tta_netlist::GateId::from_index(gi), pin as u8),
                stuck,
            }
        } else {
            Fault {
                site: FaultSite::Net(net),
                stuck,
            }
        }
    };

    for (gi, gate) in nl.gates().iter().enumerate() {
        let out_sa = |stuck: bool| Fault {
            site: FaultSite::Net(gate.output()),
            stuck,
        };
        let rule: Option<(bool, bool)> = match gate.kind() {
            // (input stuck value, equivalent output stuck value)
            GateKind::And => Some((false, false)),
            GateKind::Nand => Some((false, true)),
            GateKind::Or => Some((true, true)),
            GateKind::Nor => Some((true, false)),
            GateKind::Buf | GateKind::Not | GateKind::Xor | GateKind::Xnor | GateKind::Mux2 => None,
        };
        match gate.kind() {
            GateKind::Buf => {
                for stuck in [false, true] {
                    let a = line_fault(gi, 0, stuck);
                    let b = out_sa(stuck);
                    dsu.union(index[&a], index[&b]);
                }
            }
            GateKind::Not => {
                for stuck in [false, true] {
                    let a = line_fault(gi, 0, stuck);
                    let b = out_sa(!stuck);
                    dsu.union(index[&a], index[&b]);
                }
            }
            _ => {
                if let Some((in_stuck, out_stuck)) = rule {
                    let out = out_sa(out_stuck);
                    for pin in 0..gate.inputs().len() {
                        let f = line_fault(gi, pin, in_stuck);
                        dsu.union(index[&out], index[&f]);
                    }
                }
            }
        }
    }

    // Keep the first fault of each class as representative.
    let mut seen: HashMap<u32, ()> = HashMap::new();
    let mut reps = Vec::new();
    for (i, f) in faults.iter().enumerate() {
        let root = dsu.find(i as u32);
        if seen.insert(root, ()).is_none() {
            reps.push(*f);
        }
    }
    CollapsedFaults {
        representatives: FaultUniverse::from_faults(reps),
        original_count: faults.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_netlist::NetlistBuilder;

    #[test]
    fn and_gate_collapses_sa0_class() {
        let mut b = NetlistBuilder::new("and");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let nl = b.finish();
        let u = FaultUniverse::enumerate(&nl);
        // Nets a, b, y -> 6 stem faults, no branches.
        assert_eq!(u.len(), 6);
        let collapsed = collapse(&nl, &u);
        // {a0, b0, y0} merge -> classes: [a0 b0 y0], a1, b1, y1 = 4.
        assert_eq!(collapsed.representatives.len(), 4);
        assert!(collapsed.ratio() < 1.0);
    }

    #[test]
    fn inverter_chain_collapses_fully() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", y);
        let nl = b.finish();
        let u = FaultUniverse::enumerate(&nl);
        let collapsed = collapse(&nl, &u);
        // 3 nets * 2 = 6 faults collapse into 2 classes (sa0/sa1 chains).
        assert_eq!(collapsed.representatives.len(), 2);
    }

    #[test]
    fn branch_faults_stay_distinct_from_stem() {
        // a fans out: branch faults must not merge with each other via the
        // stem.
        let mut b = NetlistBuilder::new("fan");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let g1 = b.and2(a, c);
        let g2 = b.or2(a, d);
        let y = b.xor2(g1, g2);
        b.output("y", y);
        let nl = b.finish();
        let u = FaultUniverse::enumerate(&nl);
        let collapsed = collapse(&nl, &u);
        // The two branches of `a` feed different gate types; their faults
        // merge into those gates' output classes, never with each other
        // through the stem.
        assert!(collapsed.representatives.len() < u.len());
        assert!(collapsed.representatives.len() >= u.len() / 2);
    }
}
